"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import (
    concatenate_copies,
    extend_features,
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)


class TestRegression:
    def test_shapes_and_split(self):
        data = make_regression(1000, 12, seed=1)
        assert data.features.shape == (900, 12)
        assert data.valid_features.shape == (100, 12)
        assert data.task == "linear"
        assert data.n_parameters == 12

    def test_deterministic(self):
        a = make_regression(100, 5, seed=2)
        b = make_regression(100, 5, seed=2)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_learnable(self):
        from repro.models import closed_form_solution, objective_for

        data = make_regression(2000, 8, noise=0.05, seed=3)
        w = closed_form_solution(data.features, data.labels, 0.0)
        obj = objective_for("linear", 0.0)
        assert obj.metric(w, data.valid_features, data.valid_labels) < 0.1

    def test_spectral_decay_produces_low_rank(self):
        # With decay k^-1 over m=40 directions the spectrum spans a factor
        # of ~40, so the 5%-of-top threshold truncates well below full rank.
        data = make_regression(500, 40, seed=4, spectral_decay=1.0)
        s = np.linalg.svd(data.features, compute_uv=False)
        assert np.sum(s > 0.05 * s[0]) < 30

    def test_no_decay_is_flat(self):
        data = make_regression(500, 40, seed=4, spectral_decay=0.0)
        s = np.linalg.svd(data.features, compute_uv=False)
        assert np.sum(s > 0.01 * s[0]) == 40


class TestBinary:
    def test_labels_are_plus_minus_one(self):
        data = make_binary_classification(200, 6, seed=5)
        assert set(np.unique(data.labels)) == {-1.0, 1.0}
        assert data.task == "binary_logistic"

    def test_separable_enough(self):
        from repro.models import make_schedule, objective_for, train

        data = make_binary_classification(1000, 8, separation=2.0, seed=6)
        obj = objective_for("binary_logistic", 0.01)
        schedule = make_schedule(data.n_samples, 50, 300, seed=1)
        result = train(obj, data.features, data.labels, schedule, 0.2)
        acc = obj.metric(result.weights, data.valid_features, data.valid_labels)
        assert acc > 0.9


class TestMulticlass:
    def test_label_range(self):
        data = make_multiclass_classification(300, 7, n_classes=5, seed=7)
        assert data.labels.min() >= 0
        assert data.labels.max() <= 4
        assert data.n_classes == 5
        assert data.n_parameters == 35

    def test_every_class_present(self):
        data = make_multiclass_classification(500, 6, n_classes=4, seed=8)
        assert set(np.unique(data.labels)) == {0, 1, 2, 3}


class TestSparse:
    def test_csr_and_density(self):
        data = make_sparse_binary_classification(400, 800, density=0.01, seed=9)
        assert sp.isspmatrix_csr(data.features)
        assert data.is_sparse
        density = data.features.nnz / (data.features.shape[0] * 800)
        assert density == pytest.approx(0.01, rel=0.3)

    def test_labels_pm_one(self):
        data = make_sparse_binary_classification(200, 300, seed=10)
        assert set(np.unique(data.labels)) <= {-1.0, 1.0}


class TestTransforms:
    def test_extend_features(self):
        base = make_regression(200, 10, seed=11)
        extended = extend_features(base, 25, seed=12)
        assert extended.n_features == 35
        assert np.array_equal(extended.features[:, :10], base.features)
        assert np.array_equal(extended.labels, base.labels)

    def test_extend_rejects_sparse(self):
        data = make_sparse_binary_classification(100, 50, seed=13)
        with pytest.raises(ValueError):
            extend_features(data, 5)

    def test_concatenate_copies(self):
        base = make_multiclass_classification(100, 5, n_classes=3, seed=14)
        tiled = concatenate_copies(base, 4, seed=15)
        assert tiled.n_samples == 4 * base.n_samples
        assert np.array_equal(tiled.labels[: base.n_samples], base.labels)
        # Copies are perturbed, not identical (keeps grams non-degenerate).
        assert not np.array_equal(
            tiled.features[: base.n_samples],
            tiled.features[base.n_samples : 2 * base.n_samples],
        )

    def test_concatenate_sparse(self):
        data = make_sparse_binary_classification(100, 60, seed=16)
        tiled = concatenate_copies(data, 3)
        assert sp.issparse(tiled.features)
        assert tiled.n_samples == 3 * data.n_samples
