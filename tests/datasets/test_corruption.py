"""Unit tests for dirty-sample injection and repeated-deletion workloads."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import (
    inject_dirty,
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
    random_subsets,
)


class TestInjectDirty:
    def test_deletion_rate_respected(self):
        data = make_regression(1000, 5, seed=21)
        dirty = inject_dirty(data.features, data.labels, 0.05, seed=1)
        assert dirty.dirty_indices.size == round(0.05 * data.n_samples)
        assert dirty.deletion_rate == pytest.approx(0.05, rel=0.1)

    def test_regression_labels_rescaled(self):
        data = make_regression(500, 5, seed=22)
        dirty = inject_dirty(data.features, data.labels, 0.1, seed=2)
        idx = dirty.dirty_indices
        assert np.allclose(dirty.labels[idx], data.labels[idx] * -5.0)
        clean = np.setdiff1d(np.arange(data.n_samples), idx)
        assert np.array_equal(dirty.labels[clean], data.labels[clean])

    def test_binary_labels_flipped(self):
        data = make_binary_classification(500, 5, seed=23)
        dirty = inject_dirty(data.features, data.labels, 0.1, seed=3)
        idx = dirty.dirty_indices
        assert np.array_equal(dirty.labels[idx], -data.labels[idx])

    def test_multiclass_labels_changed(self):
        data = make_multiclass_classification(500, 5, n_classes=4, seed=24)
        dirty = inject_dirty(data.features, data.labels, 0.1, seed=4)
        idx = dirty.dirty_indices
        assert np.all(dirty.labels[idx] != data.labels[idx])
        assert dirty.labels.max() < 4

    def test_features_rescaled(self):
        data = make_regression(300, 4, seed=25)
        dirty = inject_dirty(data.features, data.labels, 0.1, seed=5)
        idx = dirty.dirty_indices
        assert np.allclose(dirty.features[idx], data.features[idx] * 10.0)

    def test_original_arrays_untouched(self):
        data = make_regression(300, 4, seed=26)
        before = data.features.copy()
        inject_dirty(data.features, data.labels, 0.1, seed=6)
        assert np.array_equal(data.features, before)

    def test_sparse_injection(self):
        data = make_sparse_binary_classification(300, 100, seed=27)
        dirty = inject_dirty(data.features, data.labels, 0.1, seed=7)
        assert sp.issparse(dirty.features)
        idx = dirty.dirty_indices
        original = np.asarray(data.features[idx].todense())
        corrupted = np.asarray(dirty.features[idx].todense())
        assert np.allclose(corrupted, original * 10.0)

    def test_invalid_rate(self):
        data = make_regression(100, 3, seed=28)
        for rate in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError):
                inject_dirty(data.features, data.labels, rate)

    def test_tiny_rate_yields_at_least_one(self):
        data = make_regression(100, 3, seed=29)
        dirty = inject_dirty(data.features, data.labels, 1e-5, seed=8)
        assert dirty.dirty_indices.size == 1


class TestRandomSubsets:
    def test_count_and_size(self):
        subsets = random_subsets(10_000, 10, 0.001, seed=9)
        assert len(subsets) == 10
        assert all(s.size == 10 for s in subsets)

    def test_subsets_differ(self):
        subsets = random_subsets(1000, 5, 0.05, seed=10)
        assert any(
            not np.array_equal(subsets[0], other) for other in subsets[1:]
        )

    def test_indices_valid_and_unique(self):
        for subset in random_subsets(500, 4, 0.1, seed=11):
            assert subset.min() >= 0
            assert subset.max() < 500
            assert np.unique(subset).size == subset.size
