"""Unit tests for the dataset catalog (Table 1 analogues)."""

import pytest

from repro.datasets import CATALOG, load
from repro.datasets import catalog


class TestCatalogShapes:
    def test_sgemm_regime(self):
        data = catalog.sgemm(scale=0.02)
        assert data.task == "linear"
        assert data.n_features == 18

    def test_sgemm_extended_has_more_features(self):
        data = catalog.sgemm_extended(scale=0.02)
        assert data.n_features == 318

    def test_covtype_regime(self):
        data = catalog.covtype(scale=0.01)
        assert data.task == "multinomial_logistic"
        assert data.n_features == 54
        assert data.n_classes == 7

    def test_higgs_regime(self):
        data = catalog.higgs(scale=0.005)
        assert data.task == "binary_logistic"
        assert data.n_features == 28

    def test_rcv1_is_sparse_large_features(self):
        data = catalog.rcv1(scale=0.05)
        assert data.is_sparse
        assert data.n_features >= 1000

    def test_heartbeat_parameter_count(self):
        data = catalog.heartbeat(scale=0.02)
        assert data.n_features == 188
        assert data.n_classes == 5
        assert 900 <= data.n_parameters <= 1000

    def test_cifar10_regime(self):
        data = catalog.cifar10(scale=0.05)
        assert data.n_classes == 10
        assert data.n_parameters > 1000

    def test_extended_datasets_tile(self):
        base = catalog.covtype(scale=0.01)
        extended = catalog.covtype_extended(scale=0.01, copies=3)
        assert extended.n_samples == 3 * base.n_samples


class TestLoader:
    def test_load_by_name(self):
        data = load("HIGGS", scale=0.005)
        assert data.name == "HIGGS"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("MNIST")

    def test_catalog_names_all_loadable(self):
        for name in CATALOG:
            data = load(name, scale=0.003)
            assert data.n_samples > 0

    def test_scale_shrinks(self):
        small = load("Cov", scale=0.005)
        large = load("Cov", scale=0.02)
        assert small.n_samples < large.n_samples
