"""Additional trainer coverage: schedules, sparse inputs, result metadata."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import make_binary_classification, make_regression
from repro.models import make_schedule, objective_for, train


class TestSparseTraining:
    def test_sparse_and_dense_linear_agree(self):
        rng = np.random.default_rng(191)
        dense = rng.standard_normal((120, 10))
        dense[np.abs(dense) < 0.8] = 0.0
        labels = rng.standard_normal(120)
        obj = objective_for("linear", 0.1)
        schedule = make_schedule(120, 20, 50, seed=105)
        from_dense = train(obj, dense, labels, schedule, 0.01)
        from_sparse = train(obj, sp.csr_matrix(dense), labels, schedule, 0.01)
        assert np.allclose(from_dense.weights, from_sparse.weights, atol=1e-10)

    def test_sparse_and_dense_binary_agree(self):
        rng = np.random.default_rng(192)
        dense = rng.standard_normal((120, 10))
        dense[np.abs(dense) < 0.8] = 0.0
        labels = rng.choice([-1.0, 1.0], size=120)
        obj = objective_for("binary_logistic", 0.05)
        schedule = make_schedule(120, 20, 50, seed=106)
        from_dense = train(obj, dense, labels, schedule, 0.1)
        from_sparse = train(obj, sp.csr_matrix(dense), labels, schedule, 0.1)
        assert np.allclose(from_dense.weights, from_sparse.weights, atol=1e-10)

    def test_sparse_multinomial_densifies_batches(self):
        rng = np.random.default_rng(193)
        dense = rng.standard_normal((90, 8))
        dense[np.abs(dense) < 1.0] = 0.0
        labels = rng.integers(0, 3, size=90)
        obj = objective_for("multinomial_logistic", 0.05, n_classes=3)
        schedule = make_schedule(90, 15, 30, seed=107)
        from_dense = train(obj, dense, labels, schedule, 0.05)
        from_sparse = train(obj, sp.csr_matrix(dense), labels, schedule, 0.05)
        assert np.allclose(from_dense.weights, from_sparse.weights, atol=1e-10)


class TestScheduleKindsEndToEnd:
    @pytest.mark.parametrize("kind", ["gd", "sgd", "mb-sgd"])
    def test_all_kinds_reduce_objective(self, kind):
        data = make_regression(150, 5, seed=194)
        obj = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 25, 150, seed=108, kind=kind)
        result = train(obj, data.features, data.labels, schedule, 0.01)
        initial = obj.value(np.zeros(5), data.features, data.labels)
        final = obj.value(result.weights, data.features, data.labels)
        assert final < initial

    def test_sgd_matches_gd_statistically(self):
        """The [29] claim behind PrIU-opt: SGD ends up near the GD solution."""
        data = make_regression(400, 5, noise=0.02, seed=195)
        obj = objective_for("linear", 0.1)
        gd = train(
            obj, data.features, data.labels,
            make_schedule(data.n_samples, data.n_samples, 800, kind="gd"),
            0.02,
        )
        mb = train(
            obj, data.features, data.labels,
            make_schedule(data.n_samples, 40, 4000, seed=109),
            0.02,
        )
        assert np.linalg.norm(gd.weights - mb.weights) < 0.1 * np.linalg.norm(
            gd.weights
        ) + 0.05


class TestTrainingResult:
    def test_metadata_recorded(self):
        data = make_binary_classification(100, 5, seed=196)
        obj = objective_for("binary_logistic", 0.05)
        schedule = make_schedule(data.n_samples, 10, 20, seed=110)
        result = train(obj, data.features, data.labels, schedule, 0.1)
        assert result.n_iterations == 20
        assert result.learning_rate == 0.1
        assert result.regularization == 0.05
        assert result.wall_time > 0
        assert result.n_parameters == 5
        assert result.schedule is schedule
