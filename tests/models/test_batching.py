"""Unit tests for replayable batch schedules."""

import numpy as np
import pytest

from repro.models import BatchSchedule, make_schedule


class TestScheduleKinds:
    def test_gd_uses_all_samples(self):
        schedule = make_schedule(10, 4, 5, kind="gd")
        for batch in schedule:
            assert np.array_equal(batch, np.arange(10))

    def test_sgd_uses_single_samples(self):
        schedule = make_schedule(10, 4, 20, kind="sgd", seed=1)
        assert all(batch.size == 1 for batch in schedule)

    def test_mb_sgd_batch_size(self):
        schedule = make_schedule(100, 16, 30, seed=2)
        assert all(batch.size == 16 for batch in schedule)

    def test_batch_size_capped_at_n(self):
        schedule = make_schedule(8, 100, 4, seed=3)
        assert all(batch.size == 8 for batch in schedule)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_schedule(10, 2, 5, kind="momentum")


class TestDeterminism:
    def test_same_seed_same_batches(self):
        a = make_schedule(50, 8, 25, seed=7)
        b = make_schedule(50, 8, 25, seed=7)
        for left, right in zip(a, b):
            assert np.array_equal(left, right)

    def test_different_seed_differs(self):
        a = make_schedule(50, 8, 25, seed=7)
        b = make_schedule(50, 8, 25, seed=8)
        assert any(
            not np.array_equal(left, right) for left, right in zip(a, b)
        )

    def test_epoch_covers_all_samples(self):
        """Within one epoch every sample is visited exactly once."""
        schedule = make_schedule(40, 10, 4, seed=5)
        seen = np.concatenate(schedule.batches)
        assert np.array_equal(np.sort(seen), np.arange(40))


class TestRemovalViews:
    def test_effective_batch_size(self):
        schedule = make_schedule(20, 5, 10, seed=4)
        batch = schedule[0]
        removed = {int(batch[0]), int(batch[2]), 9999}
        assert schedule.effective_batch_size(0, removed) == 3

    def test_surviving_and_removed_partition(self):
        schedule = make_schedule(20, 6, 8, seed=4)
        batch = schedule[3]
        removed = {int(batch[1]), int(batch[4])}
        surviving = schedule.surviving(3, removed)
        dropped = schedule.removed_in_batch(3, removed)
        assert surviving.size + dropped.size == batch.size
        assert set(surviving) | set(dropped) == set(batch)
        assert set(surviving) & set(dropped) == set()

    def test_empty_removal_fast_paths(self):
        schedule = make_schedule(10, 3, 5, seed=1)
        assert np.array_equal(schedule.surviving(0, set()), schedule[0])
        assert schedule.removed_in_batch(0, set()).size == 0
        assert schedule.effective_batch_size(0, frozenset()) == 3

    def test_len_and_getitem(self):
        schedule = make_schedule(10, 3, 7, seed=1)
        assert len(schedule) == 7
        assert schedule[6].size == 3
