"""Unit tests for closed-form linear regression and incremental views."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import make_regression
from repro.models import IncrementalClosedForm, closed_form_solution


@pytest.fixture(scope="module")
def data():
    return make_regression(250, 7, noise=0.05, seed=61)


class TestClosedFormSolution:
    def test_minimizes_objective(self, data):
        from repro.models import objective_for

        obj = objective_for("linear", 0.2)
        w = closed_form_solution(data.features, data.labels, 0.2)
        base = obj.value(w, data.features, data.labels)
        rng = np.random.default_rng(1)
        for _ in range(10):
            perturbed = w + 0.01 * rng.standard_normal(w.size)
            assert obj.value(perturbed, data.features, data.labels) >= base

    def test_zero_regularization_is_least_squares(self, data):
        w = closed_form_solution(data.features, data.labels, 0.0)
        lstsq, *_ = np.linalg.lstsq(data.features, data.labels, rcond=None)
        assert np.allclose(w, lstsq, atol=1e-8)

    def test_gradient_vanishes_at_solution(self, data):
        from repro.models import objective_for

        obj = objective_for("linear", 0.3)
        w = closed_form_solution(data.features, data.labels, 0.3)
        grad = obj.gradient(w, data.features, data.labels)
        assert np.linalg.norm(grad) < 1e-10


class TestIncrementalClosedForm:
    def test_solve_matches_direct(self, data):
        view = IncrementalClosedForm(data.features, data.labels, 0.1)
        direct = closed_form_solution(data.features, data.labels, 0.1)
        assert np.allclose(view.solve(), direct)

    def test_delete_matches_retraining_on_remaining(self, data):
        view = IncrementalClosedForm(data.features, data.labels, 0.1)
        removed = np.array([0, 5, 17, 100])
        keep = np.setdiff1d(np.arange(data.n_samples), removed)
        incremental = view.delete(removed)
        direct = closed_form_solution(data.features[keep], data.labels[keep], 0.1)
        assert np.allclose(incremental, direct, atol=1e-8)

    def test_delete_is_stateless(self, data):
        view = IncrementalClosedForm(data.features, data.labels, 0.1)
        first = view.delete(np.array([1, 2, 3]))
        again = view.delete(np.array([1, 2, 3]))
        assert np.allclose(first, again)
        # The base view is untouched.
        assert np.allclose(
            view.solve(), closed_form_solution(data.features, data.labels, 0.1)
        )

    def test_empty_deletion(self, data):
        view = IncrementalClosedForm(data.features, data.labels, 0.1)
        assert np.allclose(view.delete(np.array([], dtype=int)), view.solve())

    def test_delete_everything_rejected(self, data):
        view = IncrementalClosedForm(data.features, data.labels, 0.1)
        with pytest.raises(ValueError):
            view.delete(np.arange(data.n_samples))

    def test_insert_then_delete_roundtrip(self, data):
        view = IncrementalClosedForm(data.features, data.labels, 0.1)
        extra_x = np.random.default_rng(3).standard_normal((5, 7))
        extra_y = np.random.default_rng(4).standard_normal(5)
        inserted = view.insert(extra_x, extra_y)
        combined_x = np.vstack([data.features, extra_x])
        combined_y = np.concatenate([data.labels, extra_y])
        direct = closed_form_solution(combined_x, combined_y, 0.1)
        assert np.allclose(inserted, direct, atol=1e-8)

    def test_sparse_features(self):
        rng = np.random.default_rng(5)
        dense = rng.standard_normal((100, 20))
        dense[np.abs(dense) < 1.0] = 0.0
        features = sp.csr_matrix(dense)
        labels = rng.standard_normal(100)
        view = IncrementalClosedForm(features, labels, 0.05)
        removed = np.arange(10)
        keep = np.arange(10, 100)
        assert np.allclose(
            view.delete(removed),
            closed_form_solution(dense[keep], labels[keep], 0.05),
            atol=1e-8,
        )

    def test_nbytes_positive(self, data):
        view = IncrementalClosedForm(data.features, data.labels, 0.1)
        assert view.nbytes() == view._m.nbytes + view._n.nbytes
