"""Unit tests for the INFL baseline (group influence functions)."""

import numpy as np
import pytest

from repro.datasets import make_binary_classification, make_regression
from repro.models import (
    InfluenceFunctionUpdater,
    closed_form_solution,
    make_schedule,
    objective_for,
    train,
)


@pytest.fixture(scope="module")
def linear_setup():
    data = make_regression(300, 6, noise=0.05, seed=71)
    obj = objective_for("linear", 0.1)
    w_star = closed_form_solution(data.features, data.labels, 0.1)
    return data, obj, w_star


@pytest.fixture(scope="module")
def logistic_setup():
    data = make_binary_classification(400, 8, seed=72)
    obj = objective_for("binary_logistic", 0.05)
    schedule = make_schedule(data.n_samples, 64, 800, seed=1)
    result = train(obj, data.features, data.labels, schedule, 0.2)
    return data, obj, result.weights


class TestInfluenceLinear:
    def test_empty_removal_returns_original(self, linear_setup):
        data, obj, w_star = linear_setup
        infl = InfluenceFunctionUpdater(obj, data.features, data.labels, w_star)
        assert np.allclose(infl.update(np.array([], dtype=int)), w_star)

    def test_single_removal_tracks_direction(self, linear_setup):
        """One-sample influence must move toward the true leave-one-out model."""
        data, obj, w_star = linear_setup
        infl = InfluenceFunctionUpdater(obj, data.features, data.labels, w_star)
        removed = np.array([10])
        keep = np.setdiff1d(np.arange(data.n_samples), removed)
        true = closed_form_solution(data.features[keep], data.labels[keep], 0.1)
        estimated = infl.update(removed)
        assert np.linalg.norm(estimated - true) < np.linalg.norm(w_star - true) + 1e-12

    def test_accuracy_degrades_with_group_size(self, linear_setup):
        """The paper's point: INFL error grows as more samples are removed."""
        data, obj, w_star = linear_setup
        infl = InfluenceFunctionUpdater(obj, data.features, data.labels, w_star)

        def error(k):
            removed = np.arange(k)
            keep = np.arange(k, data.n_samples)
            true = closed_form_solution(
                data.features[keep], data.labels[keep], 0.1
            )
            return np.linalg.norm(infl.update(removed) - true)

        assert error(60) > error(5)

    def test_newton_mode_is_exact_for_quadratic(self, linear_setup):
        """One Newton step on a quadratic objective lands on the optimum."""
        data, obj, w_star = linear_setup
        infl = InfluenceFunctionUpdater(
            obj, data.features, data.labels, w_star, mode="newton"
        )
        removed = np.arange(30)
        keep = np.arange(30, data.n_samples)
        true = closed_form_solution(data.features[keep], data.labels[keep], 0.1)
        assert np.allclose(infl.update(removed), true, atol=1e-6)

    def test_cannot_delete_everything(self, linear_setup):
        data, obj, w_star = linear_setup
        infl = InfluenceFunctionUpdater(obj, data.features, data.labels, w_star)
        with pytest.raises(ValueError):
            infl.update(np.arange(data.n_samples))

    def test_unknown_mode_rejected(self, linear_setup):
        data, obj, w_star = linear_setup
        with pytest.raises(ValueError):
            InfluenceFunctionUpdater(
                obj, data.features, data.labels, w_star, mode="taylor-3"
            )


class TestInfluenceLogistic:
    def test_small_removal_stays_close_to_retraining(self, logistic_setup):
        data, obj, w_star = logistic_setup
        infl = InfluenceFunctionUpdater(obj, data.features, data.labels, w_star)
        removed = np.arange(4)
        schedule = make_schedule(data.n_samples, 64, 800, seed=1)
        retrained = train(
            obj, data.features, data.labels, schedule, 0.2,
            exclude=set(removed.tolist()),
        )
        estimated = infl.update(removed)
        assert np.linalg.norm(estimated - retrained.weights) < 0.5 * np.linalg.norm(
            retrained.weights
        )

    def test_cg_solver_agrees_with_direct(self, logistic_setup):
        data, obj, w_star = logistic_setup
        direct = InfluenceFunctionUpdater(obj, data.features, data.labels, w_star)
        cg = InfluenceFunctionUpdater(
            obj, data.features, data.labels, w_star, use_cg=True
        )
        removed = np.arange(10)
        assert np.allclose(direct.update(removed), cg.update(removed), atol=1e-6)

    def test_multinomial_gradient_sum_path(self):
        from repro.datasets import make_multiclass_classification

        data = make_multiclass_classification(200, 5, n_classes=3, seed=73)
        obj = objective_for("multinomial_logistic", 0.05, n_classes=3)
        schedule = make_schedule(data.n_samples, 32, 300, seed=2)
        result = train(obj, data.features, data.labels, schedule, 0.2)
        infl = InfluenceFunctionUpdater(
            obj, data.features, data.labels, result.weights
        )
        removed = np.arange(5)
        updated = infl.update(removed)
        assert updated.shape == result.weights.shape
        assert not np.allclose(updated, result.weights)
