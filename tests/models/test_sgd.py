"""Unit tests for the GBM trainer."""

import numpy as np
import pytest

from repro.datasets import make_binary_classification, make_regression
from repro.linalg import sigmoid_complement_interpolator
from repro.models import (
    closed_form_solution,
    make_schedule,
    objective_for,
    train,
)


class TestLinearTraining:
    def test_gd_converges_to_closed_form(self):
        data = make_regression(300, 6, noise=0.01, seed=41)
        obj = objective_for("linear", 0.05)
        schedule = make_schedule(data.n_samples, data.n_samples, 3000, kind="gd")
        result = train(obj, data.features, data.labels, schedule, 0.05)
        exact = closed_form_solution(data.features, data.labels, 0.05)
        assert np.allclose(result.weights, exact, atol=1e-4)

    def test_objective_decreases(self):
        data = make_regression(200, 5, seed=42)
        obj = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 32, 200, seed=1)
        result = train(
            obj, data.features, data.labels, schedule, 0.01, trace_every=50
        )
        trace = result.objective_trace
        assert trace[-1] < trace[0]

    def test_zero_iterations_returns_initial(self):
        data = make_regression(50, 3, seed=43)
        obj = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 0)
        result = train(obj, data.features, data.labels, schedule, 0.01)
        assert np.allclose(result.weights, 0.0)

    def test_custom_initial_weights(self):
        data = make_regression(50, 3, seed=44)
        obj = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 0)
        w0 = np.array([1.0, 2.0, 3.0])
        result = train(obj, data.features, data.labels, schedule, 0.01, w0=w0)
        assert np.allclose(result.weights, w0)

    def test_wrong_w0_size_rejected(self):
        data = make_regression(50, 3, seed=44)
        obj = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 5)
        with pytest.raises(ValueError):
            train(obj, data.features, data.labels, schedule, 0.01, w0=np.ones(7))


class TestExclusion:
    def test_exclusion_changes_model(self):
        data = make_regression(120, 4, seed=45)
        obj = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 20, 80, seed=2)
        full = train(obj, data.features, data.labels, schedule, 0.02)
        partial = train(
            obj, data.features, data.labels, schedule, 0.02,
            exclude=set(range(20)),
        )
        assert not np.allclose(full.weights, partial.weights)

    def test_exclusion_equals_physical_removal_under_gd(self):
        """With GD, excluding == literally deleting rows and retraining."""
        data = make_regression(80, 4, seed=46)
        obj = objective_for("linear", 0.1)
        removed = set(range(10))
        keep = np.array([i for i in range(data.n_samples) if i not in removed])
        schedule = make_schedule(data.n_samples, data.n_samples, 60, kind="gd")
        excluded = train(
            obj, data.features, data.labels, schedule, 0.02, exclude=removed
        )
        physical_schedule = make_schedule(keep.size, keep.size, 60, kind="gd")
        physical = train(
            obj, data.features[keep], data.labels[keep], physical_schedule, 0.02
        )
        assert np.allclose(excluded.weights, physical.weights, atol=1e-12)

    def test_fully_excluded_batch_shrinks_only(self):
        data = make_regression(20, 3, seed=47, validation_fraction=0.0)
        obj = objective_for("linear", 0.5)
        schedule = make_schedule(20, 20, 1, kind="gd")
        result = train(
            obj, data.features, data.labels, schedule, 0.1,
            exclude=set(range(20)), w0=np.ones(3),
        )
        assert np.allclose(result.weights, (1 - 0.1 * 0.5) * np.ones(3))


class TestLogisticTraining:
    def test_accuracy_beats_chance(self):
        data = make_binary_classification(500, 8, separation=1.5, seed=48)
        obj = objective_for("binary_logistic", 0.01)
        schedule = make_schedule(data.n_samples, 50, 400, seed=3)
        result = train(obj, data.features, data.labels, schedule, 0.1)
        acc = obj.metric(result.weights, data.valid_features, data.valid_labels)
        assert acc > 0.8

    def test_linearized_training_close_to_exact(self):
        """Theorem 4: ||w - w_L|| = O(Δx²)."""
        data = make_binary_classification(200, 6, seed=49)
        obj = objective_for("binary_logistic", 0.05)
        schedule = make_schedule(data.n_samples, 32, 150, seed=4)
        exact = train(obj, data.features, data.labels, schedule, 0.1)
        interp = sigmoid_complement_interpolator(n_intervals=50_000)
        linearized = train(
            obj, data.features, data.labels, schedule, 0.1, linearize=interp
        )
        assert np.linalg.norm(exact.weights - linearized.weights) < 1e-6

    def test_linearization_error_scales_quadratically(self):
        data = make_binary_classification(150, 5, seed=50)
        obj = objective_for("binary_logistic", 0.05)
        schedule = make_schedule(data.n_samples, 30, 100, seed=5)
        exact = train(obj, data.features, data.labels, schedule, 0.1)

        def error(n_intervals):
            interp = sigmoid_complement_interpolator(n_intervals=n_intervals)
            approx = train(
                obj, data.features, data.labels, schedule, 0.1, linearize=interp
            )
            return np.linalg.norm(exact.weights - approx.weights)

        coarse, fine = error(64), error(256)
        # Δx shrinks 4x -> error should shrink ~16x; allow slack.
        assert fine < coarse / 6

    def test_multinomial_accuracy(self, multiclass_data, multiclass_objective):
        schedule = make_schedule(multiclass_data.n_samples, 64, 300, seed=6)
        result = train(
            multiclass_objective,
            multiclass_data.features,
            multiclass_data.labels,
            schedule,
            0.1,
        )
        acc = multiclass_objective.metric(
            result.weights,
            multiclass_data.valid_features,
            multiclass_data.valid_labels,
        )
        assert acc > 0.7

    def test_unsupported_objective_type(self):
        class Weird:
            regularization = 0.0

            def n_parameters(self, m):
                return m

        data = make_regression(30, 3, seed=51)
        schedule = make_schedule(data.n_samples, 10, 5)
        with pytest.raises(TypeError):
            train(Weird(), data.features, data.labels, schedule, 0.1)


class TestCaptureHook:
    def test_hook_sees_pre_update_weights(self):
        data = make_regression(60, 3, seed=52)
        obj = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 15, 10, seed=7)
        snapshots = []

        def hook(t, batch, w, extras):
            snapshots.append((t, w.copy()))

        train(obj, data.features, data.labels, schedule, 0.01, capture_hook=hook)
        assert len(snapshots) == 10
        assert np.allclose(snapshots[0][1], 0.0)  # w^(0) before first update
        assert [t for t, _ in snapshots] == list(range(10))

    def test_binary_hook_receives_margins(self, binary_data, binary_objective):
        schedule = make_schedule(binary_data.n_samples, 25, 5, seed=8)
        captured = []

        def hook(t, batch, w, extras):
            captured.append(extras["margins"].shape)

        train(
            binary_objective, binary_data.features, binary_data.labels,
            schedule, 0.1, capture_hook=hook,
        )
        assert captured == [(25,)] * 5
