"""Unit tests for the three objectives, incl. finite-difference gradients."""

import numpy as np
import pytest

from repro.models import (
    BinaryLogisticObjective,
    LinearRegressionObjective,
    MultinomialLogisticObjective,
    objective_for,
)


def numeric_gradient(func, w, eps=1e-6):
    grad = np.zeros_like(w)
    for i in range(w.size):
        up = w.copy()
        up[i] += eps
        down = w.copy()
        down[i] -= eps
        grad[i] = (func(up) - func(down)) / (2 * eps)
    return grad


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestLinearObjective:
    def test_value_at_truth_is_noise_level(self, rng):
        x = rng.standard_normal((50, 4))
        w_true = rng.standard_normal(4)
        y = x @ w_true
        obj = LinearRegressionObjective(0.0)
        assert obj.value(w_true, x, y) == pytest.approx(0.0, abs=1e-12)

    def test_gradient_matches_finite_differences(self, rng):
        x = rng.standard_normal((30, 5))
        y = rng.standard_normal(30)
        w = rng.standard_normal(5)
        obj = LinearRegressionObjective(0.3)
        numeric = numeric_gradient(lambda v: obj.value(v, x, y), w)
        assert np.allclose(obj.gradient(w, x, y), numeric, atol=1e-5)

    def test_hessian_is_constant_and_correct(self, rng):
        x = rng.standard_normal((30, 4))
        y = rng.standard_normal(30)
        obj = LinearRegressionObjective(0.2)
        w = rng.standard_normal(4)
        expected = 2.0 * x.T @ x / 30 + 0.2 * np.eye(4)
        assert np.allclose(obj.hessian(w, x, y), expected)

    def test_metric_is_mse(self, rng):
        x = rng.standard_normal((20, 3))
        y = rng.standard_normal(20)
        obj = LinearRegressionObjective(0.5)
        w = np.zeros(3)
        assert obj.metric(w, x, y) == pytest.approx(np.mean(y**2))

    def test_regularization_enters_value_not_metric(self, rng):
        x = rng.standard_normal((20, 3))
        y = rng.standard_normal(20)
        w = rng.standard_normal(3)
        with_reg = LinearRegressionObjective(1.0)
        without = LinearRegressionObjective(0.0)
        assert with_reg.value(w, x, y) > without.value(w, x, y)
        assert with_reg.metric(w, x, y) == without.metric(w, x, y)


class TestBinaryLogisticObjective:
    def test_gradient_matches_finite_differences(self, rng):
        x = rng.standard_normal((40, 5))
        y = rng.choice([-1.0, 1.0], size=40)
        w = 0.5 * rng.standard_normal(5)
        obj = BinaryLogisticObjective(0.1)
        numeric = numeric_gradient(lambda v: obj.value(v, x, y), w)
        assert np.allclose(obj.gradient(w, x, y), numeric, atol=1e-5)

    def test_hessian_matches_finite_differences(self, rng):
        x = rng.standard_normal((25, 3))
        y = rng.choice([-1.0, 1.0], size=25)
        w = 0.3 * rng.standard_normal(3)
        obj = BinaryLogisticObjective(0.05)
        hessian = obj.hessian(w, x, y)
        numeric = np.column_stack(
            [
                numeric_gradient(lambda v: obj.gradient(v, x, y)[i], w)
                for i in range(3)
            ]
        )
        assert np.allclose(hessian, numeric, atol=1e-4)
        # PSD: logistic loss + L2 is convex.
        assert np.min(np.linalg.eigvalsh(hessian)) > 0

    def test_value_is_stable_for_extreme_margins(self):
        obj = BinaryLogisticObjective(0.0)
        x = np.array([[1000.0], [-1000.0]])
        y = np.array([1.0, -1.0])
        value = obj.value(np.array([1.0]), x, y)
        assert np.isfinite(value)
        assert value == pytest.approx(0.0, abs=1e-10)

    def test_predictions_and_accuracy(self, rng):
        obj = BinaryLogisticObjective(0.0)
        x = np.array([[2.0], [-3.0], [0.5]])
        w = np.array([1.0])
        assert np.allclose(obj.predict(w, x), [1.0, -1.0, 1.0])
        assert obj.metric(w, x, np.array([1.0, -1.0, -1.0])) == pytest.approx(2 / 3)

    def test_predict_proba_bounds(self, rng):
        obj = BinaryLogisticObjective(0.0)
        x = rng.standard_normal((10, 3))
        probs = obj.predict_proba(rng.standard_normal(3), x)
        assert np.all((probs >= 0) & (probs <= 1))


class TestMultinomialObjective:
    def test_gradient_matches_finite_differences(self, rng):
        q, m = 3, 4
        x = rng.standard_normal((30, m))
        y = rng.integers(0, q, size=30)
        w = 0.2 * rng.standard_normal(q * m)
        obj = MultinomialLogisticObjective(q, 0.05)
        numeric = numeric_gradient(lambda v: obj.value(v, x, y), w)
        assert np.allclose(obj.gradient(w, x, y), numeric, atol=1e-5)

    def test_hessian_matches_finite_differences(self, rng):
        q, m = 3, 2
        x = rng.standard_normal((15, m))
        y = rng.integers(0, q, size=15)
        w = 0.2 * rng.standard_normal(q * m)
        obj = MultinomialLogisticObjective(q, 0.1)
        hessian = obj.hessian(w, x, y)
        numeric = np.column_stack(
            [
                numeric_gradient(lambda v: obj.gradient(v, x, y)[i], w)
                for i in range(q * m)
            ]
        )
        assert np.allclose(hessian, numeric, atol=1e-4)

    def test_probabilities_sum_to_one(self, rng):
        obj = MultinomialLogisticObjective(4, 0.0)
        x = rng.standard_normal((12, 3))
        probs = obj.probabilities(rng.standard_normal(12), x)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_logit_shift_invariance(self, rng):
        """Adding a constant vector to every class leaves probs unchanged."""
        obj = MultinomialLogisticObjective(3, 0.0)
        x = rng.standard_normal((8, 2))
        w = rng.standard_normal(6)
        shift = np.tile(rng.standard_normal(2), 3)
        assert np.allclose(
            obj.probabilities(w, x), obj.probabilities(w + shift, x)
        )

    def test_predict_argmax(self, rng):
        obj = MultinomialLogisticObjective(3, 0.0)
        x = np.eye(3)
        w = np.eye(3).ravel()  # class k scores feature k
        assert np.array_equal(obj.predict(w, x), [0, 1, 2])

    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            MultinomialLogisticObjective(1)


class TestFactory:
    def test_known_tasks(self):
        assert objective_for("linear", 0.1).kind == "linear"
        assert objective_for("binary_logistic", 0.1).kind == "binary_logistic"
        multi = objective_for("multinomial_logistic", 0.1, n_classes=5)
        assert multi.n_classes == 5

    def test_multinomial_requires_classes(self):
        with pytest.raises(ValueError):
            objective_for("multinomial_logistic", 0.1)

    def test_unknown_task(self):
        with pytest.raises(ValueError):
            objective_for("svm", 0.1)
