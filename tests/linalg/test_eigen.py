"""Unit tests for the PrIU-opt eigen machinery (Eq. 15-18)."""

import numpy as np
import pytest

from repro.linalg import (
    eigendecompose,
    gd_diagonal_recursion,
    gd_diagonal_recursion_scheduled,
    incremental_eigenvalues,
    incremental_eigenvalues_from_rows,
)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def gram_and_rows(rng):
    rows = rng.standard_normal((60, 8))
    return rows.T @ rows, rows


class TestEigendecompose:
    def test_reconstruction(self, gram_and_rows):
        gram, _ = gram_and_rows
        system = eigendecompose(gram)
        assert np.allclose(system.reconstruct(), gram, atol=1e-8)

    def test_orthonormal_eigenvectors(self, gram_and_rows):
        gram, _ = gram_and_rows
        system = eigendecompose(gram)
        q = system.eigenvectors
        assert np.allclose(q.T @ q, np.eye(q.shape[1]), atol=1e-10)

    def test_basis_roundtrip(self, gram_and_rows, rng):
        gram, _ = gram_and_rows
        system = eigendecompose(gram)
        v = rng.standard_normal(8)
        assert np.allclose(system.from_eigenbasis(system.to_eigenbasis(v)), v)

    def test_asymmetric_input_symmetrized(self, rng):
        m = rng.standard_normal((5, 5))
        system = eigendecompose(m)
        assert np.allclose(system.reconstruct(), 0.5 * (m + m.T), atol=1e-8)


class TestIncrementalEigenvalues:
    def test_exact_when_eigenvectors_unchanged(self, rng):
        """If ΔM commutes with M's eigenbasis the update is exact."""
        basis, _ = np.linalg.qr(rng.standard_normal((6, 6)))
        values = np.array([9.0, 7.0, 5.0, 3.0, 2.0, 1.0])
        gram = (basis * values) @ basis.T
        system = eigendecompose(gram)
        delta_values = np.array([0.5, 0.1, 0.0, 0.2, 0.0, 0.1])
        delta = (system.eigenvectors * delta_values) @ system.eigenvectors.T
        updated = incremental_eigenvalues(system, delta)
        true = np.linalg.eigvalsh(gram - delta)
        assert np.allclose(np.sort(updated), np.sort(true), atol=1e-8)

    def test_small_perturbation_accuracy(self, gram_and_rows, rng):
        """Ning et al.: accuracy O(‖ΔM‖) for small removals."""
        gram, rows = gram_and_rows
        system = eigendecompose(gram)
        removed = rows[:2]
        delta = removed.T @ removed
        updated = incremental_eigenvalues(system, delta)
        true = np.linalg.eigvalsh(gram - delta)
        error = np.max(np.abs(np.sort(updated) - np.sort(true)))
        assert error <= np.linalg.norm(delta, 2)

    def test_from_rows_matches_dense(self, gram_and_rows):
        gram, rows = gram_and_rows
        system = eigendecompose(gram)
        removed = rows[:5]
        dense = incremental_eigenvalues(system, removed.T @ removed)
        factored = incremental_eigenvalues_from_rows(system, removed)
        assert np.allclose(dense, factored, atol=1e-10)

    def test_from_rows_with_weights(self, gram_and_rows):
        gram, rows = gram_and_rows
        system = eigendecompose(gram)
        removed = rows[:4]
        weights = np.array([-0.2, -0.5, -0.1, -0.9])
        dense = incremental_eigenvalues(
            system, removed.T @ (removed * weights[:, None])
        )
        factored = incremental_eigenvalues_from_rows(system, removed, weights)
        assert np.allclose(dense, factored, atol=1e-10)

    def test_empty_removal_is_identity(self, gram_and_rows):
        gram, _ = gram_and_rows
        system = eigendecompose(gram)
        updated = incremental_eigenvalues_from_rows(system, np.empty((0, 8)))
        assert np.allclose(updated, system.eigenvalues)


class TestDiagonalRecursion:
    def _manual(self, rho, v0, b, eta, t):
        v = v0.copy()
        for _ in range(t):
            v = rho * v + eta * b
        return v

    def test_closed_form_matches_loop(self, rng):
        eigenvalues = rng.uniform(0.5, 5.0, size=6)
        v0 = rng.standard_normal(6)
        b = rng.standard_normal(6)
        eta, lam, n, t = 0.05, 0.1, 100, 40
        closed = gd_diagonal_recursion(eigenvalues, v0, b, n, t, eta, lam)
        rho = 1.0 - eta * lam - 2.0 * eta / n * eigenvalues
        assert np.allclose(closed, self._manual(rho, v0, b, eta, t), atol=1e-10)

    def test_positive_gram_sign(self, rng):
        """Logistic tail uses gram_sign=+1 (slopes carry the minus)."""
        eigenvalues = -rng.uniform(0.5, 5.0, size=4)  # negative: -a x xᵀ
        v0 = rng.standard_normal(4)
        b = rng.standard_normal(4)
        eta, lam, n, t = 0.05, 0.1, 60, 25
        closed = gd_diagonal_recursion(
            eigenvalues, v0, b, n, t, eta, lam, gram_sign=1.0
        )
        rho = 1.0 - eta * lam + eta / n * eigenvalues
        assert np.allclose(closed, self._manual(rho, v0, b, eta, t), atol=1e-10)

    def test_rho_equal_one_special_case(self):
        """ρ = 1 would divide by zero in the geometric form."""
        # eta*lam = -2*eta*c/n  =>  choose lam=0, c=0.
        closed = gd_diagonal_recursion(
            np.array([0.0]), np.array([2.0]), np.array([3.0]),
            n_samples=10, n_iterations=7, learning_rate=0.1, regularization=0.0,
        )
        # v_t = v0 + eta*b*t
        assert closed[0] == pytest.approx(2.0 + 0.1 * 3.0 * 7)

    def test_scheduled_variant_matches_constant_rate(self, rng):
        eigenvalues = rng.uniform(0.1, 2.0, size=5)
        v0 = rng.standard_normal(5)
        b = rng.standard_normal(5)
        constant = gd_diagonal_recursion(eigenvalues, v0, b, 50, 30, 0.02, 0.1)
        scheduled = gd_diagonal_recursion_scheduled(
            eigenvalues, v0, b, 50, np.full(30, 0.02), 0.1
        )
        assert np.allclose(constant, scheduled, atol=1e-10)

    def test_convergence_to_fixed_point(self, rng):
        """With ρ < 1 the recursion converges to ηb / (1-ρ)."""
        eigenvalues = np.array([4.0])
        v0 = np.array([0.0])
        b = np.array([1.0])
        eta, lam, n = 0.1, 0.2, 10
        result = gd_diagonal_recursion(eigenvalues, v0, b, n, 10_000, eta, lam)
        rho = 1 - eta * lam - 2 * eta / n * eigenvalues
        assert result[0] == pytest.approx(eta * b[0] / (1 - rho[0]), rel=1e-6)
