"""Unit tests for truncated SVD summaries (Theorems 6/8 machinery)."""

import numpy as np
import pytest

from repro.linalg import (
    select_rank,
    spectral_mass_ratio,
    truncate_from_samples,
    truncate_summary,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def low_rank_gram(rng, m=20, rank=4, scale=None):
    basis = rng.standard_normal((m, rank))
    if scale is not None:
        basis *= scale
    return basis @ basis.T


class TestSelectRank:
    def test_flat_spectrum_keeps_everything(self):
        s = np.ones(5)
        assert select_rank(s, 0.01) == 5

    def test_decaying_spectrum_truncates(self):
        s = np.array([1.0, 0.5, 0.001, 0.0001])
        assert select_rank(s, 0.01) == 2

    def test_zero_matrix(self):
        assert select_rank(np.zeros(3), 0.01) == 1

    def test_rank_at_least_one(self):
        assert select_rank(np.array([1.0, 1e-9]), 0.5) >= 1


class TestTruncateSummary:
    def test_low_rank_matrix_reconstructs_exactly(self, rng):
        gram = low_rank_gram(rng, m=15, rank=3)
        summary = truncate_summary(gram, epsilon=1e-10)
        assert summary.rank <= 4  # rank 3 + tolerance
        assert np.allclose(summary.reconstruct(), gram, atol=1e-8)

    def test_symmetric_fast_path_agrees(self, rng):
        gram = low_rank_gram(rng, m=12, rank=5)
        dense = truncate_summary(gram, epsilon=1e-10, symmetric=False)
        fast = truncate_summary(gram, epsilon=1e-10, symmetric=True)
        assert np.allclose(dense.reconstruct(), fast.reconstruct(), atol=1e-8)

    def test_apply_equals_reconstruct_matvec(self, rng):
        gram = low_rank_gram(rng, m=10, rank=3)
        summary = truncate_summary(gram, epsilon=1e-12)
        v = rng.standard_normal(10)
        assert np.allclose(summary.apply(v), gram @ v, atol=1e-8)

    def test_max_rank_cap(self, rng):
        gram = low_rank_gram(rng, m=10, rank=8)
        summary = truncate_summary(gram, epsilon=1e-12, max_rank=2)
        assert summary.rank == 2

    def test_mass_ratio_criterion(self, rng):
        """Theorem 6 condition: kept spectral mass ratio >= 1 - eps."""
        scales = np.array([10.0, 5.0, 1.0, 0.01, 0.001])
        gram = low_rank_gram(rng, m=20, rank=5, scale=scales)
        summary = truncate_summary(gram, epsilon=0.05, symmetric=True)
        assert spectral_mass_ratio(gram, summary) >= 0.95

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            truncate_summary(rng.standard_normal((3, 4)))

    def test_negative_eigenvalues_preserved(self, rng):
        """Logistic summaries Σ a_i x_i x_iᵀ are negative semi-definite."""
        basis = rng.standard_normal((8, 3))
        gram = -(basis @ basis.T)
        summary = truncate_summary(gram, epsilon=1e-10, symmetric=True)
        assert np.allclose(summary.reconstruct(), gram, atol=1e-8)


class TestTruncateFromSamples:
    def test_matches_dense_route_tall_block(self, rng):
        rows = rng.standard_normal((30, 8))
        weights = rng.uniform(0.5, 2.0, size=30)
        factored = truncate_from_samples(rows, weights, epsilon=1e-12)
        dense = rows.T @ (rows * weights[:, None])
        assert np.allclose(factored.reconstruct(), dense, atol=1e-8)

    def test_matches_dense_route_wide_block(self, rng):
        """B < m: the thin-SVD path PrIU uses when batches are small."""
        rows = rng.standard_normal((5, 20))
        weights = rng.uniform(0.5, 2.0, size=5)
        factored = truncate_from_samples(rows, weights, epsilon=1e-12)
        dense = rows.T @ (rows * weights[:, None])
        assert factored.rank <= 5
        assert np.allclose(factored.reconstruct(), dense, atol=1e-8)

    def test_negative_weights(self, rng):
        rows = rng.standard_normal((4, 12))
        weights = np.array([-0.5, -0.1, -0.9, -0.2])
        factored = truncate_from_samples(rows, weights, epsilon=1e-12)
        dense = rows.T @ (rows * weights[:, None])
        assert np.allclose(factored.reconstruct(), dense, atol=1e-8)

    def test_mixed_sign_weights(self, rng):
        rows = rng.standard_normal((6, 10))
        weights = np.array([1.0, -1.0, 0.5, -0.5, 2.0, -0.1])
        factored = truncate_from_samples(rows, weights, epsilon=1e-12)
        dense = rows.T @ (rows * weights[:, None])
        assert np.allclose(factored.reconstruct(), dense, atol=1e-8)

    def test_default_weights_are_ones(self, rng):
        rows = rng.standard_normal((4, 9))
        factored = truncate_from_samples(rows, epsilon=1e-12)
        assert np.allclose(factored.reconstruct(), rows.T @ rows, atol=1e-8)

    def test_weight_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            truncate_from_samples(rng.standard_normal((4, 3)), np.ones(5))

    def test_nbytes_accounts_factors(self, rng):
        rows = rng.standard_normal((3, 6))
        summary = truncate_from_samples(rows, epsilon=1e-12)
        expected = summary.left.nbytes + summary.right.nbytes
        assert summary.nbytes() == expected

    def test_truncation_reduces_rank_on_decaying_spectrum(self, rng):
        # Rows drawn with strongly decaying directions compress hard.
        scales = np.array([10.0**-k for k in range(10)])
        rows = rng.standard_normal((50, 10)) * scales
        summary = truncate_from_samples(rows, epsilon=0.01)
        assert summary.rank < 6


class TestRetruncateSummary:
    """ε-re-truncation of commit-widened factor pairs (maintenance)."""

    def _widened(self, rng, m=12, base_rank=4, extra=30):
        """A low-rank summary with exact rank-1 corrections appended —
        the shape ProvenanceStore.compact leaves behind."""
        from repro.linalg import retruncate_summary, truncate_summary

        gram_matrix = low_rank_gram(rng, m=m, rank=base_rank)
        summary = truncate_summary(gram_matrix, epsilon=1e-12, symmetric=True)
        dense = summary.reconstruct()
        for _ in range(extra):
            row = rng.standard_normal(m) * 0.3
            summary = type(summary)(
                left=np.hstack([summary.left, -row[:, None]]),
                right=np.hstack([summary.right, row[:, None]]),
            )
            dense = dense - np.outer(row, row)
        return summary, dense, retruncate_summary

    def test_exact_mode_preserves_operator_to_machine_precision(self, rng):
        summary, dense, retruncate_summary = self._widened(rng)
        assert summary.rank > summary.n_features  # genuinely widened
        result = retruncate_summary(summary)
        assert result.rank_before == summary.rank
        # Width capped at the operator dimension (numerical rank bound).
        assert result.rank_after <= summary.n_features
        np.testing.assert_allclose(
            result.summary.reconstruct(), dense, atol=1e-10, rtol=0.0
        )
        assert result.error_bound <= 1e-10 * max(1.0, result.spectral_norm)
        assert result.error_bound_relative < 1e-12

    def test_lossy_epsilon_truncates_harder_with_exact_bound(self, rng):
        summary, dense, retruncate_summary = self._widened(rng)
        result = retruncate_summary(summary, epsilon=0.05)
        exact = retruncate_summary(summary)
        assert result.rank_after <= exact.rank_after
        # The reported bound is the exact 2-norm distance to the widened
        # operator (largest dropped singular value).
        distance = np.linalg.norm(result.summary.reconstruct() - dense, 2)
        assert distance <= result.error_bound + 1e-8
        assert result.error_bound <= 0.05 * result.spectral_norm + 1e-12

    def test_max_rank_cap_applies(self, rng):
        summary, _, retruncate_summary = self._widened(rng)
        result = retruncate_summary(summary, max_rank=3)
        assert result.summary.rank == 3

    def test_zero_operator_keeps_single_zero_column(self, rng):
        from repro.linalg import TruncatedSummary, retruncate_summary

        summary = TruncatedSummary(
            left=np.zeros((6, 4)), right=np.zeros((6, 4))
        )
        result = retruncate_summary(summary)
        assert result.summary.rank == 1
        assert result.error_bound == 0.0
        assert result.error_bound_relative == 0.0
        np.testing.assert_array_equal(
            result.summary.reconstruct(), np.zeros((6, 6))
        )

    def test_already_tight_summary_is_stable(self, rng):
        from repro.linalg import retruncate_summary, truncate_summary

        gram_matrix = low_rank_gram(rng, m=10, rank=3)
        summary = truncate_summary(gram_matrix, epsilon=1e-12, symmetric=True)
        result = retruncate_summary(summary)
        assert result.rank_after <= summary.rank
        np.testing.assert_allclose(
            result.summary.reconstruct(),
            summary.reconstruct(),
            atol=1e-10,
            rtol=0.0,
        )


class TestIncrementalRetruncation:
    """Folding few appended correction columns into retained QR factors."""

    def _widened(self, rng, m=12, base_rank=8, extra=4):
        from repro.linalg import retruncate_summary, truncate_summary

        gram_matrix = low_rank_gram(rng, m=m, rank=base_rank)
        summary = truncate_summary(gram_matrix, epsilon=1e-12, symmetric=True)
        dense = summary.reconstruct()
        for _ in range(extra):
            row = rng.standard_normal(m) * 0.3
            summary = type(summary)(
                left=np.hstack([summary.left, -row[:, None]]),
                right=np.hstack([summary.right, row[:, None]]),
            )
            dense = dense - np.outer(row, row)
        return summary, dense, retruncate_summary

    def test_crossover_rule(self):
        from repro.linalg.svd import incremental_retruncation_wins

        assert incremental_retruncation_wins(retained=10, appended=2)
        assert incremental_retruncation_wins(retained=10, appended=5)
        assert not incremental_retruncation_wins(retained=10, appended=6)
        assert not incremental_retruncation_wins(retained=10, appended=0)
        assert not incremental_retruncation_wins(retained=0, appended=1)

    def test_incremental_matches_full_at_contract(self, rng):
        summary, dense, retruncate_summary = self._widened(rng, extra=3)
        appended = 3
        incremental = retruncate_summary(summary, appended=appended)
        full = retruncate_summary(summary)
        assert incremental.method == "incremental"
        assert full.method == "qr"
        assert incremental.rank_after == full.rank_after
        np.testing.assert_allclose(
            incremental.summary.reconstruct(), dense, atol=1e-10, rtol=0.0
        )
        np.testing.assert_allclose(
            incremental.summary.reconstruct(),
            full.summary.reconstruct(),
            atol=1e-10, rtol=0.0,
        )

    def test_past_crossover_takes_the_full_path(self, rng):
        # 30 appended vs 5 retained: the small-core update would be
        # larger than the whole width — the full thin-QR wins.
        summary, dense, retruncate_summary = self._widened(rng, extra=30)
        result = retruncate_summary(summary, appended=30)
        assert result.method == "qr"
        np.testing.assert_allclose(
            result.summary.reconstruct(), dense, atol=1e-10, rtol=0.0
        )

    def test_appended_none_is_the_full_path(self, rng):
        summary, _, retruncate_summary = self._widened(rng, extra=2)
        assert retruncate_summary(summary, appended=None).method == "qr"

    def test_lossy_epsilon_agrees_between_paths(self, rng):
        summary, _, retruncate_summary = self._widened(rng, extra=3)
        incremental = retruncate_summary(summary, epsilon=0.05, appended=3)
        full = retruncate_summary(summary, epsilon=0.05)
        assert incremental.method == "incremental"
        assert incremental.rank_after == full.rank_after
        np.testing.assert_allclose(
            incremental.summary.reconstruct(),
            full.summary.reconstruct(),
            atol=1e-10, rtol=0.0,
        )

    def test_max_rank_cap_applies_incrementally(self, rng):
        summary, _, retruncate_summary = self._widened(rng, extra=3)
        result = retruncate_summary(summary, max_rank=3, appended=3)
        assert result.method == "incremental"
        assert result.summary.rank == 3

    def test_appended_columns_within_retained_span(self, rng):
        """Corrections that lie inside the retained range-space must not
        inflate the rank — the Gram–Schmidt residual is numerically zero
        and the small core absorbs them."""
        from repro.linalg import retruncate_summary, truncate_summary

        gram_matrix = low_rank_gram(rng, m=10, rank=3)
        summary = truncate_summary(gram_matrix, epsilon=1e-12, symmetric=True)
        dense = summary.reconstruct()
        direction = summary.left[:, 0] / np.linalg.norm(summary.left[:, 0])
        summary = type(summary)(
            left=np.hstack([summary.left, -0.2 * direction[:, None]]),
            right=np.hstack([summary.right, direction[:, None]]),
        )
        dense = dense - 0.2 * np.outer(direction, direction)
        result = retruncate_summary(summary, appended=1)
        assert result.method == "incremental"
        assert result.rank_after <= 3
        np.testing.assert_allclose(
            result.summary.reconstruct(), dense, atol=1e-10, rtol=0.0
        )
