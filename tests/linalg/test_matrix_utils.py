"""Unit tests for dense/sparse matrix helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import (
    gram,
    is_sparse,
    matvec,
    moment,
    nbytes_of,
    row_block,
    spectral_norm,
    stable_solve,
    symmetrize,
    weighted_gram,
)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


@pytest.fixture
def dense(rng):
    return rng.standard_normal((20, 6))


@pytest.fixture
def sparse(dense):
    masked = dense.copy()
    masked[np.abs(masked) < 0.8] = 0.0
    return sp.csr_matrix(masked)


class TestBasics:
    def test_is_sparse(self, dense, sparse):
        assert is_sparse(sparse)
        assert not is_sparse(dense)

    def test_row_block(self, dense, sparse):
        idx = np.array([1, 3, 5])
        assert np.allclose(row_block(dense, idx), dense[idx])
        assert np.allclose(row_block(sparse, idx).todense(), sparse[idx].todense())

    def test_gram_dense_vs_sparse(self, dense, sparse):
        assert np.allclose(gram(sparse), np.asarray(sparse.todense()).T @ sparse.todense())
        assert np.allclose(gram(dense), dense.T @ dense)

    def test_weighted_gram(self, dense, sparse, rng):
        w = rng.uniform(-1, 1, size=20)
        expected = dense.T @ (dense * w[:, None])
        assert np.allclose(weighted_gram(dense, w), expected)
        sparse_dense = np.asarray(sparse.todense())
        expected_sp = sparse_dense.T @ (sparse_dense * w[:, None])
        assert np.allclose(weighted_gram(sparse, w), expected_sp)

    def test_moment(self, dense, sparse, rng):
        y = rng.standard_normal(20)
        assert np.allclose(moment(dense, y), dense.T @ y)
        assert np.allclose(moment(sparse, y), np.asarray(sparse.todense()).T @ y)

    def test_matvec_shapes(self, dense, sparse, rng):
        v = rng.standard_normal(6)
        assert matvec(dense, v).shape == (20,)
        assert matvec(sparse, v).shape == (20,)
        assert np.allclose(matvec(sparse, v), np.asarray(sparse.todense()) @ v)


class TestNumerics:
    def test_spectral_norm_matches_numpy(self, rng):
        m = rng.standard_normal((15, 10))
        assert spectral_norm(m, n_iterations=200) == pytest.approx(
            np.linalg.norm(m, 2), rel=1e-3
        )

    def test_spectral_norm_zero_matrix(self):
        assert spectral_norm(np.zeros((4, 4))) == 0.0

    def test_symmetrize(self, rng):
        m = rng.standard_normal((5, 5))
        s = symmetrize(m)
        assert np.allclose(s, s.T)

    def test_stable_solve_regular(self, rng):
        a = rng.standard_normal((6, 6)) + 6 * np.eye(6)
        b = rng.standard_normal(6)
        assert np.allclose(a @ stable_solve(a, b), b)

    def test_stable_solve_singular_falls_back(self):
        a = np.zeros((3, 3))
        a[0, 0] = 1.0
        b = np.array([2.0, 0.0, 0.0])
        x = stable_solve(a, b)
        assert np.allclose(a @ x, b)

    def test_nbytes(self, dense, sparse):
        assert nbytes_of(dense) == dense.nbytes
        assert nbytes_of(sparse) > 0
        assert nbytes_of(sparse) < nbytes_of(dense)
