"""Unit tests for piecewise linear interpolation (Sec. 4.2, Theorem 4)."""

import numpy as np
import pytest

from repro.linalg import (
    SIGMOID_SECOND_DERIVATIVE_BOUND,
    PiecewiseLinearInterpolator,
    sigmoid,
    sigmoid_complement,
    sigmoid_complement_interpolator,
)


class TestSigmoid:
    def test_known_values(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)
        assert sigmoid(np.array([100.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-100.0]))[0] == pytest.approx(0.0)

    def test_no_overflow_for_extreme_inputs(self):
        values = sigmoid(np.array([-1e4, 1e4]))
        assert np.all(np.isfinite(values))

    def test_complement_identity(self):
        x = np.linspace(-10, 10, 101)
        assert np.allclose(sigmoid_complement(x), 1.0 - sigmoid(x))

    def test_symmetry(self):
        x = np.linspace(-5, 5, 51)
        assert np.allclose(sigmoid(-x), 1.0 - sigmoid(x))


class TestInterpolator:
    def test_exact_at_grid_points(self):
        interp = sigmoid_complement_interpolator(half_width=4, n_intervals=16)
        assert np.allclose(interp(interp.grid), interp.values)

    def test_coefficients_reconstruct_interpolant(self):
        interp = sigmoid_complement_interpolator(half_width=5, n_intervals=50)
        x = np.linspace(-4.9, 4.9, 37)
        slopes, intercepts = interp.coefficients(x)
        assert np.allclose(slopes * x + intercepts, interp(x))

    def test_saturation_outside_interval(self):
        interp = sigmoid_complement_interpolator(half_width=3, n_intervals=10)
        slopes, intercepts = interp.coefficients(np.array([-10.0, 10.0]))
        assert np.allclose(slopes, 0.0)
        assert intercepts[0] == pytest.approx(sigmoid_complement(np.array([-3.0]))[0])
        assert intercepts[1] == pytest.approx(sigmoid_complement(np.array([3.0]))[0])

    def test_error_bound_theorem4(self):
        """Empirical max error must respect Δx²/8 · max|f''| (Lemma 9)."""
        interp = sigmoid_complement_interpolator(half_width=20, n_intervals=2000)
        bound = interp.max_error_bound(SIGMOID_SECOND_DERIVATIVE_BOUND)
        assert interp.empirical_max_error() <= bound + 1e-12

    def test_error_shrinks_quadratically(self):
        """Halving Δx must shrink the error by ~4x — the O(Δx²) rate."""
        coarse = sigmoid_complement_interpolator(half_width=8, n_intervals=64)
        fine = sigmoid_complement_interpolator(half_width=8, n_intervals=128)
        ratio = coarse.empirical_max_error() / fine.empirical_max_error()
        assert 3.0 < ratio < 5.0

    def test_slopes_of_sigmoid_complement_are_negative_inside(self):
        interp = sigmoid_complement_interpolator(half_width=6, n_intervals=60)
        x = np.linspace(-5.5, 5.5, 23)
        slopes, _ = interp.coefficients(x)
        assert np.all(slopes < 0)

    def test_generic_function(self):
        interp = PiecewiseLinearInterpolator(np.cos, half_width=3, n_intervals=300)
        x = np.linspace(-2.9, 2.9, 100)
        assert np.max(np.abs(interp(x) - np.cos(x))) < 1e-3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PiecewiseLinearInterpolator(np.cos, half_width=0)
        with pytest.raises(ValueError):
            PiecewiseLinearInterpolator(np.cos, n_intervals=0)

    def test_scalar_shapes_follow_input(self):
        interp = sigmoid_complement_interpolator(half_width=2, n_intervals=8)
        slopes, intercepts = interp.coefficients(np.array(0.5))
        assert np.ndim(slopes) == 0
        assert np.ndim(intercepts) == 0
