"""Unit tests for model comparison and table rendering."""

import numpy as np
import pytest

from repro.eval import compare_updated_models, format_table
from repro.models import objective_for


class TestCompareUpdatedModels:
    def test_identical_models(self, rng):
        obj = objective_for("linear", 0.1)
        x = rng.standard_normal((30, 4))
        y = rng.standard_normal(30)
        w = rng.standard_normal(4)
        comparison = compare_updated_models("priu", obj, w, w.copy(), x, y)
        assert comparison.distance == 0.0
        assert comparison.similarity == 1.0
        assert comparison.sign_flips == 0
        assert comparison.candidate_metric == comparison.reference_metric

    def test_diverging_model_flagged(self, rng):
        obj = objective_for("binary_logistic", 0.1)
        x = rng.standard_normal((40, 4))
        y = np.where(rng.standard_normal(40) > 0, 1.0, -1.0)
        reference = rng.standard_normal(4)
        candidate = -reference  # opposite direction
        comparison = compare_updated_models("infl", obj, reference, candidate, x, y)
        assert comparison.similarity == pytest.approx(-1.0)
        assert comparison.sign_flips == 4
        assert comparison.distance > 0

    def test_row_is_flat_dict(self, rng):
        obj = objective_for("linear", 0.0)
        x = rng.standard_normal((10, 3))
        y = rng.standard_normal(10)
        w = rng.standard_normal(3)
        row = compare_updated_models("m", obj, w, w + 0.01, x, y).row()
        assert row["method"] == "m"
        assert set(row) >= {"distance", "similarity", "sign_flips"}


class TestFormatTable:
    def test_renders_columns(self):
        rows = [
            {"a": 1, "b": 0.5},
            {"a": 200, "b": 1.25e-7},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "200" in text
        assert "1.250e-07" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_missing_column_filled(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "b" in text
