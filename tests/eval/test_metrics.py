"""Unit tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.eval import (
    accuracy,
    cosine_similarity,
    l2_distance,
    magnitude_change,
    mse,
    sign_flips,
)


class TestBasicMetrics:
    def test_mse(self):
        assert mse(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == 2.0
        assert mse(np.zeros(5), np.zeros(5)) == 0.0

    def test_accuracy(self):
        assert accuracy(np.array([1, -1, 1]), np.array([1, 1, 1])) == pytest.approx(
            2 / 3
        )

    def test_l2_distance(self):
        assert l2_distance(np.array([3.0, 0.0]), np.array([0.0, 4.0])) == 5.0
        assert l2_distance(np.ones(4), np.ones(4)) == 0.0


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_opposite_vectors(self):
        v = np.array([1.0, -2.0])
        assert cosine_similarity(v, -v) == pytest.approx(-1.0)

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == (
            pytest.approx(0.0)
        )

    def test_zero_vectors(self):
        assert cosine_similarity(np.zeros(3), np.zeros(3)) == 1.0
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0

    def test_scale_invariance(self):
        a = np.array([1.0, 2.0, -1.0])
        assert cosine_similarity(a, 7.5 * a) == pytest.approx(1.0)


class TestFineGrained:
    def test_sign_flips_counts(self):
        ref = np.array([1.0, -1.0, 2.0, -2.0])
        cand = np.array([1.0, 1.0, -2.0, -2.0])
        assert sign_flips(ref, cand) == 2

    def test_sign_flips_ignores_zeros(self):
        ref = np.array([0.0, 1.0])
        cand = np.array([-1.0, 1.0])
        assert sign_flips(ref, cand) == 0

    def test_magnitude_change(self):
        ref = np.array([2.0, 4.0])
        cand = np.array([2.2, 4.0])
        change = magnitude_change(ref, cand)
        assert change.max_relative == pytest.approx(0.1)
        assert change.mean_relative == pytest.approx(0.05)

    def test_magnitude_change_all_zero_reference(self):
        change = magnitude_change(np.zeros(3), np.ones(3))
        assert change.max_relative == 0.0
