"""Unit tests for timing helpers and latency summaries."""

import time

import pytest

from repro.eval import (
    LatencySummary,
    Stopwatch,
    Timing,
    measure,
    percentile,
    summarize_latencies,
)


class TestMeasure:
    def test_counts_runs(self):
        calls = []
        timing = measure(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
        assert timing.runs == 4
        assert timing.best <= timing.mean

    def test_measures_sleep(self):
        # reprolint: allow[R005] the subject under test is wall-clock measurement itself
        timing = measure(lambda: time.sleep(0.01), repeats=2)
        assert timing.best >= 0.009

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)


class TestSpeedup:
    def test_speedup_over(self):
        fast = Timing(best=0.1, mean=0.1, runs=1)
        slow = Timing(best=1.0, mean=1.0, runs=1)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_zero_time(self):
        instant = Timing(best=0.0, mean=0.0, runs=1)
        other = Timing(best=1.0, mean=1.0, runs=1)
        assert instant.speedup_over(other) == float("inf")


class TestStopwatch:
    def test_captures_interval(self):
        with Stopwatch() as watch:
            # reprolint: allow[R005] the subject under test is wall-clock measurement itself
            time.sleep(0.01)
        assert watch.seconds >= 0.009


class TestPercentile:
    def test_median_of_odd_count(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == pytest.approx(2.0)

    def test_interpolates(self):
        assert percentile([0.0, 1.0], 0.25) == pytest.approx(0.25)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_rejects_nan(self):
        # sorted() ordering is undefined with NaN: without the guard the
        # sample silently lands wherever the sort left it and p50/p95 lie.
        with pytest.raises(ValueError, match="finite"):
            percentile([0.1, float("nan"), 0.3], 0.5)

    def test_rejects_infinity(self):
        with pytest.raises(ValueError, match="finite"):
            percentile([0.1, float("inf")], 0.95)


class TestLatencySummary:
    def test_from_samples(self):
        summary = LatencySummary.from_samples([0.1, 0.2, 0.3, 0.4])
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.25)
        assert summary.min == pytest.approx(0.1)
        assert summary.max == pytest.approx(0.4)
        assert summary.p50 == pytest.approx(0.25)
        assert (
            summary.min
            <= summary.p50
            <= summary.p95
            <= summary.p99
            <= summary.max
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencySummary.from_samples([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            LatencySummary.from_samples([0.2, float("nan")])

    def test_summarize_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            summarize_latencies([float("-inf"), 0.1])

    def test_as_dict_roundtrips_fields(self):
        summary = LatencySummary.from_samples([1.0, 2.0])
        payload = summary.as_dict()
        assert payload["count"] == 2
        assert set(payload) == {
            "count", "mean", "p50", "p95", "p99", "min", "max",
        }

    def test_summarize_empty_is_none(self):
        assert summarize_latencies([]) is None

    def test_summarize_nonempty(self):
        summary = summarize_latencies(iter([0.5]))
        assert summary.count == 1
        assert summary.p95 == pytest.approx(0.5)
