"""Unit tests for timing helpers."""

import time

import pytest

from repro.eval import Stopwatch, Timing, measure


class TestMeasure:
    def test_counts_runs(self):
        calls = []
        timing = measure(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
        assert timing.runs == 4
        assert timing.best <= timing.mean

    def test_measures_sleep(self):
        timing = measure(lambda: time.sleep(0.01), repeats=2)
        assert timing.best >= 0.009

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)


class TestSpeedup:
    def test_speedup_over(self):
        fast = Timing(best=0.1, mean=0.1, runs=1)
        slow = Timing(best=1.0, mean=1.0, runs=1)
        assert fast.speedup_over(slow) == pytest.approx(10.0)

    def test_zero_time(self):
        instant = Timing(best=0.0, mean=0.0, runs=1)
        other = Timing(best=1.0, mean=1.0, runs=1)
        assert instant.speedup_over(other) == float("inf")


class TestStopwatch:
    def test_captures_interval(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.seconds >= 0.009
