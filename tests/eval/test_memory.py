"""Unit tests for memory accounting (Table 3)."""

import numpy as np
import scipy.sparse as sp

from repro.core import train_with_capture
from repro.datasets import make_regression
from repro.eval import data_bytes, memory_report
from repro.models import make_schedule, objective_for


class TestDataBytes:
    def test_dense(self):
        x = np.zeros((10, 4))
        y = np.zeros(10)
        assert data_bytes(x, y) == x.nbytes + y.nbytes

    def test_sparse_counts_csr_arrays(self):
        x = sp.random(50, 40, density=0.1, format="csr")
        y = np.zeros(50)
        expected = x.data.nbytes + x.indices.nbytes + x.indptr.nbytes + y.nbytes
        assert data_bytes(x, y) == expected


class TestMemoryReport:
    def test_priu_exceeds_basel(self):
        data = make_regression(200, 6, seed=31)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 20, 50, seed=1)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        report = memory_report("test", data.features, data.labels, store)
        assert report.priu > report.basel
        assert report.priu_opt is None
        row = report.row()
        assert row["PrIU ratio"] > 1.0

    def test_opt_state_added(self):
        data = make_regression(100, 5, seed=32)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 20, 10, seed=2)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        report = memory_report(
            "t", data.features, data.labels, store, opt_state_bytes=1000
        )
        assert report.priu_opt == report.priu + 1000
