"""Unit tests for memory accounting (Table 3)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import train_with_capture
from repro.datasets import make_regression
from repro.eval import data_bytes, memory_report
from repro.eval.memory import pss_bytes, rss_bytes
from repro.models import make_schedule, objective_for


class TestDataBytes:
    def test_dense(self):
        x = np.zeros((10, 4))
        y = np.zeros(10)
        assert data_bytes(x, y) == x.nbytes + y.nbytes

    def test_sparse_counts_csr_arrays(self):
        x = sp.random(50, 40, density=0.1, format="csr")
        y = np.zeros(50)
        expected = x.data.nbytes + x.indices.nbytes + x.indptr.nbytes + y.nbytes
        assert data_bytes(x, y) == expected


class TestMemoryReport:
    def test_priu_exceeds_basel(self):
        data = make_regression(200, 6, seed=31)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 20, 50, seed=1)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        report = memory_report("test", data.features, data.labels, store)
        assert report.priu > report.basel
        assert report.priu_opt is None
        row = report.row()
        assert row["PrIU ratio"] > 1.0

    def test_opt_state_added(self):
        data = make_regression(100, 5, seed=32)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 20, 10, seed=2)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        report = memory_report(
            "t", data.features, data.labels, store, opt_state_bytes=1000
        )
        assert report.priu_opt == report.priu + 1000


class TestProcessProbes:
    """rss_bytes / pss_bytes — the probes behind bench_router's
    resident-bytes-per-extra-process assertion."""

    def test_rss_of_self_is_plausible(self):
        rss = rss_bytes()
        assert rss is not None
        assert 1 << 20 < rss < 1 << 40  # between 1 MiB and 1 TiB

    def test_rss_accepts_explicit_pid(self):
        import os

        assert rss_bytes(os.getpid()) == pytest.approx(rss_bytes(), rel=0.5)

    def test_rss_of_missing_pid_is_none(self):
        assert rss_bytes(2 ** 22 + 12345) is None

    def test_pss_is_linux_smaps_or_none(self):
        pss = pss_bytes()
        if pss is None:  # non-Linux or smaps_rollup unavailable
            return
        rss = rss_bytes()
        assert 0 < pss <= rss * 1.05  # PSS never exceeds RSS (tolerance
        # covers pages mapped between the two reads)

    def test_pss_of_missing_pid_is_none(self):
        assert pss_bytes(2 ** 22 + 12345) is None
