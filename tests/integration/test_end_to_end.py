"""End-to-end integration: the paper's two usage scenarios."""

import numpy as np
import pytest

from repro import IncrementalTrainer
from repro.datasets import (
    inject_dirty,
    make_binary_classification,
    make_regression,
    random_subsets,
)
from repro.eval import compare_updated_models, cosine_similarity


class TestCleaningScenario:
    """Scenario 1: train on dirty data, remove the dirty samples."""

    def test_cleaning_recovers_accuracy_linear(self):
        data = make_regression(1500, 10, noise=0.05, seed=201)
        dirty = inject_dirty(data.features, data.labels, 0.1, seed=1)
        trainer = IncrementalTrainer(
            "linear", learning_rate=0.005, regularization=0.01,
            batch_size=100, n_iterations=300, seed=2,
        )
        trainer.fit(dirty.features, dirty.labels)
        dirty_mse = trainer.evaluate(data.valid_features, data.valid_labels)
        cleaned = trainer.remove(dirty.dirty_indices)
        clean_mse = trainer.evaluate(
            data.valid_features, data.valid_labels, cleaned.weights
        )
        # Removing the corrupted samples must improve validation MSE.
        assert clean_mse < dirty_mse

    def test_cleaning_matches_retraining_quality_logistic(self):
        data = make_binary_classification(1200, 10, separation=1.5, seed=202)
        dirty = inject_dirty(data.features, data.labels, 0.2, seed=3)
        trainer = IncrementalTrainer(
            "binary_logistic", learning_rate=0.05, regularization=0.01,
            batch_size=100, n_iterations=250, seed=4,
        )
        trainer.fit(dirty.features, dirty.labels)
        removed = dirty.dirty_indices
        basel = trainer.retrain(removed)
        priu = trainer.remove(removed, method="priu")
        infl = trainer.influence(removed)
        comparison_priu = compare_updated_models(
            "priu", trainer.objective, basel.weights, priu.weights,
            data.valid_features, data.valid_labels,
        )
        comparison_infl = compare_updated_models(
            "infl", trainer.objective, basel.weights, infl.weights,
            data.valid_features, data.valid_labels,
        )
        # The paper's Table 4 shape: PrIU tracks BaseL much more closely
        # than the influence-function extension at 20% deletion.
        assert comparison_priu.similarity > comparison_infl.similarity
        assert comparison_priu.distance < comparison_infl.distance
        assert comparison_priu.candidate_metric == pytest.approx(
            comparison_priu.reference_metric, abs=0.06
        )


class TestInterpretabilityScenario:
    """Scenario 2: repeatedly remove different subsets from one capture."""

    def test_ten_subsets_all_track_basel(self):
        data = make_binary_classification(900, 8, seed=203)
        trainer = IncrementalTrainer(
            "binary_logistic", learning_rate=0.1, regularization=0.01,
            batch_size=90, n_iterations=150, seed=5,
        )
        trainer.fit(data.features, data.labels)
        subsets = random_subsets(data.n_samples, 10, 0.01, seed=6)
        for subset in subsets:
            updated = trainer.remove(subset, method="priu")
            reference = trainer.retrain(subset)
            assert cosine_similarity(updated.weights, reference.weights) > 0.999

    def test_subset_influence_ranking(self):
        """Removing a coherent group moves the model more than a random one."""
        rng = np.random.default_rng(7)
        data = make_binary_classification(800, 6, separation=1.0, seed=204)
        trainer = IncrementalTrainer(
            "binary_logistic", learning_rate=0.1, regularization=0.01,
            batch_size=80, n_iterations=150, seed=8,
        )
        trainer.fit(data.features, data.labels)
        # Group: the 40 positive samples with the largest margins.
        scores = data.features @ trainer.weights_
        positives = np.where(data.labels > 0)[0]
        coherent = positives[np.argsort(-scores[positives])][:40]
        random_group = rng.choice(data.n_samples, size=40, replace=False)
        move_coherent = np.linalg.norm(
            trainer.remove(coherent).weights - trainer.weights_
        )
        move_random = np.linalg.norm(
            trainer.remove(random_group).weights - trainer.weights_
        )
        assert move_coherent > move_random


class TestMethodConsistency:
    def test_all_methods_agree_at_tiny_deletions(self):
        data = make_regression(600, 8, seed=205)
        # Enough iterations that mb-SGD reaches the ridge optimum, so the
        # closed-form solution is comparable with the iterative methods.
        trainer = IncrementalTrainer(
            "linear", learning_rate=0.02, regularization=0.05,
            batch_size=60, n_iterations=2000, seed=9,
        )
        trainer.fit(data.features, data.labels)
        removed = [0]
        results = {
            "priu": trainer.remove(removed, method="priu").weights,
            "priu-opt": trainer.remove(removed, method="priu-opt").weights,
            "basel": trainer.retrain(removed).weights,
            "closed-form": trainer.closed_form(removed).weights,
            "infl": trainer.influence(removed).weights,
        }
        reference = results["basel"]
        for name, weights in results.items():
            assert cosine_similarity(weights, reference) > 0.99, name
