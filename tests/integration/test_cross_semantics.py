"""Three-way semantic agreement: symbolic algebra == compiled PrIU == BaseL.

The strongest guarantee in the repository: the compiled numeric fast path
(PrIU) computes exactly the deletion-propagation semantics defined by the
annotated-matrix algebra, which in turn agrees with literal retraining.
"""

import numpy as np
import pytest

from repro.core import PrIUUpdater, train_with_capture
from repro.datasets import make_binary_classification, make_regression
from repro.linalg import sigmoid_complement_interpolator
from repro.models import make_schedule, objective_for, train
from repro.provenance import ProvenanceTrackedRun


class TestThreeWayLinear:
    @pytest.fixture(scope="class")
    def setup(self):
        data = make_regression(120, 5, noise=0.05, seed=211)
        objective = objective_for("linear", 0.05)
        schedule = make_schedule(data.n_samples, 12, 50, seed=71)
        eta = 0.02
        result, store = train_with_capture(
            objective, data.features, data.labels, schedule, eta,
            compression="none",
        )
        symbolic = ProvenanceTrackedRun(
            data.features, data.labels, eta, objective.regularization
        )
        symbolic.record_linear(schedule.batches)
        return data, objective, schedule, eta, store, symbolic

    @pytest.mark.parametrize("removed", [[], [0], [1, 5, 9], list(range(20))])
    def test_agreement(self, setup, removed):
        data, objective, schedule, eta, store, symbolic = setup
        basel = train(
            objective, data.features, data.labels, schedule, eta,
            exclude=set(removed),
        ).weights
        compiled = PrIUUpdater(store, data.features, data.labels).update(removed)
        algebraic = symbolic.updated_parameters(removed, kind="linear")
        assert np.allclose(compiled, basel, atol=1e-10)
        assert np.allclose(algebraic, basel, atol=1e-10)
        assert np.allclose(compiled, algebraic, atol=1e-10)


class TestThreeWayLogistic:
    def test_compiled_equals_symbolic_exactly(self):
        """PrIU's compiled path == the annotated-algebra replay, bit-close.

        (Both share the linearization; only BaseL differs by the O(Δx²)
        linearization error.)
        """
        data = make_binary_classification(100, 4, seed=212)
        objective = objective_for("binary_logistic", 0.02)
        schedule = make_schedule(data.n_samples, 10, 40, seed=72)
        eta = 0.05
        interp = sigmoid_complement_interpolator(n_intervals=5000)
        result, store = train_with_capture(
            objective, data.features, data.labels, schedule, eta,
            compression="none", interpolator=interp,
        )
        symbolic = ProvenanceTrackedRun(
            data.features, data.labels, eta, objective.regularization
        )
        coefficients = [
            (record.slopes, record.intercepts) for record in store.records
        ]
        symbolic.record_logistic(schedule.batches, coefficients)
        removed = [2, 7, 30]
        compiled = PrIUUpdater(store, data.features, data.labels).update(removed)
        algebraic = symbolic.updated_parameters(removed, kind="logistic")
        assert np.allclose(compiled, algebraic, atol=1e-10)

    def test_all_three_close_for_logistic(self):
        data = make_binary_classification(150, 5, seed=213)
        objective = objective_for("binary_logistic", 0.05)
        schedule = make_schedule(data.n_samples, 15, 60, seed=73)
        eta = 0.1
        result, store = train_with_capture(
            objective, data.features, data.labels, schedule, eta,
            compression="none",
        )
        removed = [0, 10, 20]
        basel = train(
            objective, data.features, data.labels, schedule, eta,
            exclude=set(removed),
        ).weights
        compiled = PrIUUpdater(store, data.features, data.labels).update(removed)
        assert np.linalg.norm(compiled - basel) < 1e-3
