"""Unit tests for the theorem-bound diagnostics."""

import numpy as np
import pytest

from repro.core import (
    convergence_check,
    error_report,
    interpolation_delta,
    train_with_capture,
)
from repro.datasets import make_binary_classification, make_regression
from repro.models import make_schedule, objective_for


@pytest.fixture(scope="module")
def logistic_store():
    data = make_binary_classification(300, 8, seed=161)
    objective = objective_for("binary_logistic", 0.05)
    schedule = make_schedule(data.n_samples, 30, 60, seed=91)
    _, store = train_with_capture(
        objective, data.features, data.labels, schedule, 0.1, freeze_at=0.7,
    )
    return data, store


class TestErrorReport:
    def test_ingredients_present_for_logistic(self, logistic_store):
        data, store = logistic_store
        report = error_report(store, data.features, range(10))
        assert report.n_removed == 10
        assert report.deletion_fraction == pytest.approx(10 / store.n_samples)
        assert report.interpolation_delta is not None
        assert report.linearization_term is not None
        assert report.freeze_tail == store.schedule.n_iterations - store.frozen.t_s
        terms = report.dominant_terms()
        assert "thm4:linearization" in terms
        assert "thm9:freeze_tail_iterations" in terms

    def test_linear_has_no_linearization_term(self):
        data = make_regression(200, 6, seed=162)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 20, 30, seed=92)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        report = error_report(store, data.features, [0, 1])
        assert report.interpolation_delta is None
        assert report.linearization_term is None
        assert interpolation_delta(store) is None

    def test_fraction_term_grows(self, logistic_store):
        data, store = logistic_store
        small = error_report(store, data.features, range(2)).fraction_term
        large = error_report(store, data.features, range(50)).fraction_term
        assert large > small

    def test_removed_gram_norm_monotone(self, logistic_store):
        data, store = logistic_store
        small = error_report(store, data.features, range(2)).removed_gram_norm
        large = error_report(store, data.features, range(40)).removed_gram_norm
        assert large >= small

    def test_custom_delta_overrides(self, logistic_store):
        data, store = logistic_store
        report = error_report(store, data.features, [0], delta=0.5)
        assert report.interpolation_delta == 0.5

    def test_svd_epsilon_exposed(self):
        data = make_regression(150, 40, seed=163)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 15, 20, seed=93)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
            compression="svd", epsilon=0.07,
        )
        report = error_report(store, data.features, [0])
        assert report.svd_epsilon == 0.07
        assert "thm6/8:svd_epsilon" in report.dominant_terms()


class TestConvergenceCheck:
    def test_safe_rate_detected(self):
        data = make_regression(200, 5, seed=164)
        check = convergence_check(data.features, 0.1, 1e-4)
        assert check["satisfies_lemma1"] == 1.0
        assert check["learning_rate"] < check["safe_learning_rate"]

    def test_unsafe_rate_detected(self):
        data = make_regression(200, 5, seed=165)
        check = convergence_check(data.features, 0.1, 100.0)
        assert check["satisfies_lemma1"] == 0.0

    def test_lipschitz_matches_direct_computation(self):
        data = make_regression(150, 4, seed=166)
        check = convergence_check(data.features, 0.2, 0.01)
        direct = (
            2.0 * np.linalg.norm(data.features.T @ data.features, 2)
            / data.n_samples
            + 0.2
        )
        assert check["lipschitz"] == pytest.approx(direct, rel=1e-3)

    def test_sparse_features(self):
        import scipy.sparse as sp

        rng = np.random.default_rng(1)
        dense = rng.standard_normal((100, 20))
        dense[np.abs(dense) < 1.0] = 0.0
        check = convergence_check(sp.csr_matrix(dense), 0.1, 0.001)
        assert check["lipschitz"] > 0
