"""Failure injection: degenerate inputs and edge regimes."""

import numpy as np
import pytest

from repro.core import PrIUUpdater, train_with_capture
from repro.datasets import make_regression
from repro.models import make_schedule, objective_for, train


class TestDegenerateDeletions:
    @pytest.fixture(scope="class")
    def setup(self):
        data = make_regression(100, 5, seed=141)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 60, seed=51)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        return data, objective, schedule, store

    def test_delete_everything_rejected(self, setup):
        data, _, _, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        with pytest.raises(ValueError):
            updater.update(range(data.n_samples))

    def test_delete_all_but_one(self, setup):
        data, objective, schedule, store = setup
        removed = list(range(1, data.n_samples))
        updater = PrIUUpdater(store, data.features, data.labels)
        retrained = train(
            objective, data.features, data.labels, schedule, 0.01,
            exclude=set(removed),
        )
        assert np.allclose(updater.update(removed), retrained.weights, atol=1e-9)

    def test_whole_batches_vanish(self, setup):
        """Batches that lose all members degenerate to shrinkage steps."""
        data, objective, schedule, store = setup
        removed = set(schedule.batches[0]) | set(schedule.batches[5])
        updater = PrIUUpdater(store, data.features, data.labels)
        retrained = train(
            objective, data.features, data.labels, schedule, 0.01,
            exclude=removed,
        )
        assert np.allclose(
            updater.update(removed), retrained.weights, atol=1e-9
        )

    def test_negative_like_huge_index_is_noop(self, setup):
        data, *_ , store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        # ids that never occur in any batch: same as no deletion.
        assert np.allclose(
            updater.update([10_000, 20_000]), updater.update([]), atol=1e-12
        )


class TestDegenerateData:
    def test_rank_deficient_features(self):
        rng = np.random.default_rng(6)
        base = rng.standard_normal((80, 3))
        features = np.hstack([base, base[:, :2]])  # duplicated columns
        labels = rng.standard_normal(80)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(80, 16, 40, seed=52)
        _, store = train_with_capture(objective, features, labels, schedule, 0.01)
        updater = PrIUUpdater(store, features, labels)
        retrained = train(
            objective, features, labels, schedule, 0.01, exclude={0, 1, 2}
        )
        assert np.allclose(updater.update([0, 1, 2]), retrained.weights, atol=1e-9)

    def test_single_feature(self):
        rng = np.random.default_rng(7)
        features = rng.standard_normal((50, 1))
        labels = 2.0 * features.ravel()
        objective = objective_for("linear", 0.01)
        schedule = make_schedule(50, 10, 100, seed=53)
        _, store = train_with_capture(objective, features, labels, schedule, 0.05)
        updater = PrIUUpdater(store, features, labels)
        updated = updater.update([0])
        assert np.isfinite(updated).all()

    def test_constant_labels_binary(self):
        """All-positive labels: gradient still well defined."""
        rng = np.random.default_rng(8)
        features = rng.standard_normal((60, 4))
        labels = np.ones(60)
        objective = objective_for("binary_logistic", 0.1)
        schedule = make_schedule(60, 12, 30, seed=54)
        _, store = train_with_capture(objective, features, labels, schedule, 0.1)
        updater = PrIUUpdater(store, features, labels)
        retrained = train(
            objective, features, labels, schedule, 0.1, exclude={3, 4}
        )
        updated = updater.update([3, 4])
        assert np.linalg.norm(updated - retrained.weights) < 1e-3


class TestDivergenceRegime:
    def test_theorem2_style_divergence_detectable(self):
        """With an over-large learning rate the iteration blows up.

        Theorem 2's point is that provenance-annotated iterations have no
        convergence guarantee under the plain conditions; numerically this
        shows up as divergence when η violates the η < 1/L requirement.
        """
        rng = np.random.default_rng(9)
        features = 10.0 * rng.standard_normal((40, 3))
        labels = rng.standard_normal(40)
        objective = objective_for("linear", 0.0)
        schedule = make_schedule(40, 40, 200, kind="gd")
        with np.errstate(over="ignore", invalid="ignore"):
            result = train(objective, features, labels, schedule, 1.0)  # η ≫ 1/L
        assert not np.all(np.abs(result.weights) < 1e6)

    def test_safe_learning_rate_converges(self):
        rng = np.random.default_rng(10)
        features = rng.standard_normal((40, 3))
        labels = rng.standard_normal(40)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(40, 40, 500, kind="gd")
        lipschitz = 2.0 * np.linalg.norm(features.T @ features, 2) / 40 + 0.1
        result = train(objective, features, labels, schedule, 0.9 / lipschitz)
        grad = objective.gradient(result.weights, features, labels)
        assert np.linalg.norm(grad) < 1e-3
