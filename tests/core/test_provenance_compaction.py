"""Unit tests for removal-set normalization and store compaction internals.

The end-to-end commit contracts live in ``test_commit.py``; this file pins
the store-level pieces: input validation of
:func:`normalize_removed_indices` (dtype rejection, no aliasing), the
survivor remap, and the vectorized drop-and-shift rebuild of the packed
occurrence index.
"""

import numpy as np
import pytest

from repro.core import train_with_capture
from repro.core.provenance_store import (
    normalize_removed_indices,
    remap_surviving_ids,
)
from repro.datasets import make_regression
from repro.models import make_schedule, objective_for


class TestNormalizeRemovedIndices:
    def test_float_ndarray_rejected(self):
        # astype(int64) would silently truncate 3.7 -> 3 and delete the
        # wrong sample.
        with pytest.raises(TypeError, match="integer dtype"):
            normalize_removed_indices(np.array([1.0, 3.7]))

    def test_float_sequence_rejected(self):
        with pytest.raises(TypeError, match="integers"):
            normalize_removed_indices([1.5, 2.5])

    def test_float_set_rejected(self):
        # The set fast path used np.fromiter(..., dtype=int64), which
        # truncated floats the other branches already rejected.
        with pytest.raises(TypeError, match="integers"):
            normalize_removed_indices({3.7, 1.2})

    def test_bool_ndarray_rejected(self):
        # A boolean mask is a different encoding of a removal set; casting
        # it to ids {0, 1} would be wrong in a particularly quiet way.
        with pytest.raises(TypeError, match="integer dtype"):
            normalize_removed_indices(np.array([True, False, True]))

    def test_empty_inputs_allowed_regardless_of_dtype(self):
        for empty in (np.empty(0), np.empty(0, dtype=np.int64), (), set()):
            out = normalize_removed_indices(empty)
            assert out.size == 0 and out.dtype == np.int64

    def test_sorted_fast_path_never_aliases_the_caller(self):
        owned = np.array([1, 5, 9], dtype=np.int64)
        out = normalize_removed_indices(owned, assume_unique=True)
        assert not np.shares_memory(out, owned)
        owned[0] = 77  # caller mutates their array afterwards
        assert out[0] == 1

    def test_unsorted_assume_unique_still_sorts_without_aliasing(self):
        owned = np.array([9, 1, 5], dtype=np.int64)
        out = normalize_removed_indices(owned, assume_unique=True)
        assert np.array_equal(out, [1, 5, 9])
        assert not np.shares_memory(out, owned)

    def test_int32_accepted_and_widened(self):
        out = normalize_removed_indices(np.array([4, 2, 2], dtype=np.int32))
        assert np.array_equal(out, [2, 4])
        assert out.dtype == np.int64

    def test_generators_sets_ranges(self):
        assert np.array_equal(
            normalize_removed_indices(i for i in (3, 1, 3)), [1, 3]
        )
        assert np.array_equal(normalize_removed_indices({2, 0}), [0, 2])
        assert np.array_equal(normalize_removed_indices(range(3)), [0, 1, 2])


class TestRemapSurvivingIds:
    def test_ids_shift_down_past_removals(self):
        removed = np.array([2, 5], dtype=np.int64)
        assert np.array_equal(
            remap_surviving_ids(np.array([0, 3, 6]), removed), [0, 2, 4]
        )

    def test_empty_removed_is_identity_copy(self):
        ids = np.array([1, 2, 3], dtype=np.int64)
        out = remap_surviving_ids(ids, np.empty(0, dtype=np.int64))
        assert np.array_equal(out, ids)
        assert not np.shares_memory(out, ids)


@pytest.fixture(scope="module")
def captured():
    data = make_regression(120, 6, noise=0.05, seed=71)
    n = data.features.shape[0]  # train split of the 120 generated rows
    objective = objective_for("linear", 0.1)
    schedule = make_schedule(n, 15, 40, seed=3)
    _, store = train_with_capture(
        objective, data.features, data.labels, schedule, 0.02,
        compression="none",
    )
    return data, store


class TestCompactIndexRebuild:
    def test_packed_index_matches_from_scratch_rebuild(self, captured):
        data, store = captured
        removed = np.array([3, 40, 41, 90], dtype=np.int64)
        stats = store.compact(removed, data.features, data.labels)
        patched = store.packed_index()
        # Rebuild from the compacted records and compare row for row.
        store._packed = None
        rebuilt = store.packed_index()
        assert np.array_equal(patched.samples, rebuilt.samples)
        assert np.array_equal(patched.iterations, rebuilt.iterations)
        assert np.array_equal(patched.positions, rebuilt.positions)
        # Stats describe the drop in the old layout.
        assert stats.n_samples_after == stats.n_samples_before - removed.size
        assert stats.dropped_occurrences == stats.dropped_slots.size
        assert stats.dropped_per_iteration.sum() == stats.dropped_occurrences
        assert store.n_samples == stats.n_samples_after
        assert np.array_equal(store.deletion_log, removed)

    def test_schedule_is_materialized_and_consistent(self, captured):
        data, store = captured
        assert store.schedule.kind == "materialized"
        for t, record in enumerate(store.records):
            assert np.array_equal(store.schedule[t], record.batch)
            assert record.batch.size == 0 or record.batch.max() < store.n_samples

    def test_compact_rejects_out_of_range(self, captured):
        data, store = captured
        survivors = store.survivor_original_ids()
        features, labels = data.features[survivors], data.labels[survivors]
        with pytest.raises(ValueError, match="removal ids"):
            store.compact([store.n_samples + 2], features, labels)

    def test_compact_rejects_everything(self, captured):
        data, store = captured
        survivors = store.survivor_original_ids()
        features, labels = data.features[survivors], data.labels[survivors]
        with pytest.raises(ValueError, match="every training sample"):
            store.compact(np.arange(store.n_samples), features, labels)

    def test_compact_rejects_mismatched_data(self, captured):
        data, store = captured
        # Slicing to the survivors *before* compacting is the natural
        # mistake — the subtracted contributions would come from the wrong
        # rows, silently.  It must fail loudly instead.
        with pytest.raises(ValueError, match="pre-compaction"):
            store.compact([1], data.features[:-1], data.labels[:-1])
