"""PrIU for binary logistic regression (Eq. 19/20) — Theorem 5/8 accuracy."""

import numpy as np
import pytest

from repro.core import PrIUUpdater, train_with_capture
from repro.datasets import make_binary_classification
from repro.eval import cosine_similarity
from repro.models import make_schedule, objective_for, train

ETA = 0.1


@pytest.fixture(scope="module")
def setup():
    data = make_binary_classification(600, 12, separation=1.0, seed=91)
    objective = objective_for("binary_logistic", 0.01)
    schedule = make_schedule(data.n_samples, 60, 250, seed=11)
    result, store = train_with_capture(
        objective, data.features, data.labels, schedule, ETA,
        compression="none",
    )
    return data, objective, schedule, result, store


def basel(setup, removed):
    data, objective, schedule, *_ = setup
    return train(
        objective, data.features, data.labels, schedule, ETA,
        exclude=set(removed),
    ).weights


class TestAccuracy:
    def test_no_deletion_matches_original_to_linearization_error(self, setup):
        data, objective, schedule, result, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        replayed = updater.update([])
        # Theorem 4: O(Δx²) with the default fine grid -> tiny.
        assert np.linalg.norm(replayed - result.weights) < 1e-6

    @pytest.mark.parametrize("n_removed", [1, 10, 60])
    def test_deletion_close_to_basel(self, setup, n_removed):
        data, *_ , store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        removed = list(range(n_removed))
        reference = basel(setup, removed)
        updated = updater.update(removed)
        assert cosine_similarity(updated, reference) > 0.999
        assert np.linalg.norm(updated - reference) < 0.05 * np.linalg.norm(
            reference
        ) + 1e-3

    def test_error_grows_with_removal_fraction(self, setup):
        """Theorem 5: deviation O(Δn/n · Δx) + O((Δn/n)²)."""
        data, *_ , store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        errors = []
        for n_removed in (5, 120):
            removed = list(range(n_removed))
            errors.append(
                np.linalg.norm(updater.update(removed) - basel(setup, removed))
            )
        assert errors[0] < errors[1] + 1e-9

    def test_validation_accuracy_preserved(self, setup):
        """The paper's headline: same validation accuracy as BaseL."""
        data, objective, schedule, result, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        removed = list(range(60))
        reference = basel(setup, removed)
        updated = updater.update(removed)
        acc_ref = objective.metric(
            reference, data.valid_features, data.valid_labels
        )
        acc_upd = objective.metric(updated, data.valid_features, data.valid_labels)
        assert acc_upd == pytest.approx(acc_ref, abs=0.02)


class TestCoarseGrids:
    def test_coarse_interpolation_still_reasonable(self):
        from repro.linalg import sigmoid_complement_interpolator

        data = make_binary_classification(300, 8, seed=92)
        objective = objective_for("binary_logistic", 0.05)
        schedule = make_schedule(data.n_samples, 30, 150, seed=12)
        result, store = train_with_capture(
            objective, data.features, data.labels, schedule, ETA,
            interpolator=sigmoid_complement_interpolator(n_intervals=500),
        )
        updater = PrIUUpdater(store, data.features, data.labels)
        reference = train(
            objective, data.features, data.labels, schedule, ETA,
            exclude=set(range(10)),
        ).weights
        updated = updater.update(range(10))
        assert cosine_similarity(updated, reference) > 0.99

    def test_finer_grid_reduces_error(self):
        from repro.linalg import sigmoid_complement_interpolator

        data = make_binary_classification(300, 8, seed=93)
        objective = objective_for("binary_logistic", 0.05)
        schedule = make_schedule(data.n_samples, 30, 150, seed=13)
        removed = list(range(8))
        reference = train(
            objective, data.features, data.labels, schedule, ETA,
            exclude=set(removed),
        ).weights
        errors = []
        for n_intervals in (16, 4096):
            _, store = train_with_capture(
                objective, data.features, data.labels, schedule, ETA,
                interpolator=sigmoid_complement_interpolator(
                    n_intervals=n_intervals
                ),
            )
            updater = PrIUUpdater(store, data.features, data.labels)
            errors.append(np.linalg.norm(updater.update(removed) - reference))
        assert errors[1] < errors[0]


class TestRecordsContent:
    def test_slopes_negative_and_aligned(self, setup):
        data, *_ , store = setup
        for record in store.records[:10]:
            assert record.slopes.shape == record.batch.shape
            assert record.intercepts.shape == record.batch.shape
            assert np.all(record.slopes <= 0)

    def test_moment_matches_definition(self, setup):
        data, *_ , store = setup
        record = store.records[0]
        block = data.features[record.batch]
        y = data.labels[record.batch]
        expected = block.T @ (record.intercepts * y)
        assert np.allclose(record.moment, expected)

    def test_dense_summary_matches_definition(self, setup):
        data, *_ , store = setup
        record = store.records[0]
        block = data.features[record.batch]
        expected = block.T @ (block * record.slopes[:, None])
        assert np.allclose(record.summary, expected)
