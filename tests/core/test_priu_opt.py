"""PrIU-opt: the eigen-based optimizations (Sec. 5.2/5.4, Theorems 7/9)."""

import numpy as np
import pytest

from repro.core import (
    PrIUOptLinearUpdater,
    PrIUOptLogisticUpdater,
    PrIUUpdater,
    train_with_capture,
)
from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
)
from repro.eval import cosine_similarity
from repro.models import make_schedule, objective_for, train


class TestLinearOpt:
    ETA = 0.005
    LAM = 0.1
    TAU = 400

    @pytest.fixture(scope="class")
    def setup(self):
        data = make_regression(400, 12, noise=0.05, seed=111)
        objective = objective_for("linear", self.LAM)
        updater = PrIUOptLinearUpdater(
            data.features, data.labels, self.TAU, self.ETA, self.LAM
        )
        return data, objective, updater

    def _gd_basel(self, data, objective, removed):
        schedule = make_schedule(
            data.n_samples, data.n_samples, self.TAU, kind="gd"
        )
        return train(
            objective, data.features, data.labels, schedule, self.ETA,
            exclude=set(removed),
        ).weights

    def test_original_matches_gd(self, setup):
        data, objective, updater = setup
        gd = self._gd_basel(data, objective, [])
        assert np.allclose(updater.original(), gd, atol=1e-8)

    def test_small_deletion_close_to_gd_retraining(self, setup):
        data, objective, updater = setup
        removed = list(range(4))
        gd = self._gd_basel(data, objective, removed)
        # Theorem 7: deviation bounded by O(||ΔXᵀΔX||) — small for 4 rows.
        assert np.linalg.norm(updater.update(removed) - gd) < 0.05

    def test_deviation_grows_with_removed_mass(self, setup):
        data, objective, updater = setup
        small = np.linalg.norm(
            updater.update(range(2)) - self._gd_basel(data, objective, range(2))
        )
        large = np.linalg.norm(
            updater.update(range(80))
            - self._gd_basel(data, objective, range(80))
        )
        assert small <= large + 1e-12

    def test_empty_removal_equals_original(self, setup):
        _, _, updater = setup
        assert np.allclose(updater.update([]), updater.original())

    def test_cannot_delete_everything(self, setup):
        data, _, updater = setup
        with pytest.raises(ValueError):
            updater.update(range(data.n_samples))

    def test_sparse_features_rejected(self):
        import scipy.sparse as sp

        features = sp.eye(10, format="csr")
        with pytest.raises(ValueError):
            PrIUOptLinearUpdater(features, np.ones(10), 10, 0.01, 0.1)

    def test_nbytes_reports_eigen_state(self, setup):
        _, _, updater = setup
        assert updater.nbytes() > 0


class TestLogisticOpt:
    ETA = 0.1

    @pytest.fixture(scope="class")
    def binary_setup(self):
        data = make_binary_classification(500, 10, seed=112)
        objective = objective_for("binary_logistic", 0.01)
        schedule = make_schedule(data.n_samples, 50, 200, seed=21)
        result, store = train_with_capture(
            objective, data.features, data.labels, schedule, self.ETA,
            compression="none", freeze_at=0.7,
        )
        return data, objective, schedule, result, store

    def test_frozen_state_exists(self, binary_setup):
        *_, store = binary_setup
        assert store.frozen is not None
        assert store.frozen.t_s == 140
        assert store.frozen.eigenvectors is not None
        assert store.frozen.slopes.shape == (store.n_samples,)

    def test_close_to_basel(self, binary_setup):
        data, objective, schedule, result, store = binary_setup
        removed = list(range(10))
        reference = train(
            objective, data.features, data.labels, schedule, self.ETA,
            exclude=set(removed),
        ).weights
        opt = PrIUOptLogisticUpdater(store, data.features, data.labels)
        updated = opt.update(removed)
        assert cosine_similarity(updated, reference) > 0.99

    def test_opt_validation_accuracy_matches_basel(self, binary_setup):
        data, objective, schedule, result, store = binary_setup
        removed = list(range(25))
        reference = train(
            objective, data.features, data.labels, schedule, self.ETA,
            exclude=set(removed),
        ).weights
        opt = PrIUOptLogisticUpdater(store, data.features, data.labels)
        acc_ref = objective.metric(
            reference, data.valid_features, data.valid_labels
        )
        acc_opt = objective.metric(
            opt.update(removed), data.valid_features, data.valid_labels
        )
        assert acc_opt == pytest.approx(acc_ref, abs=0.03)

    def test_opt_less_accurate_than_plain_priu(self, binary_setup):
        """PrIU-opt trades accuracy for speed (Theorem 9 extra terms)."""
        data, objective, schedule, result, store = binary_setup
        removed = list(range(10))
        reference = train(
            objective, data.features, data.labels, schedule, self.ETA,
            exclude=set(removed),
        ).weights
        plain = PrIUUpdater(store, data.features, data.labels).update(removed)
        opt = PrIUOptLogisticUpdater(store, data.features, data.labels).update(
            removed
        )
        plain_err = np.linalg.norm(plain - reference)
        opt_err = np.linalg.norm(opt - reference)
        assert plain_err <= opt_err + 1e-6

    def test_requires_frozen_provenance(self):
        data = make_binary_classification(100, 5, seed=113)
        objective = objective_for("binary_logistic", 0.01)
        schedule = make_schedule(data.n_samples, 20, 30, seed=22)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, self.ETA,
        )
        with pytest.raises(ValueError):
            PrIUOptLogisticUpdater(store, data.features, data.labels)

    def test_requires_logistic_store(self):
        data = make_regression(100, 5, seed=114)
        objective = objective_for("linear", 0.01)
        schedule = make_schedule(data.n_samples, 20, 30, seed=23)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        with pytest.raises(ValueError):
            PrIUOptLogisticUpdater(store, data.features, data.labels)


class TestMultinomialOpt:
    def test_multinomial_two_phase_close_to_basel(self):
        data = make_multiclass_classification(500, 10, n_classes=3, seed=115)
        objective = objective_for("multinomial_logistic", 0.01, n_classes=3)
        schedule = make_schedule(data.n_samples, 50, 150, seed=24)
        eta = 0.05
        result, store = train_with_capture(
            objective, data.features, data.labels, schedule, eta,
            compression="none", freeze_at=0.7,
        )
        assert store.frozen is not None
        removed = list(range(8))
        reference = train(
            objective, data.features, data.labels, schedule, eta,
            exclude=set(removed),
        ).weights
        opt = PrIUOptLogisticUpdater(store, data.features, data.labels)
        updated = opt.update(removed)
        assert cosine_similarity(updated, reference) > 0.98

    def test_large_parameter_space_skips_freeze(self):
        data = make_multiclass_classification(200, 40, n_classes=5, seed=116)
        objective = objective_for("multinomial_logistic", 0.01, n_classes=5)
        schedule = make_schedule(data.n_samples, 40, 30, seed=25)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.05,
            freeze_at=0.7, max_dense_params=100,
        )
        assert store.frozen is None
