"""Committed deletions: compaction, plan refresh, and checkpoint round-trips.

The correctness contract of the commit path is *compositionality*: replaying
the committed (compacted) trainer with a fresh removal set ``T`` must match
replaying the original trainer with ``S ∪ T`` to reduction-order noise
(atol 1e-10), for every task × summary representation.  For the linear task
— whose capture is trajectory-independent — the committed store is
additionally checked against a genuine from-scratch re-capture on the
reduced dataset.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IncrementalTrainer
from repro.core import train_with_capture
from repro.core.provenance_store import remap_surviving_ids
from repro.core.replay_plan import ReplayPlan
from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)
from repro.models import objective_for

ATOL = 1e-10

# task → (constructor kwargs, dataset); batch sizes below the feature count
# flip auto-compression to SVD factors.
_DATASETS = {
    "linear": make_regression(300, 8, noise=0.05, seed=181),
    "binary_logistic": make_binary_classification(300, 10, separation=1.0, seed=182),
    "multinomial_logistic": make_multiclass_classification(
        330, 12, n_classes=3, seed=183
    ),
}
_SPARSE = make_sparse_binary_classification(400, 120, density=0.05, seed=184)

CONFIGS = [
    ("linear", "dense", dict(batch_size=40)),
    ("linear", "svd", dict(batch_size=6)),
    ("binary_logistic", "dense", dict(batch_size=40)),
    ("binary_logistic", "svd", dict(batch_size=8)),
    ("multinomial_logistic", "dense", dict(batch_size=40)),
    ("multinomial_logistic", "svd", dict(batch_size=8)),
    ("linear", "sparse", dict(batch_size=40)),
    ("binary_logistic", "sparse", dict(batch_size=40)),
]


def _fit(task: str, rep: str, overrides: dict, **extra) -> IncrementalTrainer:
    data = _SPARSE if rep == "sparse" else _DATASETS[task]
    kwargs = dict(
        learning_rate=0.05,
        regularization=0.01,
        batch_size=40,
        n_iterations=80,
        seed=0,
        method="priu",
        n_classes=3 if task == "multinomial_logistic" else None,
    )
    kwargs.update(overrides)
    kwargs.update(extra)
    trainer = IncrementalTrainer(task, **kwargs)
    trainer.fit(data.features, data.labels)
    return trainer


def _removal_sets(trainer, seed=0, first=4, second=5):
    rng = np.random.default_rng(seed)
    n = trainer.n_samples
    committed = np.sort(rng.choice(n, size=first, replace=False))
    rest = np.setdiff1d(np.arange(n), committed)
    query_old = np.sort(rng.choice(rest, size=second, replace=False))
    return committed, query_old


@pytest.mark.parametrize("task,rep,overrides", CONFIGS)
class TestCommitCompositionality:
    def test_commit_then_query_matches_union_on_original(
        self, task, rep, overrides
    ):
        reference = _fit(task, rep, overrides)
        trainer = _fit(task, rep, overrides)
        committed, query_old = _removal_sets(trainer, seed=1)
        outcome = trainer.remove(committed, method="priu", commit=True)
        # The committed baseline is the served counterfactual…
        assert np.array_equal(trainer.weights_, outcome.weights)
        # …and a fresh query against the compacted state answers exactly
        # what the original trainer answers for the union.
        query_new = remap_surviving_ids(query_old, committed)
        got = trainer.remove(query_new, method="priu").weights
        want = reference.remove(
            np.union1d(committed, query_old), method="priu"
        ).weights
        np.testing.assert_allclose(got, want, atol=ATOL, rtol=0.0)

    def test_incremental_refresh_matches_recompile(self, task, rep, overrides):
        """threshold=1.0 (always patch) and 0.0 (always recompile) agree."""
        patched = _fit(task, rep, overrides, plan_refresh_threshold=1.0)
        recompiled = _fit(task, rep, overrides, plan_refresh_threshold=0.0)
        committed, query_old = _removal_sets(patched, seed=2)
        r1 = patched.commit(patched.remove(committed, method="priu"))
        r2 = recompiled.commit(recompiled.remove(committed, method="priu"))
        if patched._plan.supported:
            assert r1["mode"] == "refresh"
            assert r2["mode"] == "recompile"
        query_new = remap_surviving_ids(query_old, committed)
        np.testing.assert_allclose(
            patched.remove(query_new, method="priu").weights,
            recompiled.remove(query_new, method="priu").weights,
            atol=ATOL,
            rtol=0.0,
        )

    def test_sequential_commits_compose(self, task, rep, overrides):
        reference = _fit(task, rep, overrides)
        trainer = _fit(task, rep, overrides, plan_refresh_threshold=1.0)
        first, second_old = _removal_sets(trainer, seed=3)
        trainer.remove(first, method="priu", commit=True)
        second_new = remap_surviving_ids(second_old, first)
        trainer.remove(second_new, method="priu", commit=True)
        # The empty replay of the twice-compacted store reproduces the
        # union counterfactual of the untouched trainer.
        got = trainer.remove([], method="priu").weights
        want = reference.remove(
            np.union1d(first, second_old), method="priu"
        ).weights
        np.testing.assert_allclose(got, want, atol=ATOL, rtol=0.0)
        assert trainer.n_samples == reference.n_samples - first.size - second_old.size
        # The log accumulates original-space ids in commit order.
        assert np.array_equal(
            np.sort(trainer.deletion_log), np.union1d(first, second_old)
        )

    def test_reference_paths_agree_after_commit(self, task, rep, overrides):
        """Plan, uncompiled updater and remove_many all serve the same
        compacted state."""
        trainer = _fit(task, rep, overrides, plan_refresh_threshold=1.0)
        committed, query_old = _removal_sets(trainer, seed=4)
        trainer.remove(committed, method="priu", commit=True)
        query_new = remap_surviving_ids(query_old, committed)
        via_plan = trainer.remove(query_new, method="priu").weights
        via_seq = trainer.remove(query_new, method="priu-seq").weights
        np.testing.assert_allclose(via_plan, via_seq, atol=ATOL, rtol=0.0)
        [batched] = trainer.remove_many([query_new], method="priu")
        np.testing.assert_allclose(batched.weights, via_plan, atol=ATOL, rtol=0.0)


class TestCommitAgainstRecapture:
    """Linear capture is trajectory-independent, so the compacted store can
    be checked against a genuine re-capture on the reduced dataset (same
    batches minus the committed samples, ids remapped)."""

    def test_dense_linear_commit_equals_recapture(self):
        data = _DATASETS["linear"]
        trainer = _fit("linear", "dense", dict(batch_size=40))
        committed, query_old = _removal_sets(trainer, seed=5)
        trainer.remove(committed, method="priu", commit=True)

        survivors = np.setdiff1d(np.arange(data.features.shape[0]), committed)
        features = data.features[survivors]
        labels = data.labels[survivors]
        objective = objective_for("linear", trainer.regularization)
        result, store = train_with_capture(
            objective,
            features,
            labels,
            trainer.schedule,  # the compacted (materialized) schedule
            trainer.learning_rate,
            compression="none",
        )
        # Committed baseline == re-captured model.
        np.testing.assert_allclose(
            trainer.weights_, result.weights, atol=ATOL, rtol=0.0
        )
        # Fresh queries agree between compacted and re-captured provenance.
        plan = ReplayPlan(store, features, labels)
        query_new = remap_surviving_ids(query_old, committed)
        np.testing.assert_allclose(
            trainer.remove(query_new, method="priu").weights,
            plan.run_single(query_new),
            atol=ATOL,
            rtol=0.0,
        )


class TestRemoveManyCommit:
    def test_prefix_union_semantics(self):
        reference = _fit("binary_logistic", "dense", dict(batch_size=40))
        trainer = _fit("binary_logistic", "dense", dict(batch_size=40))
        sets = [np.array([1, 2]), np.array([10, 11]), np.array([2, 30])]
        outcomes = trainer.remove_many(sets, method="priu", commit=True)
        acc = np.empty(0, dtype=np.int64)
        for removed, outcome in zip(sets, outcomes):
            acc = np.union1d(acc, removed)
            want = reference.remove(acc, method="priu").weights
            np.testing.assert_allclose(outcome.weights, want, atol=ATOL, rtol=0.0)
            assert np.array_equal(outcome.removed, np.unique(removed))
        assert np.array_equal(trainer.weights_, outcomes[-1].weights)
        assert trainer.n_samples == reference.n_samples - acc.size

    def test_priu_opt_still_serves_after_commit(self):
        trainer = _fit("binary_logistic", "dense", dict(batch_size=40), method="auto")
        assert trainer._opt is not None
        trainer.remove([3, 40, 90], method="priu", commit=True)
        assert trainer._opt is not None
        exact = trainer.remove([5, 6], method="priu").weights
        approx = trainer.remove([5, 6], method="priu-opt").weights
        # PrIU-opt keeps its usual approximation envelope post-commit.
        assert float(np.max(np.abs(exact - approx))) < 0.05

    def test_stale_outcome_is_rejected(self):
        trainer = _fit("linear", "dense", dict(batch_size=40))
        stale = trainer.remove([1, 2], method="priu")
        trainer.remove([7, 8], method="priu", commit=True)
        with pytest.raises(ValueError, match="stale outcome"):
            trainer.commit(stale)

    def test_commit_rejects_out_of_range_ids(self):
        trainer = _fit("linear", "dense", dict(batch_size=40))
        n = trainer.n_samples
        # remove() tolerates never-sampled ids, but committing them would
        # corrupt the id remap.
        outcome = trainer.remove([n + 5], method="priu")
        with pytest.raises(ValueError, match="removal ids"):
            trainer.commit(outcome)

    def test_empty_commit_is_a_noop(self):
        trainer = _fit("linear", "dense", dict(batch_size=40))
        before = trainer.n_samples
        receipt = trainer.commit(trainer.remove([], method="priu"))
        assert receipt["mode"] == "noop"
        assert trainer.n_samples == before

    def test_baselines_rebuild_against_reduced_data(self):
        trainer = _fit("linear", "dense", dict(batch_size=40))
        committed, query_old = _removal_sets(trainer, seed=6)
        trainer.remove(committed, method="priu", commit=True)
        query_new = remap_surviving_ids(query_old, committed)
        # BaseL retrains on the compacted (materialized) schedule: it must
        # match the plan's answer exactly for linear regression.
        basel = trainer.retrain(query_new).weights
        plan = trainer.remove(query_new, method="priu").weights
        np.testing.assert_allclose(basel, plan, atol=1e-8, rtol=0.0)
        # Closed-form rebuilds lazily over the reduced dataset.
        closed = trainer.closed_form(query_new)
        assert closed.weights.shape == plan.shape


@pytest.mark.parametrize("task,rep,overrides", CONFIGS)
class TestCommitCheckpoint:
    def test_checkpoint_round_trip_after_commit(
        self, task, rep, overrides, tmp_path
    ):
        """Save after commits, reload from the *original* data, same model."""
        data = _SPARSE if rep == "sparse" else _DATASETS[task]
        trainer = _fit(task, rep, overrides, plan_refresh_threshold=1.0)
        committed, query_old = _removal_sets(trainer, seed=7)
        trainer.remove(committed, method="priu", commit=True)
        trainer.save_checkpoint(tmp_path)

        reloaded = IncrementalTrainer.from_checkpoint(
            tmp_path, data.features, data.labels
        )
        # Restored trainer sees the reduced dataset and the deletion log.
        assert reloaded.n_samples == trainer.n_samples
        assert np.array_equal(reloaded.deletion_log, trainer.deletion_log)
        np.testing.assert_allclose(
            reloaded.weights_, trainer.weights_, atol=ATOL, rtol=0.0
        )
        # Fresh queries answer identically to the in-process trainer.
        query_new = remap_surviving_ids(query_old, committed)
        np.testing.assert_allclose(
            reloaded.remove(query_new, method="priu").weights,
            trainer.remove(query_new, method="priu").weights,
            atol=ATOL,
            rtol=0.0,
        )
        # …and the reloaded trainer can itself keep committing.
        reloaded.remove(query_new, method="priu", commit=True)
        assert reloaded.n_samples == trainer.n_samples - query_new.size

    def test_reduced_features_also_accepted(self, task, rep, overrides, tmp_path):
        """from_checkpoint accepts pre-sliced (current-space) data too."""
        data = _SPARSE if rep == "sparse" else _DATASETS[task]
        trainer = _fit(task, rep, overrides)
        committed, query_old = _removal_sets(trainer, seed=8)
        trainer.remove(committed, method="priu", commit=True)
        trainer.save_checkpoint(tmp_path)
        survivors = np.setdiff1d(
            np.arange(data.features.shape[0]), committed
        )
        reloaded = IncrementalTrainer.from_checkpoint(
            tmp_path, data.features[survivors], data.labels[survivors]
        )
        query_new = remap_surviving_ids(query_old, committed)
        np.testing.assert_allclose(
            reloaded.remove(query_new, method="priu").weights,
            trainer.remove(query_new, method="priu").weights,
            atol=ATOL,
            rtol=0.0,
        )

    def test_wrong_row_count_raises(self, task, rep, overrides, tmp_path):
        data = _SPARSE if rep == "sparse" else _DATASETS[task]
        trainer = _fit(task, rep, overrides)
        trainer.remove([1, 2, 3], method="priu", commit=True)
        trainer.save_checkpoint(tmp_path)
        with pytest.raises(ValueError, match="samples"):
            IncrementalTrainer.from_checkpoint(
                tmp_path, data.features[:-7], data.labels[:-7]
            )


class TestCommitProperties:
    """Hypothesis: commit compositionality for arbitrary removal pairs."""

    @settings(max_examples=12, deadline=None)
    @given(
        data=st.data(),
        task=st.sampled_from(
            ["linear", "binary_logistic", "multinomial_logistic"]
        ),
    )
    def test_commit_compositionality_random_sets(self, data, task):
        trainer = _fit(task, "dense", dict(batch_size=40), plan_refresh_threshold=1.0)
        reference = _fit(task, "dense", dict(batch_size=40))
        n = trainer.n_samples
        committed = np.array(
            sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=n - 1),
                        min_size=1,
                        max_size=8,
                    )
                )
            ),
            dtype=np.int64,
        )
        rest = np.setdiff1d(np.arange(n), committed)
        picks = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=rest.size - 1), max_size=8
            )
        )
        query_old = rest[np.array(sorted(picks), dtype=np.int64)]
        trainer.remove(committed, method="priu", commit=True)
        got = trainer.remove(
            remap_surviving_ids(query_old, committed), method="priu"
        ).weights
        want = reference.remove(
            np.union1d(committed, query_old), method="priu"
        ).weights
        np.testing.assert_allclose(got, want, atol=ATOL, rtol=0.0)
