"""Cost model: predicted-vs-actual accuracy and answer preservation (ISSUE 7).

The acceptance property: the estimator's *structural* predictions —
touched iterations, dropped occurrence slots, plan-patch bytes, SVD
width growth — match the executed commit receipt exactly for refresh
commits (they are read off the same packed occurrence index the compact
resolves against) and within a 0.5 relative band for recompiles, across
all 3 tasks × dense/SVD/sparse.  Around that sit unit tests for the
`Calibration` fit (recorded BENCH_refresh runs + online EWMA refresh),
the derived refresh-vs-recompile threshold, the admission early-closing
rule, the auto-tuned `MaintenancePolicy`, and the proof obligation that
makes the whole thing safe to wire into scheduling: cost-driven
threshold choices never change a committed answer (atol 1e-10 vs the
fixed-threshold reference).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import Calibration, CostEstimate, CostModel, IncrementalTrainer
from repro.core.costmodel import MAX_DECISIONS
from repro.core.maintenance import MaintenancePolicy
from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)

ATOL = 1e-10

_DATASETS = {
    "linear": make_regression(300, 8, noise=0.05, seed=71),
    "binary_logistic": make_binary_classification(300, 10, separation=1.0, seed=72),
    "multinomial_logistic": make_multiclass_classification(
        330, 12, n_classes=3, seed=73
    ),
}
_SPARSE = make_sparse_binary_classification(400, 120, density=0.05, seed=74)

# 3 tasks × dense/SVD/sparse (sparse multinomial replays unsupported —
# covered separately as the "unsupported" estimate case).
CONFIGS = [
    ("linear", "dense", dict(batch_size=40)),
    ("linear", "svd", dict(batch_size=6)),
    ("linear", "sparse", dict(batch_size=40)),
    ("binary_logistic", "dense", dict(batch_size=40)),
    ("binary_logistic", "svd", dict(batch_size=8)),
    ("binary_logistic", "sparse", dict(batch_size=40)),
    ("multinomial_logistic", "dense", dict(batch_size=40)),
    ("multinomial_logistic", "svd", dict(batch_size=8)),
]


def _fit(task, rep, overrides=None, **extra):
    data = _SPARSE if rep == "sparse" else _DATASETS[task]
    kwargs = dict(
        learning_rate=0.05,
        regularization=0.01,
        batch_size=40,
        n_iterations=80,
        seed=0,
        method="priu",
        n_classes=3 if task == "multinomial_logistic" else None,
    )
    kwargs.update(overrides or {})
    kwargs.update(extra)
    trainer = IncrementalTrainer(task, **kwargs)
    trainer.fit(data.features, data.labels)
    return trainer


def _rel_err(predicted, actual):
    if actual == 0:
        return abs(predicted)
    return abs(predicted - actual) / abs(actual)


# ---------------------------------------------------- structural accuracy
class TestEstimateAccuracy:
    @pytest.mark.parametrize(
        "task,rep,overrides", CONFIGS, ids=[f"{t}-{r}" for t, r, _ in CONFIGS]
    )
    def test_refresh_predictions_exact(self, task, rep, overrides):
        """Small removals: the estimate matches the refresh receipt exactly."""
        cm = CostModel()
        trainer = _fit(task, rep, overrides, cost_model=cm)
        rng = np.random.default_rng(5)
        for _ in range(3):
            ids = np.sort(rng.choice(trainer.n_samples, size=2, replace=False))
            estimate = trainer.estimate_removal(ids)
            receipt = trainer.commit(trainer.remove(ids, method="priu"))
            if estimate.mode == "recompile":
                continue  # dense SVD configs can touch > threshold; below
            assert estimate.mode == receipt["mode"]
            assert estimate.touched_iterations == receipt["touched_iterations"]
            assert estimate.touched_occurrences == receipt["dropped_slots"]
            assert estimate.touched_fraction == pytest.approx(
                receipt["fraction"], abs=1e-12
            )
            assert estimate.plan_patch_bytes == receipt["patched_bytes"]

    @pytest.mark.parametrize(
        "task,rep,overrides", CONFIGS, ids=[f"{t}-{r}" for t, r, _ in CONFIGS]
    )
    def test_recompile_predictions_within_band(self, task, rep, overrides):
        """Large removals recompile; bytes predicted within 0.5 relative."""
        cm = CostModel()
        trainer = _fit(task, rep, overrides, cost_model=cm)
        rng = np.random.default_rng(6)
        ids = np.sort(
            rng.choice(trainer.n_samples, size=trainer.n_samples // 3,
                       replace=False)
        )
        estimate = trainer.estimate_removal(ids)
        receipt = trainer.commit(trainer.remove(ids, method="priu"))
        assert estimate.mode == receipt["mode"] == "recompile"
        assert estimate.touched_iterations == receipt["touched_iterations"]
        assert estimate.touched_occurrences == receipt["dropped_slots"]
        # The prediction prices the pre-commit plan; the executed
        # recompile is the post-compaction one — off by the dropped rows.
        assert _rel_err(estimate.plan_patch_bytes, receipt["patched_bytes"]) <= 0.5

    def test_svd_width_growth_matches_correction_columns(self):
        cm = CostModel()
        trainer = _fit("binary_logistic", "svd", dict(batch_size=8),
                       cost_model=cm)
        assert trainer.store.compression == "svd"
        rng = np.random.default_rng(7)
        ids = np.sort(rng.choice(trainer.n_samples, size=3, replace=False))
        before = trainer.maintenance_cost(
            include_bytes=False
        ).svd_correction_columns
        estimate = trainer.estimate_removal(ids)
        trainer.remove(ids, method="priu", commit=True)
        after = trainer.maintenance_cost(
            include_bytes=False
        ).svd_correction_columns
        assert estimate.svd_width_growth == after - before > 0

    def test_dense_uncompressed_predicts_zero_svd_growth(self):
        trainer = _fit("linear", "dense", cost_model=CostModel())
        assert trainer.store.compression == "none"
        assert trainer.estimate_removal([3]).svd_width_growth == 0

    def test_unsupported_plan_estimates_zero_patch(self):
        """Sparse multinomial has no compiled replay: nothing to patch."""
        trainer = _fit("multinomial_logistic", "sparse", dict(batch_size=40),
                       cost_model=CostModel())
        estimate = trainer.estimate_removal([5, 9])
        assert estimate.mode == "unsupported"
        assert estimate.plan_patch_bytes == 0
        # No replay path exists to produce an outcome, so drive the
        # commit machinery directly: the receipt must agree.
        receipt = trainer._apply_commit(
            np.array([5, 9]), trainer.result.weights
        )
        assert receipt["mode"] == "unsupported"
        assert receipt["patched_bytes"] == 0

    def test_estimate_is_free_of_side_effects(self):
        trainer = _fit("binary_logistic", "dense", cost_model=CostModel())
        version = trainer.store._version
        weights = trainer.result.weights.copy()
        for _ in range(5):
            trainer.estimate_removal([1, 2, 3, 4])
        assert trainer.store._version == version
        np.testing.assert_array_equal(trainer.result.weights, weights)

    def test_estimate_monotone_in_request_size(self):
        trainer = _fit("binary_logistic", "dense", cost_model=CostModel())
        small = trainer.estimate_removal([3, 17])
        large = trainer.estimate_removal([3, 17, 45, 101, 200])
        assert large.touched_occurrences >= small.touched_occurrences
        assert large.touched_iterations >= small.touched_iterations
        assert large.n_removed > small.n_removed

    def test_estimate_removal_without_model_uses_trainer_threshold(self):
        """The predicted mode must match what a commit would actually do."""
        trainer = _fit("binary_logistic", "dense",
                       dict(plan_refresh_threshold=1e-6))
        assert trainer.cost_model is None
        estimate = trainer.estimate_removal([3])
        assert estimate.mode == "recompile"  # any touch beats 1e-6
        receipt = trainer.commit(trainer.remove([3], method="priu"))
        assert receipt["mode"] == "recompile"

    def test_estimate_requires_fit(self):
        trainer = IncrementalTrainer(
            "linear", learning_rate=0.05, regularization=0.01,
            batch_size=10, n_iterations=10,
        )
        with pytest.raises(RuntimeError):
            trainer.estimate_removal([0])


# ------------------------------------------------------------- calibration
class TestCalibration:
    def test_defaults_reproduce_fixed_threshold(self):
        assert Calibration().refresh_threshold() == pytest.approx(0.25)

    def test_threshold_is_cost_curve_crossing(self):
        cal = Calibration(
            refresh_seconds_per_fraction=2.0, recompile_seconds=1.0
        )
        assert cal.refresh_threshold() == pytest.approx(0.5)

    def test_threshold_clipped_to_unit_band(self):
        low = Calibration(
            refresh_seconds_per_fraction=1000.0, recompile_seconds=0.001
        )
        high = Calibration(
            refresh_seconds_per_fraction=0.001, recompile_seconds=1000.0
        )
        assert low.refresh_threshold() == pytest.approx(0.01)
        assert high.refresh_threshold() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Calibration(refresh_seconds_per_fraction=0.0)
        with pytest.raises(ValueError):
            Calibration(recompile_seconds=-1.0)
        with pytest.raises(ValueError):
            Calibration(batch_seconds=-0.1)

    def test_from_bench_dict_fits_medians(self):
        rows = [
            {"mode": "refresh", "plan_sync_seconds": 0.2,
             "fraction_iterations_touched": 0.1,
             "speedup_vs_recompile": 5.0},
            {"mode": "refresh", "plan_sync_seconds": 0.4,
             "fraction_iterations_touched": 0.1,
             "speedup_vs_recompile": 2.0},
            {"mode": "recompile", "plan_sync_seconds": 0.9,
             "fraction_iterations_touched": 0.8},
        ]
        cal = Calibration.from_bench({"commit_costs": rows})
        # refresh rates: [2.0, 4.0] -> median 3.0
        assert cal.refresh_seconds_per_fraction == pytest.approx(3.0)
        # recompile estimates: [1.0, 0.8, 0.9] -> median 0.9
        assert cal.recompile_seconds == pytest.approx(0.9)
        assert cal.n_observations == 5
        assert cal.source == "dict"

    def test_from_bench_empty_keeps_defaults(self):
        cal = Calibration.from_bench({"commit_costs": []})
        default = Calibration()
        assert cal.refresh_seconds_per_fraction == (
            default.refresh_seconds_per_fraction
        )
        assert cal.recompile_seconds == default.recompile_seconds
        assert cal.n_observations == 0

    def test_from_bench_missing_file_falls_back(self, tmp_path):
        """A fresh deployment has no benchmark run yet; attaching its
        cost model must not take serving down."""
        cal = Calibration.from_bench(tmp_path / "BENCH_refresh.json")
        default = Calibration()
        assert cal.refresh_seconds_per_fraction == (
            default.refresh_seconds_per_fraction
        )
        assert cal.recompile_seconds == default.recompile_seconds
        assert cal.n_observations == 0
        assert cal.refresh_threshold() == default.refresh_threshold()
        assert "unreadable" in cal.source
        assert str(tmp_path) in cal.source

    def test_from_bench_empty_file_falls_back(self, tmp_path):
        empty = tmp_path / "BENCH_refresh.json"
        empty.write_text("")
        cal = Calibration.from_bench(empty)
        assert cal.n_observations == 0
        assert "unreadable" in cal.source

    def test_from_bench_truncated_json_falls_back(self, tmp_path):
        torn = tmp_path / "BENCH_refresh.json"
        torn.write_text('{"commit_costs": [{"mode": "ref')
        cal = Calibration.from_bench(torn)
        assert cal.n_observations == 0
        assert "unreadable" in cal.source

    def test_from_bench_non_mapping_falls_back(self, tmp_path):
        listy = tmp_path / "BENCH_refresh.json"
        listy.write_text("[1, 2, 3]")
        cal = Calibration.from_bench(listy)
        assert cal.n_observations == 0
        assert "not a mapping" in cal.source
        assert Calibration.from_bench(None).n_observations == 0

    def test_from_bench_malformed_rows_are_skipped(self):
        rows = [
            "not a row",
            {"mode": "refresh"},  # no timings at all
            {"mode": "refresh", "plan_sync_seconds": "fast",
             "fraction_iterations_touched": 0.1},  # unparseable float
            {"mode": "refresh", "plan_sync_seconds": 0.3,
             "fraction_iterations_touched": 0.1},  # usable
            {"mode": "recompile", "plan_sync_seconds": 0.9,
             "fraction_iterations_touched": 0.8},  # usable
            None,
        ]
        cal = Calibration.from_bench({"commit_costs": rows})
        assert cal.refresh_seconds_per_fraction == pytest.approx(3.0)
        assert cal.recompile_seconds == pytest.approx(0.9)
        assert cal.n_observations == 2

    def test_from_bench_non_list_table_falls_back(self):
        cal = Calibration.from_bench({"commit_costs": {"oops": 1}})
        assert cal.n_observations == 0

    def test_from_bench_recorded_run(self, tmp_path):
        """The repo's recorded BENCH_refresh.json (when present) fits."""
        recorded = Path(__file__).resolve().parents[2] / "BENCH_refresh.json"
        if not recorded.exists():
            payload = {"commit_costs": [
                {"mode": "refresh", "plan_sync_seconds": 0.01,
                 "fraction_iterations_touched": 0.05,
                 "speedup_vs_recompile": 3.0},
            ]}
            recorded = tmp_path / "BENCH_refresh.json"
            recorded.write_text(json.dumps(payload))
        cal = Calibration.from_bench(recorded)
        assert cal.refresh_seconds_per_fraction > 0.0
        assert cal.recompile_seconds > 0.0
        assert cal.source == str(recorded)
        assert 0.01 <= cal.refresh_threshold() <= 1.0


# --------------------------------------------------------- online learning
class TestOnlineCalibration:
    def test_observe_refresh_updates_rate(self):
        cm = CostModel(ewma=0.5)
        before = cm.calibration.refresh_seconds_per_fraction
        cm.observe_commit(None, {
            "mode": "refresh", "fraction": 0.1, "plan_sync_seconds": 0.2,
        })
        after = cm.calibration.refresh_seconds_per_fraction
        assert after == pytest.approx(0.5 * before + 0.5 * 2.0)
        assert cm.calibration.source == "online"

    def test_observe_recompile_updates_flat_cost(self):
        cm = CostModel(ewma=0.5)
        before = cm.calibration.recompile_seconds
        cm.observe_commit(None, {
            "mode": "recompile", "fraction": 0.9, "plan_sync_seconds": 0.5,
        })
        assert cm.calibration.recompile_seconds == pytest.approx(
            0.5 * before + 0.5 * 0.5
        )

    def test_observe_batch_seeds_then_blends(self):
        cm = CostModel(ewma=0.5)
        cm.observe_batch(4, 0.2)
        assert cm.calibration.batch_seconds == pytest.approx(0.2)
        cm.observe_batch(4, 0.4)
        assert cm.calibration.batch_seconds == pytest.approx(0.3)

    def test_observe_batch_ignores_nonsense(self):
        cm = CostModel()
        cm.observe_batch(0, 1.0)
        cm.observe_batch(4, -1.0)
        assert cm.calibration.batch_seconds == 0.0

    def test_untimed_receipt_only_logs(self):
        cm = CostModel()
        before = cm.calibration
        cm.observe_commit(None, {"mode": "refresh", "fraction": 0.1})
        assert cm.calibration == before
        assert len(cm.decisions()) == 1

    def test_decision_ring_is_bounded(self):
        cm = CostModel()
        for i in range(MAX_DECISIONS + 10):
            cm.observe_commit(None, {"mode": "refresh", "fraction": 0.1,
                                     "plan_sync_seconds": 0.01, "tag": i})
        log = cm.decisions()
        assert len(log) == MAX_DECISIONS

    def test_commit_feeds_decision_log_with_prediction(self):
        cm = CostModel()
        trainer = _fit("binary_logistic", "dense", cost_model=cm)
        trainer.remove([3, 17], method="priu", commit=True)
        # The plan replay logs its own (kind="replay") observation ahead
        # of the commit decision.
        (decision,) = [
            d for d in cm.decisions() if d.get("kind") != "replay"
        ]
        assert decision["predicted"] is not None
        assert decision["predicted"]["mode"] == decision["actual_mode"]
        assert decision["actual_seconds"] > 0.0

    def test_invalid_ewma_rejected(self):
        with pytest.raises(ValueError):
            CostModel(ewma=0.0)
        with pytest.raises(ValueError):
            CostModel(ewma=1.5)


# ----------------------------------------------------- admission economics
class TestEarlyClosing:
    def test_uncalibrated_never_closes_early(self):
        cm = CostModel()
        assert not cm.should_close(1, 10.0)
        assert not cm.should_close(100, 10.0)

    def test_saving_shrinks_as_batch_grows(self):
        cm = CostModel(Calibration(batch_seconds=0.8))
        savings = [cm.predicted_batch_saving(n) for n in (1, 2, 4, 8)]
        assert savings == sorted(savings, reverse=True)
        assert savings[0] == pytest.approx(0.8)

    def test_closes_once_budget_exceeds_saving(self):
        cm = CostModel(Calibration(batch_seconds=0.1))
        assert cm.should_close(2, 0.06)  # saving 0.05 < remaining 0.06
        assert not cm.should_close(2, 0.04)

    def test_report_shape(self):
        cm = CostModel()
        report = cm.report()
        assert set(report) == {"calibration", "decisions"}
        assert report["calibration"]["refresh_threshold"] == pytest.approx(0.25)


# ------------------------------------------------------ answer preservation
class TestAnswerPreservation:
    @pytest.mark.parametrize("task", list(_DATASETS))
    def test_threshold_source_never_changes_answers(self, task):
        """Fixed threshold vs two extreme calibrations: identical commits."""
        rng = np.random.default_rng(11)
        plans = [
            ("fixed", None),
            # Always-refresh and always-recompile calibrations: the two
            # extremes of any threshold the model could ever derive.
            ("refresh", CostModel(Calibration(
                refresh_seconds_per_fraction=0.001, recompile_seconds=10.0))),
            ("recompile", CostModel(Calibration(
                refresh_seconds_per_fraction=1000.0,
                recompile_seconds=0.001))),
        ]
        trainers = {
            name: _fit(task, "dense", cost_model=model)
            for name, model in plans
        }
        sequences = [
            np.sort(rng.choice(300, size=size, replace=False))
            for size in (2, 3, 1, 4)
        ]
        for ids in sequences:
            ids = ids[ids < trainers["fixed"].n_samples]
            receipts = {
                name: trainer.commit(trainer.remove(ids, method="priu"))
                for name, trainer in trainers.items()
            }
            reference = trainers["fixed"].result.weights
            for name, trainer in trainers.items():
                np.testing.assert_allclose(
                    trainer.result.weights, reference, atol=ATOL,
                    err_msg=f"{name} diverged",
                )
            # The calibrations really did choose differently.
        assert receipts["refresh"]["mode"] in ("refresh", "unsupported")
        assert receipts["recompile"]["mode"] in ("recompile", "unsupported")

    def test_post_commit_queries_match(self):
        ref = _fit("binary_logistic", "dense")
        cost = _fit("binary_logistic", "dense", cost_model=CostModel(
            Calibration(refresh_seconds_per_fraction=1000.0,
                        recompile_seconds=0.001)))
        for ids in ([4, 9], [1, 2, 3]):
            ref.remove(ids, method="priu", commit=True)
            cost.remove(ids, method="priu", commit=True)
        probe = [0, 5, 10]
        np.testing.assert_allclose(
            ref.remove(probe, method="priu").weights,
            cost.remove(probe, method="priu").weights,
            atol=ATOL,
        )


# --------------------------------------------------- maintenance auto-tune
class TestMaintenanceAutoTune:
    def test_limits_within_operational_bands(self):
        for cal in (
            Calibration(),
            Calibration(refresh_seconds_per_fraction=1000.0,
                        recompile_seconds=0.001),
            Calibration(refresh_seconds_per_fraction=0.001,
                        recompile_seconds=1000.0),
        ):
            policy = CostModel(cal).maintenance_policy()
            assert 0.05 <= policy.max_slot_garbage_fraction <= 0.5
            assert 4 <= policy.max_svd_correction_columns <= 128

    def test_cheap_refresh_tightens_limits(self):
        """High threshold (refresh always wins) -> garbage accrues every
        commit -> reclamation must trigger sooner."""
        refresh_wins = CostModel(Calibration(
            refresh_seconds_per_fraction=0.001, recompile_seconds=1000.0,
        )).maintenance_policy()
        recompile_wins = CostModel(Calibration(
            refresh_seconds_per_fraction=1000.0, recompile_seconds=0.001,
        )).maintenance_policy()
        assert (refresh_wins.max_slot_garbage_fraction
                < recompile_wins.max_slot_garbage_fraction)
        assert (refresh_wins.max_svd_correction_columns
                < recompile_wins.max_svd_correction_columns)

    def test_base_contributes_manual_overrides(self):
        base = MaintenancePolicy(
            svd_epsilon=0.123, eigen_correction_limit=7,
            refresh_stale_eigen=False,
        )
        policy = CostModel().maintenance_policy(base)
        assert policy.svd_epsilon == 0.123
        assert policy.eigen_correction_limit == 7
        assert policy.refresh_stale_eigen is False

    def test_auto_tuned_policy_drives_maintain(self):
        # Refresh-always calibration: every commit leaves slot garbage
        # behind and the auto-tuned limits are at their tightest.
        cm = CostModel(Calibration(
            refresh_seconds_per_fraction=0.001, recompile_seconds=1000.0,
        ))
        trainer = _fit("multinomial_logistic", "svd", dict(batch_size=8),
                       cost_model=cm)
        rng = np.random.default_rng(13)
        policy = cm.maintenance_policy()
        while not policy.due(trainer.maintenance_cost(include_bytes=False)):
            ids = np.sort(rng.choice(trainer.n_samples, size=2, replace=False))
            trainer.remove(ids, method="priu", commit=True)
        report = trainer.maintain(policy)
        cost = trainer.maintenance_cost(include_bytes=False)
        assert not policy.due(cost)  # whatever was due got reclaimed
        assert report is not None
