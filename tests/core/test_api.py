"""Unit tests for the IncrementalTrainer facade."""

import numpy as np
import pytest

from repro import IncrementalTrainer
from repro.datasets import (
    make_binary_classification,
    make_regression,
    make_sparse_binary_classification,
)


@pytest.fixture(scope="module")
def linear_trainer():
    data = make_regression(300, 8, seed=131)
    trainer = IncrementalTrainer(
        "linear", learning_rate=0.01, regularization=0.1,
        batch_size=30, n_iterations=100, seed=1,
    )
    trainer.fit(data.features, data.labels)
    return data, trainer


@pytest.fixture(scope="module")
def logistic_trainer():
    data = make_binary_classification(400, 10, seed=132)
    trainer = IncrementalTrainer(
        "binary_logistic", learning_rate=0.1, regularization=0.01,
        batch_size=40, n_iterations=150, seed=2,
    )
    trainer.fit(data.features, data.labels)
    return data, trainer


class TestLifecycle:
    def test_unfitted_rejects_queries(self):
        trainer = IncrementalTrainer(
            "linear", learning_rate=0.01, regularization=0.1,
            batch_size=10, n_iterations=5,
        )
        with pytest.raises(RuntimeError):
            trainer.remove([0])
        with pytest.raises(RuntimeError):
            _ = trainer.weights_

    def test_invalid_task(self):
        with pytest.raises(ValueError):
            IncrementalTrainer(
                "svm", learning_rate=0.01, regularization=0.1,
                batch_size=10, n_iterations=5,
            )

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            IncrementalTrainer(
                "linear", learning_rate=0.01, regularization=0.1,
                batch_size=10, n_iterations=5, method="magic",
            )

    def test_fit_returns_self(self):
        data = make_regression(60, 4, seed=133)
        trainer = IncrementalTrainer(
            "linear", learning_rate=0.01, regularization=0.1,
            batch_size=10, n_iterations=10,
        )
        assert trainer.fit(data.features, data.labels) is trainer


class TestUpdates:
    def test_remove_matches_retrain_linear(self, linear_trainer):
        data, trainer = linear_trainer
        removed = list(range(12))
        priu = trainer.remove(removed, method="priu")
        retrained = trainer.retrain(removed)
        assert np.allclose(priu.weights, retrained.weights, atol=1e-9)
        assert priu.method == "priu"
        assert retrained.method == "basel"
        assert priu.seconds >= 0.0

    def test_auto_method_prefers_opt_for_small_features(self, linear_trainer):
        _, trainer = linear_trainer
        outcome = trainer.remove([0, 1])
        assert outcome.method == "priu-opt"

    def test_priu_method_forced(self, logistic_trainer):
        _, trainer = logistic_trainer
        assert trainer.remove([0], method="priu").method == "priu"

    def test_unknown_update_method(self, logistic_trainer):
        _, trainer = logistic_trainer
        with pytest.raises(ValueError):
            trainer.remove([0], method="oracle")

    def test_closed_form_linear_only(self, linear_trainer, logistic_trainer):
        data, trainer = linear_trainer
        outcome = trainer.closed_form([1, 2, 3])
        assert outcome.method == "closed-form"
        _, log_trainer = logistic_trainer
        with pytest.raises(ValueError):
            log_trainer.closed_form([0])

    def test_influence_runs(self, logistic_trainer):
        _, trainer = logistic_trainer
        outcome = trainer.influence([0, 1, 2])
        assert outcome.method == "infl-koh-liang"
        assert outcome.weights.shape == trainer.weights_.shape

    def test_removed_ids_normalized(self, linear_trainer):
        _, trainer = linear_trainer
        outcome = trainer.remove([5, 3, 5, 1])
        assert np.array_equal(outcome.removed, [1, 3, 5])

    def test_evaluate_default_and_custom_weights(self, logistic_trainer):
        data, trainer = logistic_trainer
        base = trainer.evaluate(data.valid_features, data.valid_labels)
        assert 0.0 <= base <= 1.0
        updated = trainer.remove([0, 1]).weights
        custom = trainer.evaluate(data.valid_features, data.valid_labels, updated)
        assert 0.0 <= custom <= 1.0

    def test_provenance_memory_reported(self, logistic_trainer):
        _, trainer = logistic_trainer
        assert trainer.provenance_gigabytes() > 0.0


class TestSparseAuto:
    def test_sparse_dataset_uses_priu_only(self):
        data = make_sparse_binary_classification(300, 200, density=0.02, seed=134)
        trainer = IncrementalTrainer(
            "binary_logistic", learning_rate=0.05, regularization=0.1,
            batch_size=30, n_iterations=40, seed=3,
        )
        trainer.fit(data.features, data.labels)
        outcome = trainer.remove([0, 1, 2])
        assert outcome.method == "priu"
        with pytest.raises(ValueError):
            trainer.remove([0], method="priu-opt")

    def test_prepare_baselines_skips_sparse_influence(self):
        data = make_sparse_binary_classification(200, 150, density=0.02, seed=135)
        trainer = IncrementalTrainer(
            "binary_logistic", learning_rate=0.05, regularization=0.1,
            batch_size=20, n_iterations=20, seed=4,
        )
        trainer.fit(data.features, data.labels)
        trainer.prepare_baselines()
        assert trainer._influence is None


class TestRepeatedDeletions:
    def test_many_subsets_from_one_fit(self, logistic_trainer):
        """The interpretability workload: one capture, many removals."""
        data, trainer = logistic_trainer
        rng = np.random.default_rng(9)
        references = []
        for _ in range(5):
            subset = rng.choice(data.n_samples, size=10, replace=False)
            outcome = trainer.remove(subset, method="priu")
            retrained = trainer.retrain(subset)
            references.append(
                np.linalg.norm(outcome.weights - retrained.weights)
                / np.linalg.norm(retrained.weights)
            )
        assert max(references) < 0.05
