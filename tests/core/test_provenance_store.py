"""Unit tests for the provenance store and its occurrence index."""

import numpy as np
import pytest

from repro.core import train_with_capture
from repro.core.provenance_store import apply_summary
from repro.linalg import TruncatedSummary
from repro.models import make_schedule, objective_for


@pytest.fixture(scope="module")
def store():
    from repro.datasets import make_regression

    data = make_regression(120, 6, seed=121)
    objective = objective_for("linear", 0.1)
    schedule = make_schedule(data.n_samples, 12, 40, seed=41)
    _, captured = train_with_capture(
        objective, data.features, data.labels, schedule, 0.01,
    )
    return captured


class TestOccurrenceIndex:
    def test_index_covers_every_batch_slot(self, store):
        occurrences = store.occurrences()
        total = sum(len(v) for v in occurrences.values())
        assert total == sum(len(r.batch) for r in store.records)

    def test_positions_are_correct(self, store):
        occurrences = store.occurrences()
        for sample, hits in list(occurrences.items())[:20]:
            for t, pos in hits:
                assert store.records[t].batch[pos] == sample

    def test_removed_positions_partition(self, store):
        removed = np.array([0, 5, 11, 50])
        per_iteration = store.removed_positions(removed)
        total = sum(len(ids) for ids, _ in per_iteration.values())
        expected = sum(
            np.isin(record.batch, removed).sum() for record in store.records
        )
        assert total == expected

    def test_removed_positions_alignment(self, store):
        removed = np.array([3, 7])
        for t, (ids, positions) in store.removed_positions(removed).items():
            assert np.array_equal(store.records[t].batch[positions], ids)

    def test_unknown_sample_ignored(self, store):
        assert store.removed_positions(np.array([10_000])) == {}

    def test_index_cached(self, store):
        assert store.occurrences() is store.occurrences()


class TestMemoryAccounting:
    def test_nbytes_positive_and_additive(self, store):
        per_record = sum(record.nbytes() for record in store.records)
        assert store.nbytes() == per_record
        assert store.gigabytes() == pytest.approx(store.nbytes() / 1e9)

    def test_more_iterations_more_memory(self):
        from repro.datasets import make_regression

        data = make_regression(150, 6, seed=122)
        objective = objective_for("linear", 0.1)

        def bytes_for(tau):
            schedule = make_schedule(data.n_samples, 15, tau, seed=42)
            _, captured = train_with_capture(
                objective, data.features, data.labels, schedule, 0.01,
            )
            return captured.nbytes()

        assert bytes_for(60) > bytes_for(20)

    def test_svd_compression_saves_memory_when_low_rank(self):
        from repro.datasets import make_regression

        # Strong spectral decay: truncation pays off.
        data = make_regression(200, 60, seed=123, spectral_decay=1.5)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 30, 20, seed=43)
        _, dense = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
            compression="none",
        )
        _, compressed = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
            compression="svd", epsilon=0.01,
        )
        assert compressed.nbytes() < dense.nbytes()


class TestApplySummary:
    def test_dense_and_truncated_agree(self):
        rng = np.random.default_rng(4)
        basis = rng.standard_normal((8, 3))
        dense = basis @ basis.T
        from repro.linalg import truncate_summary

        summary = truncate_summary(dense, epsilon=1e-12, symmetric=True)
        v = rng.standard_normal(8)
        assert np.allclose(apply_summary(dense, v), apply_summary(summary, v))

    def test_missing_summary_rejected(self):
        with pytest.raises(ValueError):
            apply_summary(None, np.ones(3))
