"""Unit tests for provenance capture (the offline phase)."""

import numpy as np
import pytest

from repro.core import train_with_capture
from repro.core.provenance_store import LinearRecord, LogisticRecord
from repro.datasets import make_binary_classification, make_regression
from repro.models import make_schedule, objective_for, train


class TestCaptureBasics:
    def test_one_record_per_iteration(self, regression_data, linear_objective):
        schedule = make_schedule(regression_data.n_samples, 40, 37, seed=31)
        _, store = train_with_capture(
            linear_objective,
            regression_data.features,
            regression_data.labels,
            schedule,
            0.01,
        )
        assert len(store) == 37

    def test_capture_does_not_change_training(self, regression_data, linear_objective):
        schedule = make_schedule(regression_data.n_samples, 40, 50, seed=32)
        plain = train(
            linear_objective,
            regression_data.features,
            regression_data.labels,
            schedule,
            0.01,
        )
        captured, _ = train_with_capture(
            linear_objective,
            regression_data.features,
            regression_data.labels,
            schedule,
            0.01,
        )
        assert np.allclose(plain.weights, captured.weights)

    def test_store_metadata(self, regression_data, linear_objective):
        schedule = make_schedule(regression_data.n_samples, 40, 10, seed=33)
        _, store = train_with_capture(
            linear_objective,
            regression_data.features,
            regression_data.labels,
            schedule,
            0.01,
        )
        assert store.task == "linear"
        assert store.n_samples == regression_data.n_samples
        assert store.learning_rate == 0.01
        assert store.regularization == linear_objective.regularization

    def test_linear_gram_matches_definition(self, regression_data, linear_objective):
        schedule = make_schedule(regression_data.n_samples, 30, 5, seed=34)
        _, store = train_with_capture(
            linear_objective,
            regression_data.features,
            regression_data.labels,
            schedule,
            0.01,
            compression="none",
        )
        record = store.records[2]
        assert isinstance(record, LinearRecord)
        block = regression_data.features[record.batch]
        assert np.allclose(record.summary, block.T @ block)
        assert np.allclose(
            record.moment, block.T @ regression_data.labels[record.batch]
        )

    def test_invalid_compression(self, regression_data, linear_objective):
        schedule = make_schedule(regression_data.n_samples, 30, 5, seed=35)
        with pytest.raises(ValueError):
            train_with_capture(
                linear_objective,
                regression_data.features,
                regression_data.labels,
                schedule,
                0.01,
                compression="pca",
            )

    def test_unsupported_objective(self, regression_data):
        class Weird:
            regularization = 0.0

            def n_parameters(self, m):
                return m

        schedule = make_schedule(regression_data.n_samples, 30, 5, seed=36)
        with pytest.raises(TypeError):
            train_with_capture(
                Weird(),
                regression_data.features,
                regression_data.labels,
                schedule,
                0.01,
            )

    def test_freeze_rejected_for_linear(self, regression_data, linear_objective):
        schedule = make_schedule(regression_data.n_samples, 30, 5, seed=37)
        with pytest.raises(ValueError):
            train_with_capture(
                linear_objective,
                regression_data.features,
                regression_data.labels,
                schedule,
                0.01,
                freeze_at=0.7,
            )


class TestLogisticCapture:
    def test_coefficients_come_from_interpolator(self, binary_data, binary_objective):
        from repro.linalg import sigmoid_complement_interpolator

        interp = sigmoid_complement_interpolator(n_intervals=1000)
        schedule = make_schedule(binary_data.n_samples, 25, 8, seed=38)
        result, store = train_with_capture(
            binary_objective,
            binary_data.features,
            binary_data.labels,
            schedule,
            0.1,
            interpolator=interp,
        )
        record = store.records[0]
        assert isinstance(record, LogisticRecord)
        # First iteration: w = 0, all margins are 0.
        slopes, intercepts = interp.coefficients(np.zeros(record.batch.size))
        assert np.allclose(record.slopes, slopes)
        assert np.allclose(record.intercepts, intercepts)

    def test_freeze_fraction_clamped(self, binary_data, binary_objective):
        schedule = make_schedule(binary_data.n_samples, 25, 10, seed=39)
        _, store = train_with_capture(
            binary_objective,
            binary_data.features,
            binary_data.labels,
            schedule,
            0.1,
            freeze_at=0.05,  # 0.5 iterations -> clamps to 1
        )
        assert store.frozen is not None
        assert store.frozen.t_s == 1

    def test_frozen_gram_matches_full_dataset(self, binary_data, binary_objective):
        schedule = make_schedule(binary_data.n_samples, 25, 20, seed=40)
        _, store = train_with_capture(
            binary_objective,
            binary_data.features,
            binary_data.labels,
            schedule,
            0.1,
            freeze_at=0.5,
        )
        frozen = store.frozen
        x = binary_data.features
        expected = x.T @ (x * frozen.slopes[:, None])
        assert np.allclose(frozen.gram, expected)
        # Eigen state reconstructs the frozen gram.
        recon = (
            frozen.eigenvectors * frozen.eigenvalues
        ) @ frozen.eigenvectors.T
        assert np.allclose(recon, expected, atol=1e-8)
