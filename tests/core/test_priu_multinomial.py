"""PrIU for multinomial logistic regression (softmax linearization)."""

import numpy as np
import pytest

from repro.core import PrIUUpdater, train_with_capture
from repro.datasets import make_multiclass_classification
from repro.eval import cosine_similarity
from repro.models import make_schedule, objective_for, train

ETA = 0.05


@pytest.fixture(scope="module")
def setup():
    data = make_multiclass_classification(700, 15, n_classes=4, seed=95)
    objective = objective_for("multinomial_logistic", 0.01, n_classes=4)
    schedule = make_schedule(data.n_samples, 70, 200, seed=15)
    result, store = train_with_capture(
        objective, data.features, data.labels, schedule, ETA,
        compression="none",
    )
    return data, objective, schedule, result, store


def basel(setup, removed):
    data, objective, schedule, *_ = setup
    return train(
        objective, data.features, data.labels, schedule, ETA,
        exclude=set(removed),
    ).weights


class TestAccuracy:
    def test_replay_without_deletion_matches(self, setup):
        data, objective, schedule, result, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        assert np.allclose(updater.update([]), result.weights, atol=1e-10)

    @pytest.mark.parametrize("n_removed", [1, 15, 70])
    def test_deletion_close_to_basel(self, setup, n_removed):
        data, *_ , store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        removed = list(range(n_removed))
        reference = basel(setup, removed)
        updated = updater.update(removed)
        assert cosine_similarity(updated, reference) > 0.995
        assert np.linalg.norm(updated - reference) < 0.1 * np.linalg.norm(
            reference
        ) + 1e-3

    def test_validation_accuracy_preserved(self, setup):
        data, objective, *_ , store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        removed = list(range(50))
        reference = basel(setup, removed)
        acc_ref = objective.metric(
            reference, data.valid_features, data.valid_labels
        )
        acc_upd = objective.metric(
            updater.update(removed), data.valid_features, data.valid_labels
        )
        assert acc_upd == pytest.approx(acc_ref, abs=0.03)

    def test_svd_compression_agrees_with_dense(self, setup):
        data, objective, schedule, result, _ = setup
        _, store_svd = train_with_capture(
            objective, data.features, data.labels, schedule, ETA,
            compression="svd", epsilon=1e-10,
        )
        _, store_dense = train_with_capture(
            objective, data.features, data.labels, schedule, ETA,
            compression="none",
        )
        removed = list(range(20))
        dense = PrIUUpdater(store_dense, data.features, data.labels).update(removed)
        compressed = PrIUUpdater(store_svd, data.features, data.labels).update(
            removed
        )
        assert np.allclose(dense, compressed, atol=1e-6)


class TestRecords:
    def test_cached_state_shapes(self, setup):
        data, objective, *_ , store = setup
        q = objective.n_classes
        record = store.records[0]
        assert record.probabilities.shape == (record.batch.size, q)
        assert record.wx.shape == (record.batch.size, q)
        assert record.moment.shape == (q, data.features.shape[1])

    def test_probabilities_are_distributions(self, setup):
        *_, store = setup
        for record in store.records[:5]:
            assert np.allclose(record.probabilities.sum(axis=1), 1.0)
            assert np.all(record.probabilities >= 0)

    def test_moment_matches_definition(self, setup):
        """D^(t) = Σ_i (Λ_i u_i - p_i + e_{y_i}) x_iᵀ."""
        data, *_ , store = setup
        record = store.records[3]
        block = data.features[record.batch]
        y = data.labels[record.batch].astype(int)
        probs, wx = record.probabilities, record.wx
        pu = np.einsum("ik,ik->i", probs, wx)
        coeff = probs * wx - probs * pu[:, None] - probs
        coeff[np.arange(len(y)), y] += 1.0
        assert np.allclose(record.moment, coeff.T @ block)

    def test_dense_summary_matches_kron_definition(self, setup):
        data, *_ , store = setup
        record = store.records[0]
        block = data.features[record.batch]
        probs = record.probabilities
        q = probs.shape[1]
        m = block.shape[1]
        expected = np.zeros((q * m, q * m))
        for i in range(block.shape[0]):
            lam = np.diag(probs[i]) - np.outer(probs[i], probs[i])
            expected -= np.kron(lam, np.outer(block[i], block[i]))
        assert np.allclose(record.summary, expected, atol=1e-8)
