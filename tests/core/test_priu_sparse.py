"""PrIU sparse mode: the linearized replay of Eq. 11 (Sec. 5.3)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import PrIUUpdater, train_with_capture
from repro.datasets import make_sparse_binary_classification
from repro.models import make_schedule, objective_for, train

ETA = 0.05


@pytest.fixture(scope="module")
def setup():
    data = make_sparse_binary_classification(800, 400, density=0.02, seed=97)
    objective = objective_for("binary_logistic", 0.05)
    schedule = make_schedule(data.n_samples, 80, 120, seed=17)
    result, store = train_with_capture(
        objective, data.features, data.labels, schedule, ETA,
    )
    return data, objective, schedule, result, store


class TestSparseMode:
    def test_sparse_mode_detected(self, setup):
        *_, store = setup
        assert store.sparse_mode
        assert store.compression == "sparse"

    def test_records_keep_coefficients_only(self, setup):
        *_, store = setup
        record = store.records[0]
        assert record.summary is None
        assert record.moment.size == 0
        assert record.slopes.shape == record.batch.shape

    def test_replay_matches_linearized_training(self, setup):
        data, objective, schedule, result, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        replayed = updater.update([])
        assert np.linalg.norm(replayed - result.weights) < 1e-6

    def test_deletion_close_to_basel(self, setup):
        data, objective, schedule, result, store = setup
        removed = list(range(40))
        reference = train(
            objective, data.features, data.labels, schedule, ETA,
            exclude=set(removed),
        ).weights
        updater = PrIUUpdater(store, data.features, data.labels)
        updated = updater.update(removed)
        denom = max(np.linalg.norm(reference), 1e-9)
        assert np.linalg.norm(updated - reference) / denom < 0.05

    def test_features_stay_sparse_through_update(self, setup):
        data, *_ , store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        assert sp.issparse(updater.features)
        updater.update(range(10))
        assert sp.issparse(updater.features)

    def test_sparse_linear_task(self):
        """Linear regression on sparse rows uses the replay path."""
        rng = np.random.default_rng(5)
        dense = rng.standard_normal((300, 100))
        dense[np.abs(dense) < 1.2] = 0.0
        features = sp.csr_matrix(dense)
        labels = rng.standard_normal(300)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(300, 30, 60, seed=18)
        _, store = train_with_capture(
            objective, features, labels, schedule, 0.01,
        )
        removed = list(range(15))
        reference = train(
            objective, features, labels, schedule, 0.01, exclude=set(removed)
        ).weights
        updater = PrIUUpdater(store, features, labels)
        assert np.allclose(updater.update(removed), reference, atol=1e-9)

    def test_sparse_multinomial_rejected(self):
        rng = np.random.default_rng(6)
        dense = rng.standard_normal((100, 30))
        dense[np.abs(dense) < 1.0] = 0.0
        features = sp.csr_matrix(dense)
        labels = rng.integers(0, 3, size=100)
        objective = objective_for("multinomial_logistic", 0.1, n_classes=3)
        schedule = make_schedule(100, 20, 10, seed=19)
        _, store = train_with_capture(
            objective, features, labels, schedule, 0.01,
        )
        with pytest.raises(NotImplementedError):
            PrIUUpdater(store, features, labels).update([0])
