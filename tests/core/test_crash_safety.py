"""Crash-safety sweep for the durable checkpoint protocol.

The contract under test: a process killed at *any* instrumented fault
point of ``save_checkpoint`` leaves a directory that reloads to the
bit-exact pre-save or post-save state — never a torn mix — and the
recovered trainer's incremental answers still match retrain-from-scratch
at 1e-10 (the linear task is exact, so any corruption shows up as a hard
numeric miss, not tolerance noise).  Corrupted archives must be rejected
with :class:`CheckpointCorruptionError` — eagerly for members read into
memory, on first replay for memory-mapped plan members.
"""

import os
import shutil
import subprocess
import sys
import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    CheckpointCorruptionError,
    IncrementalTrainer,
    load_plan,
    load_store,
    recover_checkpoint,
    save_plan,
    save_store,
)
from repro.core.serialization import CHECKPOINT_JOURNAL, staged_path
from repro.datasets import make_regression
from repro.testing import (
    FaultInjector,
    SimulatedCrash,
    corrupt_npz_member,
    record_fault_points,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

DATA = make_regression(240, 6, noise=0.05, seed=31)
REMOVED = [3, 17, 42, 88, 120]
PROBE = [5, 61, 99]


def fit_linear():
    trainer = IncrementalTrainer(
        "linear",
        learning_rate=0.05,
        regularization=0.01,
        batch_size=25,
        n_iterations=40,
        seed=0,
        method="priu",
    )
    trainer.fit(DATA.features, DATA.labels)
    return trainer


def assert_answers_exact(trainer):
    incremental = trainer.remove(PROBE, method="priu").weights
    scratch = trainer.retrain(PROBE).weights
    np.testing.assert_allclose(incremental, scratch, atol=1e-10)


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """A committed-on-disk checkpoint plus its fitted weights."""
    directory = tmp_path_factory.mktemp("pristine") / "ckpt"
    trainer = fit_linear()
    trainer.save_checkpoint(directory)
    return directory, trainer.weights_.copy()


class TestCrashSweep:
    def test_every_crash_point_reloads_pre_or_post_state(
        self, pristine, tmp_path
    ):
        pristine_dir, w0 = pristine
        features, labels = DATA.features, DATA.labels

        # Enumerate the protocol's kill points on a throwaway copy.
        scratch = tmp_path / "scratch"
        shutil.copytree(pristine_dir, scratch)
        trainer = IncrementalTrainer.from_checkpoint(
            scratch, features, labels
        )
        trainer.remove(REMOVED, commit=True)
        points = record_fault_points(
            lambda: trainer.save_checkpoint(scratch)
        )
        w1 = trainer.weights_.copy()
        assert not np.array_equal(w0, w1)

        # The enumeration must span the whole protocol: durable member
        # writes, the journal commit point, and the rename replay.
        for expected in (
            "store.begin",
            "store.renamed",
            "plan.renamed",
            "journal.renamed",
            "commit.rename.store.npz",
            "commit.done",
        ):
            assert expected in points, points
        assert len(points) >= 12

        outcomes = set()
        for step, point in enumerate(points):
            work = tmp_path / f"work-{step}"
            shutil.copytree(pristine_dir, work)
            trainer = IncrementalTrainer.from_checkpoint(
                work, features, labels
            )
            trainer.remove(REMOVED, commit=True)
            assert np.array_equal(trainer.weights_, w1)

            with FaultInjector().crash_at_step(step).installed():
                with pytest.raises(SimulatedCrash):
                    trainer.save_checkpoint(work)

            # A "fresh process": reload from disk only, with the
            # *original* training data (the commit log picks survivors).
            reloaded = IncrementalTrainer.from_checkpoint(
                work, features, labels
            )
            weights = reloaded.weights_
            if np.array_equal(weights, w0):
                outcomes.add("pre")
            elif np.array_equal(weights, w1):
                outcomes.add("post")
            else:
                pytest.fail(
                    f"crash at {point!r} (step {step}) reloaded to "
                    "neither the pre- nor the post-commit state"
                )
            assert_answers_exact(reloaded)
            # Recovery settled the directory: no staging strays, no
            # journal, and the next save starts clean.
            assert not (work / CHECKPOINT_JOURNAL).exists()
            assert not list(work.glob("*.new")) and not list(
                work.glob("*.tmp")
            )

        # Both sides of the commit point must actually be exercised.
        assert outcomes == {"pre", "post"}

    def test_hard_exit_during_commit_rolls_forward(self, pristine, tmp_path):
        """A real no-cleanup death (``os._exit``) mid-commit, in a child
        process: the journal has landed, so recovery rolls forward."""
        pristine_dir, _w0 = pristine
        work = tmp_path / "work"
        shutil.copytree(pristine_dir, work)

        # The expected post-commit weights, computed independently.
        reference = IncrementalTrainer.from_checkpoint(
            work, DATA.features, DATA.labels
        )
        reference.remove(REMOVED, commit=True)
        w1 = reference.weights_.copy()

        child = f"""
import numpy as np
from repro.core import IncrementalTrainer
from repro.datasets import make_regression
from repro.testing import FaultInjector

data = make_regression(240, 6, noise=0.05, seed=31)
trainer = IncrementalTrainer.from_checkpoint(
    {str(work)!r}, data.features, data.labels
)
trainer.remove({REMOVED!r}, commit=True)
with FaultInjector().exit_at("commit.rename.*").installed():
    trainer.save_checkpoint({str(work)!r})
raise SystemExit("unreachable: exit_at should have killed the process")
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        result = subprocess.run(
            [sys.executable, "-c", child],
            env=env,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 42, result.stderr
        # The child died after the journal landed but before any rename:
        # the staged files and journal are still there.
        assert (work / CHECKPOINT_JOURNAL).exists()
        assert staged_path(work, "store.npz").exists()

        reloaded = IncrementalTrainer.from_checkpoint(
            work, DATA.features, DATA.labels
        )
        assert np.array_equal(reloaded.weights_, w1)
        assert not (work / CHECKPOINT_JOURNAL).exists()
        assert_answers_exact(reloaded)


def _largest_member(path):
    with zipfile.ZipFile(path) as archive:
        infos = [
            info
            for info in archive.infolist()
            if not info.filename.startswith("__")
        ]
    biggest = max(infos, key=lambda info: info.compress_size)
    return biggest.filename.removesuffix(".npy")


class TestCorruptionDetection:
    def test_corrupt_store_member_rejected(self, tmp_path):
        trainer = fit_linear()
        path = save_store(trainer.store, tmp_path / "store.npz")
        corrupt_npz_member(path, _largest_member(path))
        with pytest.raises(CheckpointCorruptionError):
            load_store(path)

    def test_corrupt_checkpoint_rejected_end_to_end(self, pristine, tmp_path):
        pristine_dir, _w0 = pristine
        work = tmp_path / "work"
        shutil.copytree(pristine_dir, work)
        store = work / "store.npz"
        corrupt_npz_member(store, _largest_member(store))
        with pytest.raises(CheckpointCorruptionError):
            IncrementalTrainer.from_checkpoint(
                work, DATA.features, DATA.labels
            )

    def test_corrupt_mmapped_plan_member_rejected_on_first_run(
        self, tmp_path
    ):
        trainer = fit_linear()
        store_path = save_store(trainer.store, tmp_path / "store.npz")
        plan_path = save_plan(
            trainer._plan, tmp_path / "plan.npz", weights=trainer.weights_
        )
        corrupt_npz_member(plan_path, "moments")

        store = load_store(store_path)
        # Mapping defers the integrity sweep: the load itself succeeds.
        plan = load_plan(
            plan_path, store, trainer.features, trainer.labels, mmap=True
        )
        assert isinstance(plan.moments, np.memmap)
        with pytest.raises(CheckpointCorruptionError):
            plan.run([[0, 3], [7]])
        # The failed check is not forgotten: replays keep refusing.
        with pytest.raises(CheckpointCorruptionError):
            plan.run([[0, 3], [7]])

    def test_corrupt_plan_member_rejected_eagerly_without_mmap(
        self, tmp_path
    ):
        trainer = fit_linear()
        store_path = save_store(trainer.store, tmp_path / "store.npz")
        plan_path = save_plan(
            trainer._plan, tmp_path / "plan.npz", weights=trainer.weights_
        )
        corrupt_npz_member(plan_path, "moments")
        store = load_store(store_path)
        with pytest.raises(CheckpointCorruptionError):
            load_plan(
                plan_path,
                store,
                trainer.features,
                trainer.labels,
                mmap=False,
            )


class TestJournalRecovery:
    def test_clean_directory_is_a_noop(self, tmp_path):
        assert recover_checkpoint(tmp_path) is None
        assert recover_checkpoint(tmp_path / "missing") is None

    def test_strays_without_journal_are_swept(self, tmp_path):
        (tmp_path / "store.npz").write_bytes(b"old-store")
        staged_path(tmp_path, "store.npz").write_bytes(b"new-store")
        (tmp_path / "plan.npz.tmp").write_bytes(b"half-written")

        assert recover_checkpoint(tmp_path) == "cleaned"
        assert (tmp_path / "store.npz").read_bytes() == b"old-store"
        assert not staged_path(tmp_path, "store.npz").exists()
        assert not (tmp_path / "plan.npz.tmp").exists()

    def test_journal_rolls_staged_members_forward(self, tmp_path):
        (tmp_path / "store.npz").write_bytes(b"old-store")
        (tmp_path / "plan.npz").write_bytes(b"old-plan")
        staged_path(tmp_path, "store.npz").write_bytes(b"new-store")
        staged_path(tmp_path, "plan.npz").write_bytes(b"new-plan")
        (tmp_path / CHECKPOINT_JOURNAL).write_text(
            "v1\nstore.npz\nplan.npz\n", encoding="utf-8"
        )

        assert recover_checkpoint(tmp_path) == "rolled-forward"
        assert (tmp_path / "store.npz").read_bytes() == b"new-store"
        assert (tmp_path / "plan.npz").read_bytes() == b"new-plan"
        assert not (tmp_path / CHECKPOINT_JOURNAL).exists()
        assert recover_checkpoint(tmp_path) is None

    def test_replay_is_idempotent_after_partial_rename(self, tmp_path):
        # Crash mid-replay: store.npz was already renamed, plan.npz was
        # not.  Recovery must finish the job without disturbing members
        # whose staged file is gone.
        (tmp_path / "store.npz").write_bytes(b"new-store")
        (tmp_path / "plan.npz").write_bytes(b"old-plan")
        staged_path(tmp_path, "plan.npz").write_bytes(b"new-plan")
        (tmp_path / CHECKPOINT_JOURNAL).write_text(
            "v1\nstore.npz\nplan.npz\n", encoding="utf-8"
        )

        assert recover_checkpoint(tmp_path) == "rolled-forward"
        assert (tmp_path / "store.npz").read_bytes() == b"new-store"
        assert (tmp_path / "plan.npz").read_bytes() == b"new-plan"
        assert not (tmp_path / CHECKPOINT_JOURNAL).exists()
