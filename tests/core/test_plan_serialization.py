"""Round-trip tests for compiled-plan persistence (save_plan / load_plan).

The contract is stricter than the store's: the reloaded plan's state must
be **bit-identical** (``np.array_equal`` plus dtype equality) to the
original's, and a *fresh process* loading store + plan must answer removal
queries identically to the in-process path.
"""

import io
import os
import subprocess
import sys
import zipfile
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    IncrementalTrainer,
    PlanCache,
    ReplayPlan,
    load_plan,
    load_store,
    save_plan,
    save_store,
)
from repro.core.serialization import (
    _mmap_npz_arrays,
    _parse_npy_header,
    _temp_beside,
    set_fault_hook,
)
from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def fit_trainer(task, data, **kwargs):
    defaults = dict(
        learning_rate=0.05,
        regularization=0.01,
        batch_size=25,
        n_iterations=40,
        seed=0,
    )
    defaults.update(kwargs)
    trainer = IncrementalTrainer(task, **defaults)
    trainer.fit(data.features, data.labels)
    return trainer


def roundtrip_plan(trainer, tmp_path, mmap=True):
    store_path = save_store(trainer.store, tmp_path / "store.npz")
    plan_path = save_plan(
        trainer._plan, tmp_path / "plan.npz", weights=trainer.weights_
    )
    store = load_store(store_path)
    return load_plan(
        plan_path, store, trainer.features, trainer.labels, mmap=mmap
    )


def assert_state_bit_identical(original: ReplayPlan, reloaded: ReplayPlan):
    state = original.state_arrays()
    restored = reloaded.state_arrays()
    assert state.keys() == restored.keys()
    for key in state:
        assert state[key].dtype == restored[key].dtype, key
        assert np.array_equal(state[key], restored[key]), key


CASES = {
    "linear-dense": ("linear", lambda: make_regression(200, 6, seed=11), {}),
    "linear-svd": (
        "linear",
        lambda: make_regression(220, 60, seed=12),
        {"batch_size": 15, "max_dense_params": 20},
    ),
    "binary-frozen": (
        "binary_logistic",
        lambda: make_binary_classification(260, 8, seed=13),
        {"learning_rate": 0.1, "freeze_fraction": 0.7},
    ),
    "multinomial": (
        "multinomial_logistic",
        lambda: make_multiclass_classification(260, 8, n_classes=3, seed=14),
        {"n_classes": 3},
    ),
    "sparse-binary": (
        "binary_logistic",
        lambda: make_sparse_binary_classification(
            260, 120, density=0.05, seed=15
        ),
        {},
    ),
}


# The representation each case must exercise: (plan kind, frozen state).
EXPECTED_SHAPE = {
    "linear-dense": ("dense", False),
    "linear-svd": ("svd", False),
    "binary-frozen": ("dense", True),
    "multinomial": ("dense", True),
    "sparse-binary": ("sparse", False),
}


@pytest.mark.parametrize("case", sorted(CASES))
class TestPlanRoundTrip:
    def test_state_bit_identical(self, case, tmp_path):
        task, make, kwargs = CASES[case]
        trainer = fit_trainer(task, make(), **kwargs)
        kind, frozen = EXPECTED_SHAPE[case]
        assert trainer._plan._kind == kind
        assert (trainer.store.frozen is not None) == frozen
        reloaded = roundtrip_plan(trainer, tmp_path)
        assert_state_bit_identical(trainer._plan, reloaded)

    def test_answers_match_in_process_plan(self, case, tmp_path):
        task, make, kwargs = CASES[case]
        trainer = fit_trainer(task, make(), **kwargs)
        reloaded = roundtrip_plan(trainer, tmp_path)
        removed = [1, 7, 19]
        expected = trainer._plan.run_single(removed)
        assert np.array_equal(reloaded.run_single(removed), expected)
        batch = [[0, 3], [5, 9, 30], [2]]
        assert np.array_equal(reloaded.run(batch), trainer._plan.run(batch))

    def test_final_weights_embedded(self, case, tmp_path):
        task, make, kwargs = CASES[case]
        trainer = fit_trainer(task, make(), **kwargs)
        reloaded = roundtrip_plan(trainer, tmp_path)
        assert reloaded.final_weights is not None
        assert np.array_equal(
            np.asarray(reloaded.final_weights), trainer.weights_
        )

    def test_roundtrip_without_mmap(self, case, tmp_path):
        task, make, kwargs = CASES[case]
        trainer = fit_trainer(task, make(), **kwargs)
        reloaded = roundtrip_plan(trainer, tmp_path, mmap=False)
        assert_state_bit_identical(trainer._plan, reloaded)
        assert not isinstance(reloaded.moments, np.memmap)


class TestMmapLoading:
    def test_large_arrays_are_memory_mapped(self, tmp_path):
        trainer = fit_trainer(
            "binary_logistic", make_binary_classification(260, 8, seed=13)
        )
        reloaded = roundtrip_plan(trainer, tmp_path, mmap=True)
        assert isinstance(reloaded.moments, np.memmap)
        assert isinstance(reloaded._slopes_flat, np.memmap)
        index = reloaded.store.packed_index()
        assert isinstance(index.samples, np.memmap)


class TestValidation:
    def test_version_check(self, tmp_path):
        trainer = fit_trainer("linear", make_regression(120, 5, seed=21))
        plan_path = save_plan(trainer._plan, tmp_path / "plan.npz")
        archive = dict(np.load(plan_path, allow_pickle=False))
        keys = [str(k) for k in archive["__plan_meta_keys__"]]
        values = archive["__plan_meta_values__"].copy()
        values[keys.index("format")] = "999"
        archive["__plan_meta_values__"] = values
        np.savez(plan_path, **archive)
        with pytest.raises(ValueError, match="version"):
            load_plan(
                plan_path, trainer.store, trainer.features, trainer.labels
            )

    def test_mismatched_store_rejected(self, tmp_path):
        trainer = fit_trainer("linear", make_regression(120, 5, seed=22))
        other = fit_trainer(
            "linear", make_regression(120, 5, seed=22), n_iterations=30
        )
        plan_path = save_plan(trainer._plan, tmp_path / "plan.npz")
        with pytest.raises(ValueError):
            load_plan(plan_path, other.store, other.features, other.labels)

    def test_mismatched_task_rejected(self, tmp_path):
        trainer = fit_trainer("linear", make_regression(120, 5, seed=23))
        other = fit_trainer(
            "binary_logistic", make_binary_classification(140, 5, seed=23)
        )
        plan_path = save_plan(trainer._plan, tmp_path / "plan.npz")
        with pytest.raises(ValueError, match="task"):
            load_plan(plan_path, other.store, other.features, other.labels)

    def test_mismatched_compression_kind_rejected(self, tmp_path):
        from repro.core import train_with_capture
        from repro.models import make_schedule, objective_for

        data = make_regression(220, 40, seed=25)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 20, seed=96)
        stores = {}
        for compression in ("svd", "none"):
            _, stores[compression] = train_with_capture(
                objective, data.features, data.labels, schedule, 0.01,
                compression=compression,
            )
        svd_plan = ReplayPlan(stores["svd"], data.features, data.labels)
        plan_path = save_plan(svd_plan, tmp_path / "plan.npz")
        # Same task/schedule/sample count, different summary representation.
        with pytest.raises(ValueError, match="summaries"):
            load_plan(plan_path, stores["none"], data.features, data.labels)

    def test_mismatched_hyperparameters_rejected(self, tmp_path):
        from repro.core import train_with_capture
        from repro.models import make_schedule, objective_for

        data = make_regression(150, 6, seed=26)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 20, seed=97)
        stores = {}
        for eta in (0.01, 0.02):
            _, stores[eta] = train_with_capture(
                objective, data.features, data.labels, schedule, eta,
            )
        plan = ReplayPlan(stores[0.01], data.features, data.labels)
        plan_path = save_plan(plan, tmp_path / "plan.npz")
        # Identical shapes everywhere; only the learning rate differs.
        with pytest.raises(ValueError, match="learning_rate"):
            load_plan(plan_path, stores[0.02], data.features, data.labels)

    def test_unsupported_plan_refuses_to_save(self, tmp_path):
        data = make_sparse_binary_classification(200, 80, density=0.05, seed=24)
        trainer = fit_trainer("binary_logistic", data)
        trainer._plan.supported = False  # simulate sparse-multinomial case
        with pytest.raises(ValueError, match="compiled state"):
            save_plan(trainer._plan, tmp_path / "plan.npz")


class TestTrainerCheckpoint:
    def test_checkpoint_roundtrip_serves_identically(self, tmp_path):
        data = make_binary_classification(260, 8, seed=31)
        trainer = fit_trainer(
            "binary_logistic", data, learning_rate=0.1, freeze_fraction=0.7
        )
        trainer.save_checkpoint(tmp_path)
        restored = IncrementalTrainer.from_checkpoint(
            tmp_path, data.features, data.labels
        )
        assert np.array_equal(restored.weights_, trainer.weights_)
        removed = [2, 9, 40]
        for method in ("priu", "priu-seq", "priu-opt"):
            assert np.array_equal(
                restored.remove(removed, method=method).weights,
                trainer.remove(removed, method=method).weights,
            ), method

    def test_checkpoint_without_plan_recovers_weights(self, tmp_path):
        data = make_regression(150, 6, seed=32)
        trainer = fit_trainer("linear", data)
        trainer.save_checkpoint(tmp_path, include_plan=False)
        assert not (tmp_path / "plan.npz").exists()
        restored = IncrementalTrainer.from_checkpoint(
            tmp_path, data.features, data.labels
        )
        # weights_ recovered by replaying the empty removal set.
        assert np.allclose(restored.weights_, trainer.weights_, atol=1e-10)
        assert np.array_equal(
            restored.remove([4], method="priu").weights,
            trainer.remove([4], method="priu").weights,
        )

    def test_wrong_training_data_rejected(self, tmp_path):
        data = make_regression(150, 6, seed=33)
        trainer = fit_trainer("linear", data)
        trainer.save_checkpoint(tmp_path)
        with pytest.raises(ValueError):
            IncrementalTrainer.from_checkpoint(
                tmp_path, data.features[:100], data.labels[:100]
            )


class TestCrossProcess:
    def test_fresh_process_answers_identically(self, tmp_path):
        """load_store + load_plan in a new interpreter == in-process path."""
        data = make_binary_classification(260, 8, seed=41)
        trainer = fit_trainer("binary_logistic", data, learning_rate=0.1)
        trainer.save_checkpoint(tmp_path)
        removed = np.array([3, 17, 99], dtype=np.int64)
        expected = trainer.remove(removed, method="priu").weights

        features_path = tmp_path / "features.npy"
        labels_path = tmp_path / "labels.npy"
        answer_path = tmp_path / "answer.npy"
        np.save(features_path, data.features)
        np.save(labels_path, data.labels)
        script = (
            "import numpy as np\n"
            "from repro.core import IncrementalTrainer\n"
            f"features = np.load({str(features_path)!r})\n"
            f"labels = np.load({str(labels_path)!r})\n"
            "trainer = IncrementalTrainer.from_checkpoint(\n"
            f"    {str(tmp_path)!r}, features, labels)\n"
            "outcome = trainer.remove([3, 17, 99], method='priu')\n"
            f"np.save({str(answer_path)!r}, outcome.weights)\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO_SRC)},
        )
        assert completed.returncode == 0, completed.stderr
        answer = np.load(answer_path)
        assert np.allclose(answer, expected, rtol=0, atol=1e-12)


# --------------------------------------------------------------------------
# .npy format versions: np.save silently upgrades 1.0 -> 2.0 (header dict
# over 65535 bytes) and -> 3.0 (utf-8 field names).  The byte-offset mmap
# loader must parse all three layouts (the v1 header-length field is
# uint16, v2/v3 is uint32) or it maps data two bytes short of where it is.
class TestNpyFormatVersions:
    def _archive(self, tmp_path, members):
        """A ZIP_STORED archive with explicit .npy format versions."""
        path = tmp_path / "versions.npz"
        with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
            for name, (array, version) in members.items():
                buffer = io.BytesIO()
                np.lib.format.write_array(buffer, array, version=version)
                archive.writestr(name + ".npy", buffer.getvalue())
        return path

    def test_parse_header_every_major_version(self, tmp_path):
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        for version in ((1, 0), (2, 0), (3, 0)):
            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, array, version=version)
            buffer.seek(0)
            parsed = _parse_npy_header(buffer)
            assert parsed is not None, version
            shape, fortran, dtype = parsed
            assert shape == (3, 4)
            assert not fortran
            assert dtype == np.float64
            # The handle sits at the first data byte: reading from here
            # reproduces the array, whatever the header layout was.
            data = np.frombuffer(
                buffer.read(array.nbytes), dtype=dtype
            ).reshape(shape)
            assert np.array_equal(data, array)

    def test_parse_header_rejects_unknown_major(self):
        buffer = io.BytesIO()
        np.lib.format.write_array(buffer, np.arange(3), version=(1, 0))
        raw = bytearray(buffer.getvalue())
        raw[6] = 9  # fake major version
        assert _parse_npy_header(io.BytesIO(bytes(raw))) is None

    def test_mmap_members_of_every_version(self, tmp_path):
        members = {
            "v1": (np.arange(20, dtype=np.int64).reshape(4, 5), (1, 0)),
            "v2": (np.linspace(0, 1, 30).reshape(5, 6), (2, 0)),
            "v3": (np.arange(8, dtype=np.float32), (3, 0)),
            "v2_fortran": (
                np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4)),
                (2, 0),
            ),
        }
        path = self._archive(tmp_path, members)
        mapped = _mmap_npz_arrays(path, list(members))
        assert sorted(mapped) == sorted(members)
        for name, (array, _) in members.items():
            assert isinstance(mapped[name], np.memmap), name
            assert mapped[name].dtype == array.dtype, name
            assert np.array_equal(mapped[name], array), name
        assert np.isfortran(mapped["v2_fortran"])

    def test_forced_v2_plan_serves_bit_identically(self, tmp_path):
        """Regression: a plan archive whose members carry 2.0 headers
        (as np.save emits for huge structured dtypes) must still be
        memory-mapped at the right offset and answer identically."""
        data = make_binary_classification(260, 8, seed=13)
        trainer = fit_trainer("binary_logistic", data, learning_rate=0.1)
        store_path = save_store(trainer.store, tmp_path / "store.npz")
        plan_path = save_plan(
            trainer._plan, tmp_path / "plan.npz", weights=trainer.weights_
        )
        # Rewrite every member with a forced 2.0 header, same content.
        with np.load(plan_path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        rewritten = tmp_path / "plan_v2.npz"
        with zipfile.ZipFile(rewritten, "w", zipfile.ZIP_STORED) as archive:
            for name, array in arrays.items():
                buffer = io.BytesIO()
                np.lib.format.write_array(buffer, array, version=(2, 0))
                archive.writestr(name + ".npy", buffer.getvalue())

        store = load_store(store_path)
        reloaded = load_plan(
            rewritten, store, trainer.features, trainer.labels, mmap=True
        )
        assert isinstance(reloaded.moments, np.memmap)
        assert_state_bit_identical(trainer._plan, reloaded)
        removed = np.array([3, 17, 42], dtype=np.int64)
        expected = trainer._plan.run_single(removed)
        assert np.array_equal(reloaded.run_single(removed), expected)


# --------------------------------------------------------------------------
# Durable-write staging: the temp file must be created in the destination
# directory — os.replace is only atomic within one filesystem, and a temp
# staged in $TMPDIR dies with EXDEV the moment /tmp is a different mount.
class TestDurableTempPlacement:
    def test_temp_beside_destination(self):
        path = Path("/some/volume/checkpoints/plan.npz")
        temp = _temp_beside(path)
        assert temp.parent == path.parent
        assert temp.name.startswith(path.name)

    def test_store_write_stages_in_destination_dir(
        self, tmp_path, monkeypatch
    ):
        scratch = tmp_path / "other-filesystem-scratch"
        scratch.mkdir()
        monkeypatch.setenv("TMPDIR", str(scratch))
        destination = tmp_path / "nested" / "store.npz"
        destination.parent.mkdir()
        staged = []

        def observe(event, path):
            if event.endswith("temp-written"):
                staged.append((Path(path), Path(path).exists()))

        previous = set_fault_hook(observe)
        try:
            data = make_regression(60, 4, seed=7)
            trainer = fit_trainer("linear", data, n_iterations=10)
            save_store(trainer.store, destination)
        finally:
            set_fault_hook(previous)
        assert staged, "durable write never announced its temp file"
        for temp, existed in staged:
            assert temp.parent == destination.parent
            assert existed
        assert destination.exists()
        assert not list(scratch.iterdir())  # $TMPDIR never touched


# --------------------------------------------------------------------------
# PlanCache: one canonical read-only mapping per (path, epoch).
class TestPlanCache:
    @pytest.fixture
    def plan_on_disk(self, tmp_path):
        data = make_binary_classification(260, 8, seed=13)
        trainer = fit_trainer("binary_logistic", data, learning_rate=0.1)
        trainer.save_checkpoint(tmp_path)
        return trainer, tmp_path

    def test_mappings_are_shared_per_epoch(self, plan_on_disk):
        trainer, directory = plan_on_disk
        cache = PlanCache()
        first = cache.mappings(directory / "plan.npz")
        second = cache.mappings(directory / "plan.npz")
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1
        assert any(isinstance(m, np.memmap) for m in first.values())

    def test_rewrite_is_a_new_epoch(self, plan_on_disk):
        trainer, directory = plan_on_disk
        plan_path = directory / "plan.npz"
        cache = PlanCache()
        before = cache.mappings(plan_path)
        old_epoch = PlanCache.epoch(plan_path)
        save_plan(trainer._plan, plan_path, weights=trainer.weights_)
        assert PlanCache.epoch(plan_path) != old_epoch  # atomic replace
        after = cache.mappings(plan_path)
        assert after is not before
        assert cache.misses == 2

    def test_warm_and_drop(self, plan_on_disk):
        _, directory = plan_on_disk
        plan_path = directory / "plan.npz"
        cache = PlanCache()
        mapped_bytes = cache.warm(plan_path, prefault=True)
        assert mapped_bytes > 0
        assert cache.misses == 1
        cache.drop(plan_path)
        cache.mappings(plan_path)
        assert cache.misses == 2

    def test_loads_through_one_cache_share_mappings(self, plan_on_disk):
        trainer, directory = plan_on_disk
        data_features, data_labels = trainer.features, trainer.labels
        cache = PlanCache()
        first = IncrementalTrainer.from_checkpoint(
            directory, data_features, data_labels, plan_cache=cache
        )
        second = IncrementalTrainer.from_checkpoint(
            directory, data_features, data_labels, plan_cache=cache
        )
        assert cache.misses == 1
        assert cache.hits >= 1
        # Both trainers read the very same mapping objects.
        assert first._plan.moments is second._plan.moments
        removed = np.array([5, 9], dtype=np.int64)
        assert np.array_equal(
            first.remove(removed, method="priu").weights,
            second.remove(removed, method="priu").weights,
        )
