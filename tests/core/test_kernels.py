"""Iteration-blocked replay kernel: blocked GEMMs ≡ per-iteration replay.

The contract under test: for every task × representation, a plan compiled
with block descriptors (``kernel_block_size >= 2``) answers every removal
query within atol 1e-10 of the per-iteration scalar path, and
``kernel_block_size <= 1`` *is* the scalar path bit-for-bit.  Block
boundaries are exercised where the grouping rules cut: uneven tails,
``freeze_at`` phase boundaries, SVD rank changes mid-run, and hits that
invalidate a block at serve time.  Commits rebuild dirty descriptors in
place; maintenance regroups; archives round-trip the descriptors through
``save_plan``/``load_plan`` including mmap mode.
"""

import numpy as np
import pytest

from repro import IncrementalTrainer
from repro.core import ReplayPlan, train_with_capture
from repro.core import kernels
from repro.core.replay_plan import _drop_rows
from repro.core.serialization import (
    load_plan,
    load_store,
    save_plan,
    save_store,
)
from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)
from repro.models import make_schedule, objective_for

ATOL = 1e-10


def _capture(task, compression, sparse=False, freeze_at=None, epsilon=0.01):
    rng = np.random.default_rng(11)
    if task == "linear":
        if sparse:
            data = make_sparse_binary_classification(
                260, 120, density=0.05, seed=61
            )
            features, labels = data.features, rng.standard_normal(260)
        else:
            data = make_regression(240, 12, noise=0.05, seed=62)
            features, labels = data.features, data.labels
        objective = objective_for("linear", 0.1)
    elif task == "binary_logistic":
        if sparse:
            data = make_sparse_binary_classification(
                300, 150, density=0.04, seed=63
            )
        else:
            data = make_binary_classification(
                280, 10, separation=1.0, seed=64
            )
        features, labels = data.features, data.labels
        objective = objective_for("binary_logistic", 0.05)
    else:
        data = make_multiclass_classification(300, 9, n_classes=3, seed=65)
        features, labels = data.features, data.labels
        objective = objective_for("multinomial_logistic", 0.05, n_classes=3)
    n = features.shape[0]
    schedule = make_schedule(n, 32, 60, seed=23)
    _, store = train_with_capture(
        objective, features, labels, schedule, 0.02,
        compression=compression, epsilon=epsilon, freeze_at=freeze_at,
    )
    return features, labels, store


def _random_sets(n_samples, rng, k=4, max_size=20):
    sets = [
        rng.choice(n_samples, size=rng.integers(1, max_size + 1), replace=False)
        for _ in range(k - 1)
    ]
    sets.append(np.empty(0, dtype=int))
    return sets


CASES = [
    ("linear", "none", False),
    ("linear", "svd", False),
    ("linear", "auto", True),
    ("binary_logistic", "none", False),
    ("binary_logistic", "svd", False),
    ("binary_logistic", "auto", True),
    ("multinomial_logistic", "none", False),
    ("multinomial_logistic", "svd", False),
]


class TestBlockedEqualsScalar:
    @pytest.mark.parametrize("task,compression,sparse", CASES)
    def test_blocked_matches_scalar_within_contract(
        self, task, compression, sparse
    ):
        features, labels, store = _capture(task, compression, sparse)
        blocked = ReplayPlan(store, features, labels)
        scalar = ReplayPlan(store, features, labels, kernel_block_size=1)
        rng = np.random.default_rng(41)
        sets = _random_sets(store.n_samples, rng)
        got = blocked.run(sets)
        want = scalar.run(sets)
        np.testing.assert_allclose(got, want, atol=ATOL, rtol=0.0)
        # A hit-free query (the empty set alone) fuses every descriptor;
        # the mixed sets above may legitimately invalidate all blocks at
        # this small n (every sample lands in ~15% of the batches).
        tally = ReplayPlan(store, features, labels)
        tally.run([np.empty(0, dtype=int)])
        stats = tally.kernel_stats()
        if compression == "svd" and not sparse:
            # Dense SVD plans get descriptors and actually fuse work.
            assert stats["blocks_compiled"] > 0
            assert (
                stats["fused_iterations"] == tally._kernel.fused_iterations()
            )
        else:
            # Dense-summary and sparse plans stay on the scalar path.
            assert stats["blocks_compiled"] == 0
            assert stats["fused_iterations"] == 0

    def test_block_size_one_is_bit_identical_to_legacy(self):
        features, labels, store = _capture("linear", "svd")
        plan_bs1 = ReplayPlan(store, features, labels, kernel_block_size=1)
        assert plan_bs1._kernel is None  # nothing compiled at all
        legacy = ReplayPlan(store, features, labels)
        legacy._kernel = None  # force the pre-kernel serve path
        rng = np.random.default_rng(42)
        sets = _random_sets(store.n_samples, rng)
        assert np.array_equal(plan_bs1.run(sets), legacy.run(sets))
        removed = np.arange(0, 40, 5)
        assert np.array_equal(
            plan_bs1.run_single(removed), legacy.run_single(removed)
        )

    @pytest.mark.parametrize("block_size", [2, 7, 13])
    def test_uneven_tail_blocks(self, block_size):
        """τ not divisible by the block size leaves a shorter tail run."""
        features, labels, store = _capture("binary_logistic", "svd")
        blocked = ReplayPlan(
            store, features, labels, kernel_block_size=block_size
        )
        assert blocked._kernel is not None
        spans = blocked._kernel.stops - blocked._kernel.starts
        assert spans.max() <= block_size
        # Descriptors never overlap and stay ordered.
        assert np.all(
            blocked._kernel.starts[1:] >= blocked._kernel.stops[:-1]
        )
        scalar = ReplayPlan(store, features, labels, kernel_block_size=1)
        rng = np.random.default_rng(43)
        sets = _random_sets(store.n_samples, rng)
        np.testing.assert_allclose(
            blocked.run(sets), scalar.run(sets), atol=ATOL, rtol=0.0
        )

    def test_rank_change_splits_blocks(self):
        """No descriptor spans an SVD rank change."""
        features, labels, store = _capture(
            "linear", "svd", epsilon=0.25  # aggressive truncation: ranks vary
        )
        plan = ReplayPlan(store, features, labels)
        assert plan._kernel is not None
        ranks = np.array([r.shape[1] for r in plan._rights])
        changes = np.flatnonzero(np.diff(ranks) != 0) + 1
        assert changes.size > 0, "fixture must exercise a rank change"
        for descriptor in plan._kernel.descriptors:
            inside = (changes > descriptor.start) & (changes < descriptor.stop)
            assert not inside.any(), (
                f"block [{descriptor.start}, {descriptor.stop}) spans a "
                f"rank change"
            )
        scalar = ReplayPlan(store, features, labels, kernel_block_size=1)
        rng = np.random.default_rng(44)
        sets = _random_sets(store.n_samples, rng)
        np.testing.assert_allclose(
            plan.run(sets), scalar.run(sets), atol=ATOL, rtol=0.0
        )

    def test_freeze_at_boundary_splits_blocks(self):
        """The PrIU-opt phase-1 stop never lands inside a block."""
        features, labels, store = _capture(
            "binary_logistic", "svd", freeze_at=0.5
        )
        assert store.frozen is not None
        t_s = int(store.frozen.t_s)
        plan = ReplayPlan(store, features, labels)
        assert plan._kernel is not None
        for descriptor in plan._kernel.descriptors:
            assert not (descriptor.start < t_s < descriptor.stop)
        scalar = ReplayPlan(store, features, labels, kernel_block_size=1)
        rng = np.random.default_rng(45)
        sets = _random_sets(store.n_samples, rng)
        np.testing.assert_allclose(
            plan.run(sets), scalar.run(sets), atol=ATOL, rtol=0.0
        )
        # Phase-1 replay stops exactly at the freeze point: blocks whose
        # span crosses t_s must not be applied past the stop.
        removed = np.arange(0, 25, 3)
        np.testing.assert_allclose(
            plan.run([removed], stop_at=t_s),
            scalar.run([removed], stop_at=t_s),
            atol=ATOL, rtol=0.0,
        )

    def test_hits_invalidate_blocks_at_serve_time(self):
        """A removal set touching a block's batches falls back to scalar."""
        features, labels, store = _capture("linear", "svd")
        plan = ReplayPlan(store, features, labels)
        assert plan._kernel is not None
        # Removing many samples guarantees hits across most iterations.
        removed = np.arange(0, store.n_samples, 2)
        scalar = ReplayPlan(store, features, labels, kernel_block_size=1)
        np.testing.assert_allclose(
            plan.run_single(removed), scalar.run_single(removed),
            atol=ATOL, rtol=0.0,
        )
        stats = plan.kernel_stats()
        assert stats["scalar_iterations"] > 0  # fallback actually taken


class TestKernelLifecycle:
    def _trainer(self, **extra):
        data = make_regression(300, 8, noise=0.05, seed=77)
        trainer = IncrementalTrainer(
            "linear", learning_rate=0.05, regularization=0.01,
            batch_size=6,  # below n_features: auto-compression picks SVD
            n_iterations=80, seed=0, method="priu", **extra,
        )
        trainer.fit(data.features, data.labels)
        return trainer

    def test_commit_rebuilds_only_dirty_blocks(self):
        trainer = self._trainer()
        plan = trainer._plan
        assert plan._kernel is not None
        n_blocks = len(plan._kernel)
        outcome = trainer.remove([3, 50, 120], method="priu")
        receipt = trainer.commit(outcome)
        assert receipt["mode"] == "refresh"
        assert 0 < receipt["kernel_blocks_rebuilt"] <= n_blocks
        # Post-commit, fresh queries still match the scalar path.
        scalar = ReplayPlan(
            trainer.store, trainer.features, trainer.labels,
            kernel_block_size=1,
        )
        removed = [5, 17, 40]
        np.testing.assert_allclose(
            trainer._plan.run_single(removed),
            scalar.run_single(removed),
            atol=ATOL, rtol=0.0,
        )

    def test_maintain_regroups_to_fresh_compile_layout(self):
        trainer = self._trainer()
        for batch in ([2, 9], [31, 77], [100, 151]):
            trainer.remove(batch, method="priu", commit=True)
        trainer.maintain()
        maintained = trainer._plan._kernel
        assert maintained is not None
        fresh = ReplayPlan(trainer.store, trainer.features, trainer.labels)
        assert np.array_equal(maintained.starts, fresh._kernel.starts)
        assert np.array_equal(maintained.stops, fresh._kernel.stops)
        removed = [4, 8, 15]
        np.testing.assert_allclose(
            trainer._plan.run_single(removed),
            fresh.run_single(removed),
            atol=ATOL, rtol=0.0,
        )

    def test_kernel_bytes_reported_separately_from_plan_nbytes(self):
        features, labels, store = _capture("linear", "svd")
        blocked = ReplayPlan(store, features, labels)
        scalar = ReplayPlan(store, features, labels, kernel_block_size=1)
        assert blocked.kernel_nbytes() > 0
        assert scalar.kernel_nbytes() == 0
        # The descriptors are derived state: maintained-vs-fresh nbytes
        # comparisons must not see them.
        assert blocked.nbytes() == scalar.nbytes()

    def test_kernel_stats_accumulate_across_runs(self):
        features, labels, store = _capture("linear", "svd")
        plan = ReplayPlan(store, features, labels)
        assert plan.kernel_stats()["fused_iterations"] == 0
        plan.run_single([1, 2])
        first = plan.kernel_stats()["fused_iterations"]
        assert first > 0
        plan.run_single([3])
        assert plan.kernel_stats()["fused_iterations"] > first


class TestKernelSerialization:
    @pytest.mark.parametrize("mmap", [False, True])
    def test_round_trip_preserves_block_layout_and_answers(
        self, tmp_path, mmap
    ):
        features, labels, store = _capture("linear", "svd")
        plan = ReplayPlan(store, features, labels)
        save_store(store, tmp_path / "store.npz")
        save_plan(plan, tmp_path / "plan.npz")
        reloaded_store = load_store(tmp_path / "store.npz")
        reloaded = load_plan(
            tmp_path / "plan.npz", reloaded_store, features, labels,
            mmap=mmap,
        )
        assert reloaded._kernel is not None
        assert np.array_equal(reloaded._kernel.starts, plan._kernel.starts)
        assert np.array_equal(reloaded._kernel.stops, plan._kernel.stops)
        for ours, theirs in zip(
            plan._kernel.descriptors, reloaded._kernel.descriptors
        ):
            # Same values *and* same layout: row-range views of the
            # archived stacks are C-contiguous like a fresh compile, so
            # BLAS reduces in the same order and answers stay bit-equal.
            assert np.array_equal(ours.left_t, theirs.left_t)
            assert theirs.left_t.flags["C_CONTIGUOUS"]
            assert theirs.right_t.flags["C_CONTIGUOUS"]
        removed = np.arange(0, 60, 7)
        assert np.array_equal(
            reloaded.run_single(removed), plan.run_single(removed)
        )

    def test_block_size_mismatch_recompiles(self, tmp_path):
        features, labels, store = _capture("linear", "svd")
        plan = ReplayPlan(store, features, labels)  # archives at default 16
        save_store(store, tmp_path / "store.npz")
        save_plan(plan, tmp_path / "plan.npz")
        reloaded_store = load_store(tmp_path / "store.npz")
        reloaded = load_plan(
            tmp_path / "plan.npz", reloaded_store, features, labels,
            kernel_block_size=5,
        )
        assert reloaded._kernel is not None
        assert reloaded._kernel.block_size == 5
        spans = reloaded._kernel.stops - reloaded._kernel.starts
        assert spans.max() <= 5
        removed = np.arange(0, 60, 7)
        np.testing.assert_allclose(
            reloaded.run_single(removed), plan.run_single(removed),
            atol=ATOL, rtol=0.0,
        )


class TestDropRows:
    def test_matches_np_delete_on_random_cases(self):
        rng = np.random.default_rng(9)
        for _ in range(200):
            n = int(rng.integers(1, 40))
            width = int(rng.integers(1, 5))
            arr = rng.standard_normal((n, width)) if width > 1 else (
                rng.standard_normal(n)
            )
            k = int(rng.integers(0, n + 1))
            dropped = np.sort(
                rng.choice(n, size=k, replace=False)
            ).astype(np.int64)
            got = _drop_rows(arr, dropped)
            want = np.delete(arr, dropped, axis=0)
            assert got.shape == want.shape
            assert np.array_equal(got, want)

    def test_all_rows_dropped(self):
        arr = np.arange(12.0).reshape(4, 3)
        got = _drop_rows(arr, np.arange(4, dtype=np.int64))
        assert got.shape == (0, 3)
