"""Batched multi-request updates: ReplayPlan == K sequential PrIU updates.

The contract under test: for any list of removal sets ``[S1..Sk]``,
``remove_many`` (and the underlying ``ReplayPlan.run`` / ``update_many``)
is numerically identical (atol 1e-10) to k sequential ``remove(Si)`` calls
through the uncompiled seed path — for all three tasks, dense and sparse,
with and without SVD compression and ``freeze_at``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    IncrementalTrainer,
    PrIUUpdater,
    ReplayPlan,
    train_with_capture,
)
from repro.core.provenance_store import normalize_removed_indices
from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)
from repro.linalg.eigen import gd_diagonal_recursion
from repro.models import make_schedule, objective_for

ATOL = 1e-10


def _random_sets(n_samples, rng, k=4, max_size=25):
    sets = [
        rng.choice(n_samples, size=rng.integers(1, max_size + 1), replace=False)
        for _ in range(k - 1)
    ]
    sets.append(np.empty(0, dtype=int))  # the no-op request rides along
    return sets


def _plan_case(task, compression, sparse=False, epsilon=0.01):
    rng = np.random.default_rng(7)
    if task == "linear":
        if sparse:
            data = make_sparse_binary_classification(260, 120, density=0.05, seed=51)
            features, labels = data.features, rng.standard_normal(260)
        else:
            data = make_regression(240, 12, noise=0.05, seed=52)
            features, labels = data.features, data.labels
        objective = objective_for("linear", 0.1)
    elif task == "binary_logistic":
        if sparse:
            data = make_sparse_binary_classification(300, 150, density=0.04, seed=53)
        else:
            data = make_binary_classification(280, 10, separation=1.0, seed=54)
        features, labels = data.features, data.labels
        objective = objective_for("binary_logistic", 0.05)
    else:
        data = make_multiclass_classification(300, 9, n_classes=3, seed=55)
        features, labels = data.features, data.labels
        objective = objective_for("multinomial_logistic", 0.05, n_classes=3)
    n = features.shape[0]
    schedule = make_schedule(n, 32, 60, seed=21)
    _, store = train_with_capture(
        objective, features, labels, schedule, 0.02,
        compression=compression, epsilon=epsilon,
    )
    return features, labels, store


DENSE_CASES = [
    ("linear", "none", False),
    ("linear", "svd", False),
    ("binary_logistic", "none", False),
    ("binary_logistic", "svd", False),
    ("multinomial_logistic", "none", False),
    ("multinomial_logistic", "svd", False),
]
SPARSE_CASES = [
    ("linear", "auto", True),
    ("binary_logistic", "auto", True),
]


class TestPlanMatchesSequential:
    @pytest.mark.parametrize("task,compression,sparse", DENSE_CASES + SPARSE_CASES)
    def test_run_equals_sequential_updates(self, task, compression, sparse):
        features, labels, store = _plan_case(task, compression, sparse)
        updater = PrIUUpdater(store, features, labels)
        plan = ReplayPlan(store, features, labels)
        rng = np.random.default_rng(31)
        sets = _random_sets(store.n_samples, rng)
        stacked = plan.run(sets)
        assert stacked.shape == (plan.n_params, len(sets))
        for k, removed in enumerate(sets):
            reference = updater.update(removed)
            np.testing.assert_allclose(
                stacked[:, k], reference, atol=ATOL,
                err_msg=f"{task} column {k} diverged from sequential update",
            )

    @pytest.mark.parametrize("task,compression,sparse", DENSE_CASES + SPARSE_CASES)
    def test_single_request_through_plan(self, task, compression, sparse):
        features, labels, store = _plan_case(task, compression, sparse)
        updater = PrIUUpdater(store, features, labels)
        plan = ReplayPlan(store, features, labels)
        removed = np.arange(0, 30, 3)
        np.testing.assert_allclose(
            plan.run_single(removed), updater.update(removed), atol=ATOL
        )

    def test_overlapping_and_duplicate_sets(self):
        features, labels, store = _plan_case("binary_logistic", "none")
        updater = PrIUUpdater(store, features, labels)
        plan = ReplayPlan(store, features, labels)
        sets = [[3, 1, 3, 5], [1, 3, 5], range(10), np.array([5, 3, 1])]
        stacked = plan.run(sets)
        # Duplicate-set columns agree exactly; all match the seed path.
        np.testing.assert_allclose(stacked[:, 1], stacked[:, 3], atol=0)
        for k, removed in enumerate(sets):
            np.testing.assert_allclose(
                stacked[:, k], updater.update(removed), atol=ATOL
            )

    def test_stop_at_and_start_weights(self):
        features, labels, store = _plan_case("binary_logistic", "none")
        updater = PrIUUpdater(store, features, labels)
        plan = ReplayPlan(store, features, labels)
        removed = [2, 4, 8]
        half = len(store) // 2
        partial = plan.run([removed], stop_at=half)
        np.testing.assert_allclose(
            partial[:, 0], updater.update(removed, stop_at=half), atol=ATOL
        )
        resumed = plan.run(
            [removed], start_weights=partial, start_iteration=half
        )
        np.testing.assert_allclose(
            resumed[:, 0], updater.update(removed), atol=ATOL
        )

    def test_whole_batch_removed_degenerates_to_shrinkage(self):
        """Deleting an entire mini-batch must replay the pure-shrink step."""
        features, labels, store = _plan_case("linear", "none")
        updater = PrIUUpdater(store, features, labels)
        plan = ReplayPlan(store, features, labels)
        removed = np.asarray(store.records[0].batch)  # wipes iteration 0
        np.testing.assert_allclose(
            plan.run_single(removed), updater.update(removed), atol=ATOL
        )

    def test_sparse_without_block_cache_matches(self):
        features, labels, store = _plan_case("binary_logistic", "auto", sparse=True)
        updater = PrIUUpdater(store, features, labels)
        plan = ReplayPlan(store, features, labels, cache_sparse_blocks=False)
        assert plan._blocks is None
        removed = [1, 7, 19]
        np.testing.assert_allclose(
            plan.run_single(removed), updater.update(removed), atol=ATOL
        )

    def test_stale_plan_rejected_after_store_mutation(self):
        features, labels, store = _plan_case("linear", "none")
        plan = ReplayPlan(store, features, labels)
        store.add(store.records[0])  # mutate after compilation
        with pytest.raises(RuntimeError):
            plan.run([[0]])
        # A fresh compile over the mutated store works again.
        fresh = ReplayPlan(store, features, labels)
        assert np.isfinite(fresh.run_single([0])).all()

    def test_rejects_deleting_everything(self):
        features, labels, store = _plan_case("linear", "none")
        plan = ReplayPlan(store, features, labels)
        with pytest.raises(ValueError):
            plan.run([np.arange(store.n_samples)])

    def test_sparse_multinomial_unsupported(self):
        from repro.core import ProvenanceStore

        data = make_sparse_binary_classification(120, 60, density=0.05, seed=77)
        labels = np.random.default_rng(0).integers(0, 3, size=data.n_samples)
        store = ProvenanceStore(
            task="multinomial_logistic",
            schedule=make_schedule(data.n_samples, 20, 10, seed=3),
            learning_rate=0.02,
            regularization=0.05,
            n_samples=data.n_samples,
            n_features=data.features.shape[1],
            n_classes=3,
            sparse_mode=True,
        )
        plan = ReplayPlan(store, data.features, labels)
        assert not plan.supported
        with pytest.raises(NotImplementedError):
            plan.run([[0]])


class TestTrainerRemoveMany:
    @pytest.fixture(scope="class")
    def trainers(self):
        built = {}
        rng = np.random.default_rng(11)
        lin = make_regression(260, 8, seed=61)
        built["linear"] = (
            IncrementalTrainer(
                "linear", learning_rate=0.01, regularization=0.1,
                batch_size=26, n_iterations=80, seed=1,
            ).fit(lin.features, lin.labels),
            rng,
        )
        binary = make_binary_classification(300, 9, seed=62)
        built["binary"] = (
            IncrementalTrainer(
                "binary_logistic", learning_rate=0.05, regularization=0.01,
                batch_size=30, n_iterations=90, seed=2,
            ).fit(binary.features, binary.labels),
            rng,
        )
        multi = make_multiclass_classification(330, 8, n_classes=3, seed=63)
        built["multinomial"] = (
            IncrementalTrainer(
                "multinomial_logistic", learning_rate=0.05,
                regularization=0.01, batch_size=30, n_iterations=70,
                n_classes=3, seed=3,
            ).fit(multi.features, multi.labels),
            rng,
        )
        sparse = make_sparse_binary_classification(320, 160, density=0.03, seed=64)
        built["sparse-binary"] = (
            IncrementalTrainer(
                "binary_logistic", learning_rate=0.05, regularization=0.05,
                batch_size=32, n_iterations=60, seed=4,
            ).fit(sparse.features, sparse.labels),
            rng,
        )
        return built

    @pytest.mark.parametrize(
        "name", ["linear", "binary", "multinomial", "sparse-binary"]
    )
    def test_remove_many_equals_sequential_seed_path(self, trainers, name):
        trainer, rng = trainers[name]
        sets = _random_sets(trainer.store.n_samples, rng, k=5)
        outcomes = trainer.remove_many(sets, method="priu")
        assert len(outcomes) == len(sets)
        for outcome, removed in zip(outcomes, sets):
            reference = trainer.remove(removed, method="priu-seq")
            np.testing.assert_allclose(
                outcome.weights, reference.weights, atol=ATOL
            )
            assert outcome.method == "priu"
            assert np.array_equal(
                outcome.removed, np.unique(np.asarray(removed, dtype=int))
            )

    @pytest.mark.parametrize("name", ["linear", "binary", "multinomial"])
    def test_remove_many_priu_opt_equals_sequential_opt(self, trainers, name):
        """freeze_at / eigen-tail path: batched == sequential PrIU-opt."""
        trainer, rng = trainers[name]
        if trainer._opt is None:
            pytest.skip("PrIU-opt unavailable for this configuration")
        sets = _random_sets(trainer.store.n_samples, rng, k=4)
        outcomes = trainer.remove_many(sets, method="priu-opt")
        for outcome, removed in zip(outcomes, sets):
            reference = trainer._opt.update(
                normalize_removed_indices(removed)
            )
            np.testing.assert_allclose(outcome.weights, reference, atol=ATOL)

    def test_remove_many_empty(self, trainers):
        trainer, _ = trainers["linear"]
        assert trainer.remove_many([]) == []

    def test_remove_single_routes_through_plan(self, trainers):
        trainer, _ = trainers["binary"]
        removed = [4, 9, 44]
        via_plan = trainer.remove(removed, method="priu")
        via_seed = trainer.remove(removed, method="priu-seq")
        np.testing.assert_allclose(
            via_plan.weights, via_seed.weights, atol=ATOL
        )


class TestBatchedOptTail:
    def test_gd_diagonal_recursion_broadcasts_over_columns(self):
        rng = np.random.default_rng(5)
        m, k = 7, 4
        eigenvalues = rng.uniform(0.1, 5.0, size=(m, k))
        initial = rng.standard_normal(m)
        bias = rng.standard_normal((m, k))
        n_samples = rng.integers(50, 200, size=k).astype(float)
        batched = gd_diagonal_recursion(
            eigenvalues, initial[:, None], bias, n_samples=n_samples,
            n_iterations=40, learning_rate=0.01, regularization=0.05,
        )
        for j in range(k):
            single = gd_diagonal_recursion(
                eigenvalues[:, j], initial, bias[:, j],
                n_samples=float(n_samples[j]), n_iterations=40,
                learning_rate=0.01, regularization=0.05,
            )
            np.testing.assert_allclose(batched[:, j], single, atol=1e-14)


# One shared fitted run for the hypothesis sweep (linear, exact replay).
_HYP_DATA = make_regression(90, 5, noise=0.05, seed=181)
_HYP_OBJECTIVE = objective_for("linear", 0.1)
_HYP_SCHEDULE = make_schedule(_HYP_DATA.n_samples, 12, 35, seed=9)
_HYP_RESULT, _HYP_STORE = train_with_capture(
    _HYP_OBJECTIVE, _HYP_DATA.features, _HYP_DATA.labels, _HYP_SCHEDULE, 0.02,
)
_HYP_UPDATER = PrIUUpdater(_HYP_STORE, _HYP_DATA.features, _HYP_DATA.labels)
_HYP_PLAN = ReplayPlan(_HYP_STORE, _HYP_DATA.features, _HYP_DATA.labels)


@st.composite
def removal_set_lists(draw):
    one_set = st.lists(
        st.integers(min_value=0, max_value=_HYP_DATA.n_samples - 1),
        max_size=15,
        unique=True,
    )
    return draw(st.lists(one_set, min_size=1, max_size=5))


class TestBatchedProperties:
    @settings(max_examples=30, deadline=None)
    @given(removal_set_lists())
    def test_any_batch_equals_sequential(self, sets):
        stacked = _HYP_PLAN.run(sets)
        for k, removed in enumerate(sets):
            np.testing.assert_allclose(
                stacked[:, k], _HYP_UPDATER.update(removed), atol=ATOL
            )

    @settings(max_examples=20, deadline=None)
    @given(removal_set_lists())
    def test_column_order_irrelevant(self, sets):
        forward = _HYP_PLAN.run(sets)
        backward = _HYP_PLAN.run(sets[::-1])
        np.testing.assert_allclose(
            forward, backward[:, ::-1], atol=1e-12
        )
