"""PrIU for linear regression: exactness against BaseL (Eq. 13/14)."""

import numpy as np
import pytest

from repro.core import PrIUUpdater, train_with_capture
from repro.datasets import make_regression
from repro.models import make_schedule, objective_for, train


@pytest.fixture(scope="module")
def setup():
    data = make_regression(500, 10, noise=0.05, seed=81)
    objective = objective_for("linear", 0.1)
    schedule = make_schedule(data.n_samples, 50, 150, seed=9)
    result, store = train_with_capture(
        objective, data.features, data.labels, schedule, 0.01,
        compression="none",
    )
    return data, objective, schedule, result, store


class TestExactness:
    def test_no_deletion_replays_original(self, setup):
        data, objective, schedule, result, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        assert np.allclose(updater.update([]), result.weights, atol=1e-12)

    @pytest.mark.parametrize("removed", [[0], [3, 100, 200], list(range(40))])
    def test_deletion_equals_basel_exactly(self, setup, removed):
        data, objective, schedule, result, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        retrained = train(
            objective, data.features, data.labels, schedule, 0.01,
            exclude=set(removed),
        )
        assert np.allclose(updater.update(removed), retrained.weights, atol=1e-9)

    def test_duplicate_removal_ids_deduplicated(self, setup):
        data, objective, schedule, result, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        assert np.allclose(
            updater.update([5, 5, 5, 9]), updater.update([5, 9]), atol=1e-12
        )

    def test_update_does_not_mutate_store(self, setup):
        data, objective, schedule, result, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        before = [record.moment.copy() for record in store.records]
        updater.update(list(range(30)))
        for snapshot, record in zip(before, store.records):
            assert np.array_equal(snapshot, record.moment)

    def test_sequential_updates_independent(self, setup):
        """Repeated deletions of different subsets don't interfere."""
        data, objective, schedule, result, store = setup
        updater = PrIUUpdater(store, data.features, data.labels)
        first = updater.update([1, 2, 3])
        second = updater.update([10, 20])
        first_again = updater.update([1, 2, 3])
        assert np.allclose(first, first_again, atol=1e-14)
        assert not np.allclose(first, second)


class TestSVDCompression:
    def test_tight_epsilon_is_near_exact(self):
        data = make_regression(300, 40, seed=82)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 20, 100, seed=3)  # B < m
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
            compression="svd", epsilon=1e-12,
        )
        retrained = train(
            objective, data.features, data.labels, schedule, 0.01,
            exclude=set(range(15)),
        )
        updater = PrIUUpdater(store, data.features, data.labels)
        assert np.allclose(
            updater.update(range(15)), retrained.weights, atol=1e-6
        )

    def test_loose_epsilon_bounded_deviation(self):
        """Theorem 6: ε-truncation deviates O(ε)."""
        data = make_regression(300, 40, seed=83)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 20, 100, seed=3)
        removed = list(range(10))
        retrained = train(
            objective, data.features, data.labels, schedule, 0.01,
            exclude=set(removed),
        )
        deviations = []
        for epsilon in (0.3, 0.01):
            _, store = train_with_capture(
                objective, data.features, data.labels, schedule, 0.01,
                compression="svd", epsilon=epsilon,
            )
            updater = PrIUUpdater(store, data.features, data.labels)
            deviations.append(
                np.linalg.norm(updater.update(removed) - retrained.weights)
            )
        # Tighter epsilon -> smaller deviation.
        assert deviations[1] <= deviations[0]
        assert deviations[1] < 0.05 * max(1.0, np.linalg.norm(retrained.weights))

    def test_svd_ranks_bounded_by_batch(self):
        data = make_regression(200, 60, seed=84)
        objective = objective_for("linear", 0.0)
        schedule = make_schedule(data.n_samples, 10, 30, seed=4)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
            compression="svd",
        )
        from repro.linalg import TruncatedSummary

        for record in store.records:
            assert isinstance(record.summary, TruncatedSummary)
            assert record.summary.rank <= 10


class TestAutoCompression:
    def test_small_m_stays_dense(self):
        data = make_regression(100, 5, seed=85)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 25, 10, seed=5)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        assert store.compression == "none"
        assert isinstance(store.records[0].summary, np.ndarray)

    def test_large_m_compresses(self):
        data = make_regression(100, 50, seed=86)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 10, seed=5)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        assert store.compression == "svd"
