"""Plan maintenance: bounded state under commit churn (ISSUE 5 tentpole).

The acceptance property: after ≥50 commits with interleaved maintenance
(all 3 tasks × dense/SVD/sparse), plan nbytes and SVD factor widths are
*bounded* — re-pack returns the plan to a freshly compiled footprint and
re-truncation caps factor widths at the operator's numerical rank — while
served answers keep matching a never-maintained reference at atol 1e-10.
Around that sit unit tests for the accounting (`MaintenanceCost`), the
policy thresholds, lazy PrIU-opt eigen refresh, audit receipts, and the
checkpoint round-trip of maintained *and* still-dirty state.
"""

import numpy as np
import pytest

from repro import IncrementalTrainer, MaintenancePolicy
from repro.core.maintenance import MaintenanceCost
from repro.core.provenance_store import remap_surviving_ids
from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)

ATOL = 1e-10

_DATASETS = {
    "linear": make_regression(300, 8, noise=0.05, seed=181),
    "binary_logistic": make_binary_classification(300, 10, separation=1.0, seed=182),
    "multinomial_logistic": make_multiclass_classification(
        330, 12, n_classes=3, seed=183
    ),
}
_SPARSE = make_sparse_binary_classification(400, 120, density=0.05, seed=184)

CONFIGS = [
    ("linear", "dense", dict(batch_size=40)),
    ("linear", "svd", dict(batch_size=6)),
    ("binary_logistic", "dense", dict(batch_size=40)),
    ("binary_logistic", "svd", dict(batch_size=8)),
    ("multinomial_logistic", "dense", dict(batch_size=40)),
    ("multinomial_logistic", "svd", dict(batch_size=8)),
    ("linear", "sparse", dict(batch_size=40)),
    ("binary_logistic", "sparse", dict(batch_size=40)),
]


def _fit(task: str, rep: str, overrides: dict, **extra) -> IncrementalTrainer:
    data = _SPARSE if rep == "sparse" else _DATASETS[task]
    kwargs = dict(
        learning_rate=0.05,
        regularization=0.01,
        batch_size=40,
        n_iterations=80,
        seed=0,
        method="priu",
        n_classes=3 if task == "multinomial_logistic" else None,
        plan_refresh_threshold=1.0,  # always the incremental refresh path
    )
    kwargs.update(overrides)
    kwargs.update(extra)
    trainer = IncrementalTrainer(task, **kwargs)
    trainer.fit(data.features, data.labels)
    return trainer


def _churn(trainer, rng, n_commits, maintain_every=None, per_commit=2):
    """Commit `n_commits` random small batches, optionally maintaining."""
    for i in range(n_commits):
        ids = np.sort(
            rng.choice(trainer.n_samples, size=per_commit, replace=False)
        )
        trainer.remove(ids, method="priu", commit=True)
        if maintain_every is not None and (i + 1) % maintain_every == 0:
            trainer.maintain()


# -------------------------------------------------------------- accounting
class TestMaintenanceCost:
    def test_fresh_trainer_is_clean(self):
        trainer = _fit("multinomial_logistic", "svd", dict(batch_size=8))
        cost = trainer.maintenance_cost()
        assert cost.clean
        assert cost.slot_garbage_rows == 0
        assert cost.svd_correction_columns == 0
        assert cost.stale_eigen == 0

    def test_commits_accumulate_garbage(self):
        trainer = _fit("multinomial_logistic", "svd", dict(batch_size=8))
        rng = np.random.default_rng(0)
        _churn(trainer, rng, n_commits=5)
        cost = trainer.maintenance_cost()
        assert cost.slot_garbage_rows > 0  # multinomial slot map grew
        assert cost.svd_correction_columns > 0  # SVD factors widened
        assert cost.svd_widened_summaries > 0
        assert 0.0 < cost.slot_garbage_fraction < 1.0
        assert not cost.clean

    def test_binary_commits_widen_svd_but_leave_no_slot_garbage(self):
        trainer = _fit("binary_logistic", "svd", dict(batch_size=8))
        rng = np.random.default_rng(1)
        _churn(trainer, rng, n_commits=4)
        cost = trainer.maintenance_cost()
        assert cost.slot_garbage_rows == 0  # binary flats compact physically
        assert cost.svd_correction_columns > 0

    def test_cost_dict_round_trips_fields(self):
        cost = MaintenanceCost(
            slot_garbage_rows=3, slot_physical_rows=10,
            svd_correction_columns=7, svd_max_correction_columns=4,
            svd_widened_summaries=2, stale_eigen=1,
            plan_nbytes=100, store_nbytes=200,
        )
        data = cost.as_dict()
        assert data["slot_garbage_fraction"] == pytest.approx(0.3)
        assert data["stale_eigen"] == 1 and not cost.clean


class TestMaintenancePolicyThresholds:
    def test_zero_thresholds_mark_everything_due(self):
        cost = MaintenanceCost(
            slot_garbage_rows=1, slot_physical_rows=10,
            svd_correction_columns=1, svd_max_correction_columns=1,
            svd_widened_summaries=1, stale_eigen=1,
        )
        assert MaintenancePolicy().due(cost) == ("svd", "repack", "eigen")

    def test_thresholds_gate_each_task(self):
        cost = MaintenanceCost(
            slot_garbage_rows=5, slot_physical_rows=100,
            svd_correction_columns=8, svd_max_correction_columns=4,
            svd_widened_summaries=2, stale_eigen=1,
        )
        policy = MaintenancePolicy(
            max_slot_garbage_rows=10,  # 5 <= 10: repack not due
            max_svd_correction_columns=4,  # 4 <= 4: svd not due
            refresh_stale_eigen=False,
        )
        assert policy.due(cost) == ()
        assert MaintenancePolicy(max_slot_garbage_fraction=0.10).due(cost) == (
            "svd",
            "eigen",
        )  # garbage fraction 0.05 below the 10% bar

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            MaintenancePolicy(max_slot_garbage_rows=-1)
        with pytest.raises(ValueError):
            MaintenancePolicy(max_slot_garbage_fraction=1.5)
        with pytest.raises(ValueError):
            MaintenancePolicy(svd_epsilon=-0.1)
        with pytest.raises(ValueError):
            MaintenancePolicy(eigen_correction_limit=-2)


# ------------------------------------------------------------------ repack
class TestRepack:
    def test_repack_is_bit_identical_and_frees_bytes(self):
        # batch_size 40 > n_features keeps the summaries genuinely dense
        # (smaller batches auto-compress to SVD, whose re-truncation is
        # machine-precision rather than bit-exact).
        trainer = _fit("multinomial_logistic", "dense", dict(batch_size=40))
        rng = np.random.default_rng(2)
        _churn(trainer, rng, n_commits=6)
        cost = trainer.maintenance_cost()
        assert cost.slot_garbage_rows > 0
        probe = np.arange(5, dtype=np.int64)
        before = trainer.remove(probe, method="priu").weights
        bytes_before = trainer.plan_nbytes()
        report = trainer.maintain(
            MaintenancePolicy(refresh_stale_eigen=False)
        )
        assert "repack" in report.performed
        assert report.repack["garbage_rows"] == cost.slot_garbage_rows
        assert report.repack["bytes_freed"] > 0
        assert trainer.plan_nbytes() < bytes_before
        after = trainer.remove(probe, method="priu").weights
        assert np.array_equal(before, after)  # bit-identical, not allclose
        assert trainer.maintenance_cost().slot_garbage_rows == 0

    def test_repacked_plan_matches_recompiled_footprint(self):
        maintained = _fit("multinomial_logistic", "dense", dict(batch_size=40))
        recompiled = _fit(
            "multinomial_logistic", "dense", dict(batch_size=40),
            plan_refresh_threshold=-1.0,  # force recompile on every commit
        )
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        _churn(maintained, rng_a, n_commits=5)
        _churn(recompiled, rng_b, n_commits=5)
        maintained.maintain()
        assert maintained.plan_nbytes() == recompiled.plan_nbytes()


# ------------------------------------------------------------- retruncation
class TestSvdRetruncation:
    def test_exact_retruncation_bounds_widths_and_preserves_answers(self):
        trainer = _fit("binary_logistic", "svd", dict(batch_size=8))
        rng = np.random.default_rng(4)
        _churn(trainer, rng, n_commits=6)
        widths_before = [
            r.summary.rank for r in trainer.store.records if r.summary is not None
        ]
        probe = np.arange(4, dtype=np.int64)
        before = trainer.remove(probe, method="priu").weights
        report = trainer.maintain()
        assert "svd" in report.performed
        assert report.svd["summaries"] > 0
        assert report.svd["columns_after"] < report.svd["columns_before"]
        # Exact mode: the dropped tail is numerically zero.
        assert report.svd["max_relative_error"] < 1e-12
        widths_after = [
            r.summary.rank for r in trainer.store.records if r.summary is not None
        ]
        assert max(widths_after) <= max(widths_before)
        # Width is capped by the operator's rank bound: the (remaining)
        # batch rows span it, so rank <= batch size + epsilon leakage.
        m = trainer.store.n_features
        assert max(widths_after) <= m
        after = trainer.remove(probe, method="priu").weights
        np.testing.assert_allclose(after, before, atol=ATOL, rtol=0.0)

    def test_lossy_epsilon_shrinks_more_and_surfaces_bound(self):
        exact = _fit("binary_logistic", "svd", dict(batch_size=8))
        lossy = _fit("binary_logistic", "svd", dict(batch_size=8))
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        _churn(exact, rng_a, n_commits=5)
        _churn(lossy, rng_b, n_commits=5)
        exact_report = exact.maintain()
        lossy_report = lossy.maintain(
            MaintenancePolicy(svd_epsilon=lossy.epsilon)
        )
        assert (
            lossy_report.svd["columns_after"]
            <= exact_report.svd["columns_after"]
        )
        # The lossy bound is real and reported; the answers stay within
        # the paper's O(epsilon) envelope.
        assert lossy_report.svd["max_error_bound"] >= 0.0
        probe = np.arange(4, dtype=np.int64)
        dev = np.max(
            np.abs(
                lossy.remove(probe, method="priu").weights
                - exact.remove(probe, method="priu").weights
            )
        )
        assert dev < 0.05

    def test_incremental_and_full_retruncation_agree(self):
        """svd_incremental=True folds few appended columns into the
        retained factors; answers match the forced-full path at the
        commit contract and the receipt says which path each took."""
        fast = _fit("binary_logistic", "svd", dict(batch_size=8))
        slow = _fit("binary_logistic", "svd", dict(batch_size=8))
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        _churn(fast, rng_a, n_commits=2)
        _churn(slow, rng_b, n_commits=2)
        fast_report = fast.maintain()  # default policy: incremental on
        slow_report = slow.maintain(MaintenancePolicy(svd_incremental=False))
        assert fast_report.svd["incremental_updates"] > 0
        assert slow_report.svd["incremental_updates"] == 0
        assert slow_report.svd["full_updates"] == slow_report.svd["summaries"]
        assert (
            fast_report.svd["incremental_updates"]
            + fast_report.svd["full_updates"]
            == fast_report.svd["summaries"]
        )
        assert fast_report.svd["columns_after"] == (
            slow_report.svd["columns_after"]
        )
        probe = np.arange(5, dtype=np.int64)
        np.testing.assert_allclose(
            fast.remove(probe, method="priu").weights,
            slow.remove(probe, method="priu").weights,
            atol=ATOL, rtol=0.0,
        )

    def test_plan_resyncs_and_keeps_matching_uncompiled_path(self):
        trainer = _fit("multinomial_logistic", "svd", dict(batch_size=8))
        rng = np.random.default_rng(6)
        _churn(trainer, rng, n_commits=4)
        trainer.maintain()
        probe = np.arange(6, dtype=np.int64)
        via_plan = trainer.remove(probe, method="priu").weights
        via_seq = trainer.remove(probe, method="priu-seq").weights
        np.testing.assert_allclose(via_plan, via_seq, atol=ATOL, rtol=0.0)


# --------------------------------------------------------------- lazy eigen
class TestLazyEigen:
    def test_linear_commit_defers_then_refreshes_exactly(self):
        trainer = _fit("linear", "dense", dict(batch_size=40), method="auto")
        assert trainer._opt is not None
        trainer.remove([3, 17], method="priu", commit=True)
        assert trainer._opt.eigen_stale
        assert trainer.maintenance_cost().stale_eigen == 1
        # The lazy refresh recomputes from the exactly-downdated gram, so
        # the answer matches an eager from-scratch updater.
        got = trainer.remove([5, 6], method="priu-opt").weights
        assert not trainer._opt.eigen_stale
        from repro.core.priu_opt import PrIUOptLinearUpdater

        eager = PrIUOptLinearUpdater(
            trainer.features, trainer.labels, trainer.n_iterations,
            trainer.learning_rate, trainer.regularization,
        )
        np.testing.assert_allclose(
            got, eager.update([5, 6]), atol=1e-8, rtol=0.0
        )

    def test_logistic_commit_defers_frozen_eigen(self):
        trainer = _fit(
            "binary_logistic", "dense", dict(batch_size=40), method="auto"
        )
        assert trainer._opt is not None
        trainer.remove([3, 40, 90], method="priu", commit=True)
        frozen = trainer.store.frozen
        assert frozen.eigen_stale
        assert frozen.pending_rows is not None
        assert trainer.maintenance_cost().stale_eigen == 1
        exact = trainer.remove([5, 6], method="priu").weights
        approx = trainer.remove([5, 6], method="priu-opt").weights
        assert not frozen.eigen_stale  # first opt update discharged it
        assert frozen.pending_rows is None
        assert float(np.max(np.abs(exact - approx))) < 0.05

    def test_maintain_discharges_eigen_without_a_query(self):
        trainer = _fit(
            "binary_logistic", "dense", dict(batch_size=40), method="auto"
        )
        trainer.remove([3, 40], method="priu", commit=True)
        report = trainer.maintain()
        assert "eigen" in report.performed
        assert report.eigen["refreshed"].get("opt") == "recompute"
        assert not trainer.store.frozen.eigen_stale
        assert trainer.maintenance_cost().stale_eigen == 0

    def test_correction_mode_used_below_limit_and_stays_in_envelope(self):
        exact = _fit(
            "binary_logistic", "dense", dict(batch_size=40), method="auto"
        )
        corrected = _fit(
            "binary_logistic", "dense", dict(batch_size=40), method="auto",
            eigen_correction_limit=8,
        )
        exact.remove([7, 8], method="priu", commit=True)
        corrected.remove([7, 8], method="priu", commit=True)
        exact_report = exact.maintain()
        corrected_report = corrected.maintain(
            MaintenancePolicy(eigen_correction_limit=8)
        )
        assert exact_report.eigen["refreshed"]["opt"] == "recompute"
        assert corrected_report.eigen["refreshed"]["opt"] == "correction"
        probe = [11, 12]
        dev = np.max(
            np.abs(
                exact.remove(probe, method="priu-opt").weights
                - corrected.remove(probe, method="priu-opt").weights
            )
        )
        assert dev < 0.05  # same approximation family, close results


# ---------------------------------------------------------------- receipts
class TestCommitReceipts:
    def test_receipts_record_ids_versions_and_clock_timestamps(self):
        class TickClock:
            def __init__(self):
                self.t = 100.0

            def now(self):
                self.t += 1.0
                return self.t

        trainer = _fit("linear", "dense", dict(batch_size=40), clock=TickClock())
        n0 = trainer.n_samples
        assert trainer.commit_receipts == ()
        trainer.remove([4, 9], method="priu", commit=True)
        trainer.remove([2], method="priu", commit=True)
        receipts = trainer.commit_receipts
        assert [r.index for r in receipts] == [0, 1]
        assert np.array_equal(receipts[0].removed_original_ids, [4, 9])
        # The second commit's ids are original-space: id 2 survived the
        # first commit unshifted (4 and 9 are above it).
        assert np.array_equal(receipts[1].removed_original_ids, [2])
        assert receipts[0].n_samples_before == n0
        assert receipts[0].n_samples_after == n0 - 2
        assert receipts[1].n_samples_after == n0 - 3
        assert receipts[1].timestamp > receipts[0].timestamp >= 101.0
        # Receipt slices tile the deletion log exactly.
        log = trainer.deletion_log
        for receipt in receipts:
            assert np.array_equal(
                log[receipt.log_start:receipt.log_end],
                receipt.removed_original_ids,
            )
        assert receipts[0].as_dict()["removed_original_ids"] == [4, 9]

    def test_receipts_shift_into_original_space(self):
        trainer = _fit("linear", "dense", dict(batch_size=40))
        trainer.remove([0, 1], method="priu", commit=True)
        # Post-commit id 0 is original id 2.
        trainer.remove([0], method="priu", commit=True)
        assert np.array_equal(
            trainer.commit_receipts[1].removed_original_ids, [2]
        )


# ------------------------------------------------------------- round trips
@pytest.mark.parametrize(
    "task,rep,overrides",
    [
        ("binary_logistic", "svd", dict(batch_size=8)),
        ("multinomial_logistic", "svd", dict(batch_size=8)),
        ("linear", "sparse", dict(batch_size=40)),
    ],
)
class TestMaintenanceCheckpoint:
    def test_maintained_state_round_trips(self, task, rep, overrides, tmp_path):
        data = _SPARSE if rep == "sparse" else _DATASETS[task]
        trainer = _fit(task, rep, overrides)
        rng = np.random.default_rng(7)
        _churn(trainer, rng, n_commits=4, maintain_every=2)
        trainer.maintain()
        trainer.save_checkpoint(tmp_path)
        reloaded = IncrementalTrainer.from_checkpoint(
            tmp_path, data.features, data.labels
        )
        # Receipts (the GDPR evidence trail) survive the round trip.
        assert len(reloaded.commit_receipts) == len(trainer.commit_receipts)
        for got, want in zip(reloaded.commit_receipts, trainer.commit_receipts):
            assert np.array_equal(
                got.removed_original_ids, want.removed_original_ids
            )
            assert got.timestamp == want.timestamp
            assert got.n_samples_after == want.n_samples_after
        assert reloaded.maintenance_cost().svd_correction_columns == 0
        probe = np.arange(4, dtype=np.int64)
        np.testing.assert_allclose(
            reloaded.remove(probe, method="priu").weights,
            trainer.remove(probe, method="priu").weights,
            atol=ATOL,
            rtol=0.0,
        )

    def test_unmaintained_garbage_state_round_trips(
        self, task, rep, overrides, tmp_path
    ):
        """Stale counters / pending eigen debt persist and stay serveable."""
        data = _SPARSE if rep == "sparse" else _DATASETS[task]
        trainer = _fit(task, rep, overrides)
        rng = np.random.default_rng(8)
        _churn(trainer, rng, n_commits=3)
        cost = trainer.maintenance_cost()
        trainer.save_checkpoint(tmp_path)
        reloaded = IncrementalTrainer.from_checkpoint(
            tmp_path, data.features, data.labels
        )
        recost = reloaded.maintenance_cost()
        assert recost.svd_correction_columns == cost.svd_correction_columns
        probe = np.arange(4, dtype=np.int64)
        np.testing.assert_allclose(
            reloaded.remove(probe, method="priu").weights,
            trainer.remove(probe, method="priu").weights,
            atol=ATOL,
            rtol=0.0,
        )
        # Maintaining the reloaded trainer reclaims the same garbage.
        report = reloaded.maintain()
        assert reloaded.maintenance_cost().svd_correction_columns == 0
        if cost.svd_correction_columns:
            assert "svd" in report.performed


def test_stale_frozen_eigen_round_trips(tmp_path):
    """The deferred eigen debt survives a checkpoint and refreshes after."""
    data = _DATASETS["binary_logistic"]
    trainer = _fit(
        "binary_logistic", "dense", dict(batch_size=40), method="auto"
    )
    trainer.remove([3, 40, 90], method="priu", commit=True)
    assert trainer.store.frozen.eigen_stale
    trainer.save_checkpoint(tmp_path)
    reloaded = IncrementalTrainer.from_checkpoint(
        tmp_path, data.features, data.labels, method="auto"
    )
    frozen = reloaded.store.frozen
    assert frozen.eigen_stale
    assert np.array_equal(
        frozen.pending_rows, trainer.store.frozen.pending_rows
    )
    got = reloaded.remove([5, 6], method="priu-opt").weights
    assert not frozen.eigen_stale
    want = trainer.remove([5, 6], method="priu-opt").weights
    np.testing.assert_allclose(got, want, atol=1e-8, rtol=0.0)


# ------------------------------------------------ the acceptance property
@pytest.mark.parametrize("task,rep,overrides", CONFIGS)
def test_churn_with_interleaved_maintenance_is_bounded_and_exact(
    task, rep, overrides
):
    """≥50 commits with interleaved maintenance: bounded state, exact answers.

    The maintained trainer and a never-maintained reference commit the
    *same* 50 random batches; every 10 commits the maintained one runs
    ``maintain()``.  At the end:

    * answers to a fresh query agree at atol 1e-10 (and with an original
      trainer answering the union — the commit contract composes through
      maintenance);
    * the maintained plan's nbytes equal a freshly compiled plan's (the
      slot map is gone), while SVD factor widths are capped at the
      feature dimension instead of growing linearly with commits.
    """
    maintained = _fit(task, rep, overrides)
    plain = _fit(task, rep, overrides)
    original = _fit(task, rep, overrides)
    rng_a, rng_b = np.random.default_rng(11), np.random.default_rng(11)
    _churn(maintained, rng_a, n_commits=50, maintain_every=10, per_commit=1)
    _churn(plain, rng_b, n_commits=50, per_commit=1)
    assert np.array_equal(maintained.deletion_log, plain.deletion_log)

    # Fresh query: maintained == never-maintained == original-with-union.
    rng = np.random.default_rng(99)
    committed = np.sort(maintained.deletion_log)
    survivors = np.setdiff1d(np.arange(original.n_samples), committed)
    query_old = np.sort(rng.choice(survivors, size=5, replace=False))
    query_new = remap_surviving_ids(query_old, committed)
    got = maintained.remove(query_new, method="priu").weights
    plain_answer = plain.remove(query_new, method="priu").weights
    np.testing.assert_allclose(got, plain_answer, atol=ATOL, rtol=0.0)
    want = original.remove(
        np.union1d(committed, query_old), method="priu"
    ).weights
    np.testing.assert_allclose(got, want, atol=ATOL, rtol=0.0)

    # Boundedness: the maintained plan equals a fresh compile's footprint.
    maintained.maintain()
    fresh = _fit(task, rep, overrides, plan_refresh_threshold=-1.0)
    rng_c = np.random.default_rng(11)
    _churn(fresh, rng_c, n_commits=50, per_commit=1)  # recompiles each time
    assert maintained.plan_nbytes() == fresh.plan_nbytes()
    assert maintained.maintenance_cost().slot_garbage_rows == 0

    if rep == "svd":
        widths = [
            r.summary.rank
            for r in maintained.store.records
            if r.summary is not None
        ]
        plain_widths = [
            r.summary.rank
            for r in plain.store.records
            if r.summary is not None
        ]
        n_params = (
            maintained.store.n_features * maintained.store.n_classes
            if task == "multinomial_logistic"
            else maintained.store.n_features
        )
        # Re-truncation caps widths at the operator dimension; the
        # unmaintained trainer's widths grew past it.
        assert max(widths) <= n_params
        assert max(plain_widths) > max(widths)
        assert maintained.maintenance_cost().svd_correction_columns == 0
