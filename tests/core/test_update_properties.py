"""Property-based tests (hypothesis) on the deletion-propagation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PrIUUpdater, train_with_capture
from repro.datasets import make_regression
from repro.models import make_schedule, objective_for, train

# One shared fitted run; hypothesis varies the removal sets.
_DATA = make_regression(80, 4, noise=0.05, seed=181)
_OBJECTIVE = objective_for("linear", 0.1)
_SCHEDULE = make_schedule(_DATA.n_samples, 10, 30, seed=103)
_RESULT, _STORE = train_with_capture(
    _OBJECTIVE, _DATA.features, _DATA.labels, _SCHEDULE, 0.02,
    compression="none",
)
_UPDATER = PrIUUpdater(_STORE, _DATA.features, _DATA.labels)


@st.composite
def removal_sets(draw, max_size=20):
    return draw(
        st.lists(
            st.integers(min_value=0, max_value=_DATA.n_samples - 1),
            max_size=max_size,
            unique=True,
        )
    )


class TestDeletionPropagationProperties:
    @settings(max_examples=25, deadline=None)
    @given(removal_sets())
    def test_priu_equals_basel_for_any_subset(self, removed):
        """The central invariant: zero-out == retrain, exactly (linear)."""
        retrained = train(
            _OBJECTIVE, _DATA.features, _DATA.labels, _SCHEDULE, 0.02,
            exclude=set(removed),
        )
        assert np.allclose(
            _UPDATER.update(removed), retrained.weights, atol=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(removal_sets())
    def test_update_is_a_pure_function(self, removed):
        first = _UPDATER.update(removed)
        second = _UPDATER.update(removed)
        assert np.array_equal(first, second)

    @settings(max_examples=25, deadline=None)
    @given(removal_sets())
    def test_order_and_duplicates_irrelevant(self, removed):
        doubled = list(removed) + list(reversed(removed))
        assert np.allclose(
            _UPDATER.update(removed), _UPDATER.update(doubled), atol=1e-12
        )

    @settings(max_examples=15, deadline=None)
    @given(removal_sets(max_size=8), removal_sets(max_size=8))
    def test_supersets_move_at_least_as_far_structurally(self, a, b):
        """Deleting A∪B differs from deleting A unless B adds nothing new."""
        union = sorted(set(a) | set(b))
        if set(union) == set(a):
            assert np.allclose(
                _UPDATER.update(a), _UPDATER.update(union), atol=1e-12
            )

    @settings(max_examples=25, deadline=None)
    @given(removal_sets())
    def test_finite_outputs(self, removed):
        updated = _UPDATER.update(removed)
        assert np.isfinite(updated).all()
        assert updated.shape == _RESULT.weights.shape


class TestScheduleProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=2, max_value=60),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_batches_always_valid(self, n, batch_size, iterations, seed):
        schedule = make_schedule(n, batch_size, iterations, seed=seed)
        assert len(schedule) == iterations
        for batch in schedule:
            assert batch.size == min(batch_size, n)
            assert batch.min() >= 0
            assert batch.max() < n
            assert np.unique(batch).size == batch.size  # no duplicates

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=5, max_value=40),
        st.integers(min_value=0, max_value=1000),
    )
    def test_surviving_plus_removed_is_batch(self, n, seed):
        schedule = make_schedule(n, 5, 6, seed=seed)
        removed = set(range(0, n, 3))
        for t in range(len(schedule)):
            surviving = schedule.surviving(t, removed)
            dropped = schedule.removed_in_batch(t, removed)
            combined = np.sort(np.concatenate([surviving, dropped]))
            assert np.array_equal(combined, schedule[t])
