"""Unit tests for provenance-store serialization (save/load round trips)."""

import numpy as np
import pytest

from repro.core import PrIUUpdater, load_store, save_store, train_with_capture
from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)
from repro.models import make_schedule, objective_for


def roundtrip(store, tmp_path):
    path = save_store(store, tmp_path / "store.npz")
    return load_store(path)


def updates_agree(store, reloaded, features, labels, removed):
    original = PrIUUpdater(store, features, labels).update(removed)
    restored = PrIUUpdater(reloaded, features, labels).update(removed)
    return np.allclose(original, restored, atol=1e-12)


class TestRoundTrips:
    def test_linear_dense(self, tmp_path):
        data = make_regression(150, 6, seed=171)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 15, 30, seed=95)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
            compression="none",
        )
        reloaded = roundtrip(store, tmp_path)
        assert reloaded.task == "linear"
        assert len(reloaded) == len(store)
        assert updates_agree(
            store, reloaded, data.features, data.labels, [0, 5, 9]
        )

    def test_linear_svd(self, tmp_path):
        data = make_regression(150, 40, seed=172)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 20, seed=96)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
            compression="svd",
        )
        reloaded = roundtrip(store, tmp_path)
        assert reloaded.compression == "svd"
        assert updates_agree(store, reloaded, data.features, data.labels, [1])

    def test_binary_with_frozen_state(self, tmp_path):
        data = make_binary_classification(200, 8, seed=173)
        objective = objective_for("binary_logistic", 0.05)
        schedule = make_schedule(data.n_samples, 20, 40, seed=97)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.1,
            freeze_at=0.7,
        )
        reloaded = roundtrip(store, tmp_path)
        assert reloaded.frozen is not None
        assert reloaded.frozen.t_s == store.frozen.t_s
        assert np.allclose(reloaded.frozen.eigenvalues, store.frozen.eigenvalues)
        # PrIU-opt still works from the reloaded store.
        from repro.core import PrIUOptLogisticUpdater

        original = PrIUOptLogisticUpdater(
            store, data.features, data.labels
        ).update([0, 1])
        restored = PrIUOptLogisticUpdater(
            reloaded, data.features, data.labels
        ).update([0, 1])
        assert np.allclose(original, restored, atol=1e-12)

    def test_multinomial(self, tmp_path):
        data = make_multiclass_classification(200, 8, n_classes=3, seed=174)
        objective = objective_for("multinomial_logistic", 0.05, n_classes=3)
        schedule = make_schedule(data.n_samples, 20, 25, seed=98)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.05,
        )
        reloaded = roundtrip(store, tmp_path)
        assert reloaded.n_classes == 3
        assert updates_agree(
            store, reloaded, data.features, data.labels, [3, 4]
        )

    def test_sparse_coefficient_store(self, tmp_path):
        data = make_sparse_binary_classification(200, 100, density=0.03, seed=175)
        objective = objective_for("binary_logistic", 0.05)
        schedule = make_schedule(data.n_samples, 20, 20, seed=99)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.05,
        )
        reloaded = roundtrip(store, tmp_path)
        assert reloaded.sparse_mode
        assert updates_agree(store, reloaded, data.features, data.labels, [2])

    def test_schedule_reconstructed_identically(self, tmp_path):
        data = make_regression(100, 4, seed=176)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 15, seed=100)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        reloaded = roundtrip(store, tmp_path)
        for original, restored in zip(
            store.schedule.batches, reloaded.schedule.batches
        ):
            assert np.array_equal(original, restored)

    def test_version_check(self, tmp_path):
        data = make_regression(50, 3, seed=177)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 10, 5, seed=101)
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, 0.01,
        )
        path = save_store(store, tmp_path / "s.npz")
        # Corrupt the version field.
        archive = dict(np.load(path, allow_pickle=False))
        meta = archive["__meta__"].copy()
        meta[0] = "999"
        archive["__meta__"] = meta
        np.savez_compressed(path, **archive)
        with pytest.raises(ValueError):
            load_store(path)
