"""Empirical validation of the paper's theorems (Sec. 4.3-4.4, Sec. 5).

Each test exercises the *scaling* a theorem claims, not just a point value.
"""

import numpy as np
import pytest

from repro.core import PrIUUpdater, train_with_capture
from repro.datasets import make_binary_classification, make_regression
from repro.linalg import sigmoid_complement_interpolator
from repro.models import make_schedule, objective_for, train

ETA = 0.1


@pytest.fixture(scope="module")
def binary():
    data = make_binary_classification(500, 8, seed=151)
    objective = objective_for("binary_logistic", 0.05)
    schedule = make_schedule(data.n_samples, 50, 200, seed=61)
    return data, objective, schedule


class TestTheorem4:
    """||E(w - w_L)|| = O((Δx)²)."""

    def test_quadratic_error_decay(self, binary):
        data, objective, schedule = binary
        exact = train(objective, data.features, data.labels, schedule, ETA)

        def linearized_error(n_intervals):
            interp = sigmoid_complement_interpolator(
                half_width=10, n_intervals=n_intervals
            )
            approx = train(
                objective, data.features, data.labels, schedule, ETA,
                linearize=interp,
            )
            return np.linalg.norm(approx.weights - exact.weights)

        errors = [linearized_error(n) for n in (20, 40, 80)]
        # Each doubling of the grid should shrink error ~4x (allow 2.5x).
        assert errors[1] < errors[0] / 2.5
        assert errors[2] < errors[1] / 2.5


class TestTheorem5:
    """||E(w_LU - w_RU)|| = O(Δn/n · Δx) + O((Δn/n)²) + O((Δx)²)."""

    def test_error_monotone_in_deletion_fraction(self, binary):
        data, objective, schedule = binary
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, ETA,
            compression="none",
        )
        updater = PrIUUpdater(store, data.features, data.labels)
        fractions = (0.01, 0.05, 0.2)
        errors = []
        for fraction in fractions:
            removed = list(range(int(fraction * data.n_samples)))
            reference = train(
                objective, data.features, data.labels, schedule, ETA,
                exclude=set(removed),
            ).weights
            errors.append(np.linalg.norm(updater.update(removed) - reference))
        assert errors[0] <= errors[-1] + 1e-9

    def test_error_small_relative_to_model(self, binary):
        data, objective, schedule = binary
        _, store = train_with_capture(
            objective, data.features, data.labels, schedule, ETA,
            compression="none",
        )
        updater = PrIUUpdater(store, data.features, data.labels)
        removed = list(range(25))  # 5%
        reference = train(
            objective, data.features, data.labels, schedule, ETA,
            exclude=set(removed),
        ).weights
        relative = np.linalg.norm(
            updater.update(removed) - reference
        ) / np.linalg.norm(reference)
        assert relative < 0.02


class TestTheorem6:
    """SVD approximation deviation is O(ε)."""

    def test_deviation_shrinks_with_epsilon(self):
        data = make_regression(250, 40, seed=152)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(data.n_samples, 20, 80, seed=62)
        removed = list(range(10))
        reference = train(
            objective, data.features, data.labels, schedule, 0.01,
            exclude=set(removed),
        ).weights
        errors = []
        for epsilon in (0.5, 0.05, 1e-4):
            _, store = train_with_capture(
                objective, data.features, data.labels, schedule, 0.01,
                compression="svd", epsilon=epsilon,
            )
            updater = PrIUUpdater(store, data.features, data.labels)
            errors.append(np.linalg.norm(updater.update(removed) - reference))
        assert errors[0] >= errors[1] >= errors[2] - 1e-12
        assert errors[2] < 1e-3


class TestTheorem7:
    """PrIU-opt linear deviation is O(||ΔXᵀΔX||)."""

    def test_deviation_tracks_removed_gram_norm(self):
        from repro.core import PrIUOptLinearUpdater

        data = make_regression(300, 8, seed=153)
        objective = objective_for("linear", 0.1)
        tau, eta = 300, 0.005
        updater = PrIUOptLinearUpdater(data.features, data.labels, tau, eta, 0.1)
        schedule = make_schedule(data.n_samples, data.n_samples, tau, kind="gd")

        def gd_error(removed):
            reference = train(
                objective, data.features, data.labels, schedule, eta,
                exclude=set(removed),
            ).weights
            return np.linalg.norm(updater.update(removed) - reference)

        def gram_norm(removed):
            rows = data.features[list(removed)]
            return np.linalg.norm(rows.T @ rows, 2)

        small, large = range(3), range(60)
        assert gram_norm(small) < gram_norm(large)
        assert gd_error(small) < gd_error(large) + 1e-12


class TestTheorem9:
    """PrIU-opt logistic deviation includes the O((τ - t_s)δ) freeze term."""

    def test_later_freeze_is_more_accurate(self, binary):
        from repro.core import PrIUOptLogisticUpdater

        data, objective, schedule = binary
        removed = list(range(10))
        reference = train(
            objective, data.features, data.labels, schedule, ETA,
            exclude=set(removed),
        ).weights
        errors = {}
        for freeze in (0.3, 0.9):
            _, store = train_with_capture(
                objective, data.features, data.labels, schedule, ETA,
                compression="none", freeze_at=freeze,
            )
            opt = PrIUOptLogisticUpdater(store, data.features, data.labels)
            errors[freeze] = np.linalg.norm(opt.update(removed) - reference)
        assert errors[0.9] <= errors[0.3] + 1e-9
