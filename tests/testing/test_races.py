"""Self-tests for the runtime race detector (``repro.testing.races``).

The detector is itself test infrastructure, so these tests follow the
same convention as the reprolint rule tests: every check must *fire* on
a planted hazard and stay *silent* on the conforming twin.  The planted
hazards are deterministic — a lock-order inversion only needs both edge
directions to be observed, not an actual two-thread collision.
"""

import importlib.util
import sys
import threading
from pathlib import Path

import pytest

from repro.testing import (
    GuardedBy,
    InstrumentedLock,
    LockDisciplineError,
    LockMonitor,
    LockOrderError,
    assert_owned,
    debug_guards,
)

ROOT = Path(__file__).resolve().parents[2]


# ---------------------------------------------------------------------------
# Lock-order inversion detection


def test_planted_abba_inversion_is_reported():
    monitor = LockMonitor()
    a = InstrumentedLock("a", monitor)
    b = InstrumentedLock("b", monitor)
    # Both orderings observed over the run = deadlock hazard, even though
    # a single thread can never actually deadlock on it.
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    (cycle,) = monitor.cycles()
    assert set(cycle) == {"a", "b"}
    with pytest.raises(LockOrderError) as excinfo:
        monitor.assert_clean()
    message = str(excinfo.value)
    assert "order inversion" in message
    # Provenance: the report names the file that first took each edge.
    assert "test_races.py" in message


def test_consistent_ordering_stays_silent():
    monitor = LockMonitor()
    a = InstrumentedLock("a", monitor)
    b = InstrumentedLock("b", monitor)
    for _ in range(3):
        with a:
            with b:
                pass
    assert monitor.cycles() == []
    monitor.assert_clean()
    assert [(x, y) for x, y, _count in monitor.edges()] == [("a", "b")]


def test_three_lock_cycle_without_any_two_lock_cycle():
    monitor = LockMonitor()
    locks = {name: InstrumentedLock(name, monitor) for name in "abc"}
    for first, second in (("a", "b"), ("b", "c"), ("c", "a")):
        with locks[first]:
            with locks[second]:
                pass
    (cycle,) = monitor.cycles()
    assert set(cycle) == {"a", "b", "c"}


def test_release_by_non_owner_is_a_discipline_error():
    monitor = LockMonitor()
    lock = InstrumentedLock("handoff", monitor)
    worker = threading.Thread(target=lock.acquire)
    worker.start()
    worker.join()
    with pytest.raises(LockDisciplineError):
        lock.release()
    assert len(monitor.discipline_errors) == 1
    with pytest.raises(LockOrderError):
        monitor.assert_clean()


def test_reentrant_lock_does_not_self_edge():
    monitor = LockMonitor()
    lock = InstrumentedLock("r", monitor, reentrant=True)
    with lock:
        with lock:
            assert lock.owned()
    assert monitor.edges() == []
    monitor.assert_clean()


# ---------------------------------------------------------------------------
# Guarded state


class _Box:
    value = GuardedBy("_lock")

    def __init__(self):
        self._lock = InstrumentedLock("_Box._lock", LockMonitor())
        self.value = 0  # first write: construction, exempt


def test_guardedby_allows_locked_access_and_flags_unlocked():
    box = _Box()
    with debug_guards():
        with box._lock:
            box.value = 1
            assert box.value == 1
        with pytest.raises(LockDisciplineError):
            box.value = 2
        with pytest.raises(LockDisciplineError):
            _ = box.value


def test_guardedby_is_inert_outside_debug_mode():
    box = _Box()
    box.value = 5
    assert box.value == 5


def test_assert_owned_helper():
    monitor = LockMonitor()
    lock = InstrumentedLock("x", monitor)
    with pytest.raises(LockDisciplineError):
        assert_owned(lock, "x")
    with lock:
        assert_owned(lock, "x")


# ---------------------------------------------------------------------------
# Construction-time capture


def test_capture_instruments_library_locks_but_not_test_locks():
    from repro.testing.faults import FlakyLoader

    monitor = LockMonitor()
    with monitor.capture():
        loader = FlakyLoader()  # constructed in src/repro/ -> instrumented
        local = threading.Lock()  # constructed here -> real lock
    assert isinstance(loader._lock, InstrumentedLock)
    assert not isinstance(local, InstrumentedLock)
    # Patch is reverted on exit.
    assert not isinstance(threading.Lock(), InstrumentedLock)

    monitor.label(loader, "FlakyLoader")
    assert "FlakyLoader._lock" in monitor.report()["locks"]

    # The instrumented lock keeps reporting after the capture window.
    loader.fail_next("m", 1)
    assert loader.pending("m") == 1


def test_condition_on_instrumented_lock_keeps_wait_notify():
    monitor = LockMonitor()
    condition = threading.Condition(
        InstrumentedLock("cv", monitor, reentrant=True)
    )
    ready = []

    def waiter():
        with condition:
            while not ready:
                condition.wait(timeout=5.0)

    worker = threading.Thread(target=waiter)
    worker.start()
    with condition:
        ready.append(True)
        condition.notify_all()
    worker.join(timeout=5.0)
    assert not worker.is_alive()
    monitor.assert_clean()


# ---------------------------------------------------------------------------
# End to end: one chaos seed under full instrumentation


def _load_chaos_suite():
    spec = importlib.util.spec_from_file_location(
        "chaos_suite", ROOT / "tools" / "chaos_suite.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_chaos_seed_passes_under_lock_instrumentation(tmp_path):
    """The real serving stack runs a seeded chaos trace with every lock
    instrumented and GuardedBy asserts live — and records no inversion,
    no discipline error (StressDriver invariant I6)."""
    chaos = _load_chaos_suite()
    checkpoint = tmp_path / "chaos-bin"
    chaos.fit_model("binary").save_checkpoint(checkpoint)
    summary = chaos.run_seed(61, 140, checkpoint, instrument=True)
    assert "locks=" in summary and "order_edges=" in summary
    # Instrumentation saw real lock traffic, not an empty graph.
    assert int(summary.split("locks=")[1].split()[0]) > 0


def test_stress_driver_invariant_i6_fires_on_recorded_hazard():
    """A monitor that saw an inversion fails the post-run invariant
    check, even though every serving-side invariant (I0-I5) is clean."""
    sys.path.insert(0, str(ROOT / "tests" / "serving"))
    try:
        from harness import InvariantViolation, StressDriver
    finally:
        sys.path.pop(0)
    from types import SimpleNamespace

    monitor = LockMonitor()
    a = InstrumentedLock("a", monitor)
    b = InstrumentedLock("b", monitor)
    with a:
        with b:
            pass
    with b:
        with a:
            pass

    # A driver over an idle fleet: every I0-I5 collection is empty, so
    # the only thing that can fail is I6's hazard check.
    driver = StressDriver.__new__(StressDriver)
    driver.monitor = monitor
    driver.seed = 0
    driver.model_ids = []
    driver.cost_models = []
    driver.commit_models = set()
    driver._initial_n = {}
    driver.report = SimpleNamespace(
        maintenance=[],
        submitted=[],
        served=lambda: [],
        trace=[],
        rejected=0,
        quarantined=0,
    )
    idle = SimpleNamespace(
        submitted=0, answered=0, failed=0, cancelled=0, quarantined=0,
        rejected=0,
    )
    driver.fleet = SimpleNamespace(stats=lambda model_id=None: idle)
    with pytest.raises(InvariantViolation, match="lock hazards"):
        driver.check_invariants()

    driver.monitor = None  # uninstrumented runs skip I6 entirely
    driver.check_invariants()
