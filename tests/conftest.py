"""Shared fixtures: small deterministic datasets and schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)
from repro.models import make_schedule, objective_for


@pytest.fixture(scope="session")
def regression_data():
    return make_regression(400, 8, noise=0.05, seed=101)


@pytest.fixture(scope="session")
def binary_data():
    return make_binary_classification(400, 10, separation=1.0, seed=102)


@pytest.fixture(scope="session")
def multiclass_data():
    return make_multiclass_classification(450, 12, n_classes=3, seed=103)


@pytest.fixture(scope="session")
def sparse_binary_data():
    return make_sparse_binary_classification(500, 300, density=0.02, seed=104)


@pytest.fixture
def linear_objective():
    return objective_for("linear", 0.1)


@pytest.fixture
def binary_objective():
    return objective_for("binary_logistic", 0.01)


@pytest.fixture
def multiclass_objective():
    return objective_for("multinomial_logistic", 0.01, n_classes=3)


@pytest.fixture
def small_schedule(regression_data):
    return make_schedule(regression_data.n_samples, 40, 120, seed=5)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
