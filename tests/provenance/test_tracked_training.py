"""Cross-validation of semantics: symbolic provenance runs vs plain training.

These are the load-bearing tests tying Section 4 to Section 5: the symbolic
annotated-algebra replay, the compiled PrIU update and BaseL retraining must
all agree.
"""

import numpy as np
import pytest

from repro.datasets import make_regression
from repro.linalg.interpolation import sigmoid_complement_interpolator
from repro.models import make_schedule, objective_for, train
from repro.provenance import ProvenanceTrackedRun


@pytest.fixture(scope="module")
def tiny_linear():
    data = make_regression(60, 4, noise=0.05, seed=21)
    objective = objective_for("linear", 0.05)
    schedule = make_schedule(data.n_samples, 10, 40, seed=3)
    return data, objective, schedule


class TestLinearTrackedRun:
    ETA = 0.02

    def _tracked(self, tiny_linear) -> ProvenanceTrackedRun:
        data, objective, schedule = tiny_linear
        run = ProvenanceTrackedRun(
            data.features, data.labels, self.ETA, objective.regularization
        )
        run.record_linear(schedule.batches)
        return run

    def test_full_replay_matches_training(self, tiny_linear):
        data, objective, schedule = tiny_linear
        run = self._tracked(tiny_linear)
        result = train(objective, data.features, data.labels, schedule, self.ETA)
        assert np.allclose(run.original_parameters("linear"), result.weights)

    def test_deletion_matches_retraining(self, tiny_linear):
        data, objective, schedule = tiny_linear
        run = self._tracked(tiny_linear)
        removed = [0, 3, 17, 42]
        retrained = train(
            objective, data.features, data.labels, schedule, self.ETA,
            exclude=set(removed),
        )
        updated = run.updated_parameters(removed, kind="linear")
        assert np.allclose(updated, retrained.weights, atol=1e-10)

    def test_idempotent_and_exact_agree(self, tiny_linear):
        data, objective, schedule = tiny_linear
        exact = ProvenanceTrackedRun(
            data.features, data.labels, self.ETA,
            objective.regularization, idempotent=False,
        )
        exact.record_linear(schedule.batches)
        idem = self._tracked(tiny_linear)
        removed = [1, 2]
        assert np.allclose(
            exact.updated_parameters(removed),
            idem.updated_parameters(removed),
        )

    def test_deleting_whole_batch_only_shrinks(self):
        data = make_regression(20, 3, seed=5, validation_fraction=0.0)
        objective = objective_for("linear", 0.1)
        schedule = make_schedule(20, 5, 8, seed=9)
        run = ProvenanceTrackedRun(data.features, data.labels, 0.05, 0.1)
        run.record_linear(schedule.batches)
        removed = list(schedule.batches[0])  # kill iteration 0 entirely
        retrained = train(
            objective, data.features, data.labels, schedule, 0.05,
            exclude=set(removed),
        )
        assert np.allclose(
            run.updated_parameters(removed), retrained.weights, atol=1e-10
        )


class TestLogisticTrackedRun:
    def test_linearized_replay_matches_linearized_training(self):
        from repro.datasets import make_binary_classification

        data = make_binary_classification(80, 5, seed=33)
        objective = objective_for("binary_logistic", 0.02)
        schedule = make_schedule(data.n_samples, 16, 60, seed=4)
        interp = sigmoid_complement_interpolator(n_intervals=10_000)
        eta = 0.05
        # Collect the (a, b) coefficients the standard training produces.
        coeffs = []

        def hook(t, batch, w, extras):
            slopes, intercepts = interp.coefficients(extras["margins"])
            coeffs.append((slopes, intercepts))

        result = train(
            objective, data.features, data.labels, schedule, eta,
            capture_hook=hook,
        )
        run = ProvenanceTrackedRun(
            data.features, data.labels, eta, objective.regularization
        )
        run.record_logistic(schedule.batches, coeffs)
        replayed = run.original_parameters(kind="logistic")
        # The symbolic replay uses the linearized rule with coefficients from
        # the *nonlinear* trajectory: Theorem 4 says they stay O(Δx²) close.
        assert np.linalg.norm(replayed - result.weights) < 1e-3

    def test_coefficients_batch_mismatch_rejected(self):
        data = make_regression(10, 2, seed=1)
        run = ProvenanceTrackedRun(data.features, data.labels, 0.1, 0.0)
        with pytest.raises(ValueError):
            run.record_logistic([np.array([0, 1])], [])


class TestUnrolledSymbolicParameters:
    def test_unrolled_matches_replay_without_renormalization(self):
        """Pure semiring reading: full symbolic W evaluated == replay."""
        data = make_regression(8, 2, noise=0.01, seed=8, validation_fraction=0.0)
        schedule = make_schedule(8, 8, 4, kind="gd")
        run = ProvenanceTrackedRun(data.features, data.labels, 0.05, 0.1)
        run.record_linear(schedule.batches)
        symbolic = run.unrolled_parameters("linear")
        # All tokens present: must equal the numeric replay exactly.
        numeric = run.original_parameters("linear")
        assert np.allclose(symbolic.evaluate().ravel(), numeric)

    def test_unrolled_deletion_is_unrenormalized(self):
        """Zero-out on the unrolled form keeps the original denominators.

        This documents why Equation 8 replaces the annotated count P^(t) with
        the integer B_U: naive zero-out alone does not renormalize.
        """
        data = make_regression(6, 2, noise=0.01, seed=9, validation_fraction=0.0)
        schedule = make_schedule(6, 6, 3, kind="gd")
        run = ProvenanceTrackedRun(data.features, data.labels, 0.05, 0.1)
        run.record_linear(schedule.batches)
        symbolic = run.unrolled_parameters("linear")
        removed = [0]
        zeroed = symbolic.delete_and_evaluate([run.tokens[0]]).ravel()
        renormalized = run.updated_parameters(removed)
        # Same direction, different scaling because of the denominators.
        assert not np.allclose(zeroed, renormalized)
        # Manual replay with original denominator n=6 must match the zeroed
        # symbolic value.
        eta, lam = 0.05, 0.1
        w = np.zeros(2)
        for batch in schedule.batches:
            keep = [i for i in batch if i not in removed]
            block = data.features[keep]
            targets = data.labels[keep]
            w = (
                (1 - eta * lam) * w
                - (2 * eta / len(batch)) * (block.T @ (block @ w))
                + (2 * eta / len(batch)) * (block.T @ targets)
            )
        assert np.allclose(zeroed, w, atol=1e-10)

    def test_term_growth_is_bounded_by_idempotence(self):
        data = make_regression(5, 2, seed=10, validation_fraction=0.0)
        schedule = make_schedule(5, 5, 6, kind="gd")
        run = ProvenanceTrackedRun(data.features, data.labels, 0.05, 0.1)
        run.record_linear(schedule.batches)
        symbolic = run.unrolled_parameters("linear")
        # With idempotent multiplication, monomials are subsets of 5 tokens.
        assert symbolic.n_terms() <= 2**5
