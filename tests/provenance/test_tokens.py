"""Unit tests for provenance tokens and the registry."""

from repro.provenance import Token, TokenRegistry


class TestToken:
    def test_equality_by_name_and_uid(self):
        assert Token("p", 1) == Token("p", 1)
        assert Token("p", 1) != Token("p", 2)
        assert Token("p", 1) != Token("q", 1)

    def test_hashable(self):
        tokens = {Token("p", 1), Token("p", 1), Token("p", 2)}
        assert len(tokens) == 2

    def test_ordering_is_stable(self):
        assert sorted([Token("b", 2), Token("a", 1)])[0].name == "a"

    def test_repr_uses_name(self):
        assert repr(Token("p3", 3)) == "p3"


class TestTokenRegistry:
    def test_fresh_tokens_are_distinct(self):
        reg = TokenRegistry()
        assert reg.fresh() != reg.fresh()

    def test_annotate_samples_counts(self):
        reg = TokenRegistry()
        tokens = reg.annotate_samples(7)
        assert len(tokens) == 7
        assert len(set(tokens)) == 7
        assert len(reg) == 7

    def test_two_registries_do_not_collide(self):
        a = TokenRegistry().fresh("x")
        b = TokenRegistry().fresh("x")
        # Same display name, same uid counter start — equal by design only
        # if both fields match; the uid makes them equal here.
        assert a == b  # documents the (name, uid) identity contract

    def test_custom_prefix(self):
        reg = TokenRegistry(prefix="s")
        assert reg.fresh().name == "s0"

    def test_iteration_order(self):
        reg = TokenRegistry()
        created = [reg.fresh() for _ in range(4)]
        assert list(reg) == created
        assert reg.tokens == created
