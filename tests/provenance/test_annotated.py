"""Unit tests for provenance-annotated matrices."""

import numpy as np
import pytest

from repro.provenance import AnnotatedMatrix, Polynomial, TokenRegistry
from repro.provenance.polynomial import ONE


@pytest.fixture
def tokens():
    return TokenRegistry().annotate_samples(4)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestConstruction:
    def test_pure_has_one_term(self):
        a = AnnotatedMatrix.pure(np.eye(2))
        assert a.n_terms() == 1
        assert a.shape == (2, 2)

    def test_zero_matrix_terms_dropped(self, tokens):
        a = AnnotatedMatrix.annotated(Polynomial.of_token(tokens[0]), np.zeros((2, 2)))
        assert a.n_terms() == 0

    def test_zero_polynomial_terms_dropped(self):
        a = AnnotatedMatrix.annotated(Polynomial.zero(), np.eye(2))
        assert a.n_terms() == 0

    def test_like_terms_merge(self, tokens):
        p = Polynomial.of_token(tokens[0])
        a = AnnotatedMatrix([(p, np.eye(2)), (p, np.eye(2))])
        assert a.n_terms() == 1
        assert np.allclose(a.terms[0][1], 2 * np.eye(2))

    def test_shape_mismatch_rejected(self, tokens):
        with pytest.raises(ValueError):
            AnnotatedMatrix([(ONE, np.eye(2)), (ONE, np.eye(3))])

    def test_empty_needs_shape(self):
        with pytest.raises(ValueError):
            AnnotatedMatrix([])
        assert AnnotatedMatrix.zeros((3, 2)).shape == (3, 2)

    def test_from_samples_decomposition(self, tokens, rng):
        rows = rng.standard_normal((4, 3))
        annotated = AnnotatedMatrix.from_samples(rows, tokens)
        assert annotated.n_terms() == 4
        # Evaluating with all tokens present recovers the matrix.
        assert np.allclose(annotated.evaluate(), rows)

    def test_from_samples_token_count_mismatch(self, tokens, rng):
        with pytest.raises(ValueError):
            AnnotatedMatrix.from_samples(rng.standard_normal((3, 2)), tokens)


class TestAlgebra:
    def test_joint_use_property(self, tokens, rng):
        """(p1 ∗ A1)(p2 ∗ A2) == (p1·p2) ∗ (A1 A2) — the key law from [52]."""
        p1 = Polynomial.of_token(tokens[0])
        p2 = Polynomial.of_token(tokens[1])
        a1 = rng.standard_normal((2, 3))
        a2 = rng.standard_normal((3, 2))
        product = AnnotatedMatrix.annotated(p1, a1) @ AnnotatedMatrix.annotated(p2, a2)
        expected = AnnotatedMatrix.annotated(p1 * p2, a1 @ a2)
        assert product.allclose(expected)

    def test_matmul_distributes_over_terms(self, tokens, rng):
        p, q = tokens[0], tokens[1]
        a = AnnotatedMatrix(
            [(Polynomial.of_token(p), rng.standard_normal((2, 2)))]
        ) + AnnotatedMatrix([(Polynomial.of_token(q), rng.standard_normal((2, 2)))])
        b = AnnotatedMatrix.pure(rng.standard_normal((2, 2)))
        product = a @ b
        # Numeric evaluation must agree with plain numpy.
        assert np.allclose(product.evaluate(), a.evaluate() @ b.evaluate())

    def test_addition_evaluates_pointwise(self, tokens, rng):
        a = AnnotatedMatrix.annotated(
            Polynomial.of_token(tokens[0]), rng.standard_normal((3, 3))
        )
        b = AnnotatedMatrix.pure(rng.standard_normal((3, 3)))
        assert np.allclose((a + b).evaluate(), a.evaluate() + b.evaluate())

    def test_subtraction_and_scale(self, tokens, rng):
        a = AnnotatedMatrix.annotated(
            Polynomial.of_token(tokens[0]), rng.standard_normal((2, 2))
        )
        assert (a - a).n_terms() == 0
        assert np.allclose(a.scale(2.0).evaluate(), 2.0 * a.evaluate())

    def test_transpose(self, tokens, rng):
        matrix = rng.standard_normal((2, 4))
        a = AnnotatedMatrix.annotated(Polynomial.of_token(tokens[0]), matrix)
        assert np.allclose(a.T.evaluate(), matrix.T)

    def test_annotate_multiplies_provenance(self, tokens):
        a = AnnotatedMatrix.pure(np.eye(2))
        p = Polynomial.of_token(tokens[0])
        annotated = a.annotate(p)
        assert annotated.terms[0][0] == p

    def test_matmul_shape_mismatch(self, rng):
        a = AnnotatedMatrix.pure(rng.standard_normal((2, 3)))
        b = AnnotatedMatrix.pure(rng.standard_normal((2, 3)))
        with pytest.raises(ValueError):
            a @ b

    def test_mixing_idempotent_flags_rejected(self):
        a = AnnotatedMatrix.pure(np.eye(2), idempotent=True)
        b = AnnotatedMatrix.pure(np.eye(2), idempotent=False)
        with pytest.raises(ValueError):
            a + b


class TestDeletionPropagation:
    def test_zero_out_drops_mentioning_terms(self, tokens, rng):
        p, q = tokens[0], tokens[1]
        u = rng.standard_normal((2, 1))
        v = rng.standard_normal((2, 1))
        w = AnnotatedMatrix.annotated(
            Polynomial.of_token(p), u
        ) + AnnotatedMatrix.annotated(Polynomial.of_token(q), v)
        after = w.zero_out([q])
        assert np.allclose(after.evaluate(), u)

    def test_paper_example(self, tokens, rng):
        # w = p²q ∗ u + qr⁴ ∗ v + ps ∗ z; delete r -> u + z.
        p, q, r, s = tokens
        u, v, z = (rng.standard_normal(3) for _ in range(3))
        from repro.provenance.polynomial import Monomial

        w = AnnotatedMatrix(
            [
                (Polynomial({Monomial({p: 2, q: 1}): 1}), u),
                (Polynomial({Monomial({q: 1, r: 4}): 1}), v),
                (Polynomial({Monomial({p: 1, s: 1}): 1}), z),
            ]
        )
        assert np.allclose(w.delete_and_evaluate([r]), u + z)

    def test_evaluate_with_assignment(self, tokens, rng):
        p = tokens[0]
        u = rng.standard_normal((2, 2))
        w = AnnotatedMatrix.annotated(Polynomial.of_token(p, 2), u)
        assert np.allclose(w.evaluate({p: 3}), 9 * u)

    def test_evaluate_default_reads_tokens_as_one(self, tokens, rng):
        p = tokens[0]
        u = rng.standard_normal((2, 2))
        w = AnnotatedMatrix.annotated(Polynomial.of_token(p, 5), u)
        assert np.allclose(w.evaluate(), u)

    def test_tokens_listing(self, tokens):
        w = AnnotatedMatrix.annotated(
            Polynomial.of_token(tokens[0]) * Polynomial.of_token(tokens[2]),
            np.eye(2),
        )
        assert w.tokens() == frozenset({tokens[0], tokens[2]})

    def test_zero_out_everything(self, tokens, rng):
        w = AnnotatedMatrix.from_samples(rng.standard_normal((4, 2)), tokens)
        gone = w.zero_out(tokens)
        assert gone.n_terms() == 0
        assert np.allclose(gone.evaluate(), 0.0)
