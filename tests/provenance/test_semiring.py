"""Unit tests for the semiring instances and the universal homomorphism."""

import pytest

from repro.provenance import (
    BooleanSemiring,
    Monomial,
    NaturalsSemiring,
    Polynomial,
    TokenRegistry,
    TropicalSemiring,
    ViterbiSemiring,
    WhyProvenanceSemiring,
    eval_in_semiring,
    why_provenance,
)

SEMIRINGS = [
    NaturalsSemiring(),
    BooleanSemiring(),
    TropicalSemiring(),
    ViterbiSemiring(),
    WhyProvenanceSemiring(),
]


@pytest.fixture
def tokens():
    return TokenRegistry().annotate_samples(3)


@pytest.mark.parametrize("semiring", SEMIRINGS, ids=lambda s: type(s).__name__)
class TestSemiringAxioms:
    def _samples(self, semiring):
        if isinstance(semiring, NaturalsSemiring):
            return [0, 1, 2, 5]
        if isinstance(semiring, BooleanSemiring):
            return [False, True]
        if isinstance(semiring, (TropicalSemiring,)):
            return [0.0, 1.5, float("inf")]
        if isinstance(semiring, ViterbiSemiring):
            return [0.0, 0.25, 1.0]
        one = WhyProvenanceSemiring.one
        t = frozenset({frozenset({"a"})})
        return [frozenset(), one, t]

    def test_plus_identity(self, semiring):
        for a in self._samples(semiring):
            assert semiring.plus(a, semiring.zero) == a

    def test_times_identity(self, semiring):
        for a in self._samples(semiring):
            assert semiring.times(a, semiring.one) == a

    def test_times_annihilation(self, semiring):
        for a in self._samples(semiring):
            assert semiring.times(a, semiring.zero) == semiring.zero

    def test_commutativity(self, semiring):
        samples = self._samples(semiring)
        for a in samples:
            for b in samples:
                assert semiring.plus(a, b) == semiring.plus(b, a)
                assert semiring.times(a, b) == semiring.times(b, a)

    def test_distributivity(self, semiring):
        samples = self._samples(semiring)
        for a in samples:
            for b in samples:
                for c in samples:
                    left = semiring.times(a, semiring.plus(b, c))
                    right = semiring.plus(
                        semiring.times(a, b), semiring.times(a, c)
                    )
                    assert left == right


class TestHomomorphism:
    def test_naturals_matches_direct_evaluation(self, tokens):
        p, q, r = tokens
        poly = Polynomial({Monomial({p: 2, q: 1}): 3, Monomial({r: 1}): 1})
        assignment = {p: 2, q: 3, r: 7}
        assert eval_in_semiring(poly, NaturalsSemiring(), assignment) == (
            poly.evaluate(assignment)
        )

    def test_boolean_deletion_propagation(self, tokens):
        p, q, r = tokens
        poly = Polynomial({Monomial({p: 1, q: 1}): 1, Monomial({r: 1}): 1})
        # r deleted: the pq witness keeps the output alive.
        alive = eval_in_semiring(
            poly, BooleanSemiring(), {p: True, q: True, r: False}
        )
        assert alive is True
        # p deleted too: only the r witness remains, and it is gone.
        dead = eval_in_semiring(
            poly, BooleanSemiring(), {p: False, q: True, r: False}
        )
        assert dead is False

    def test_tropical_cheapest_derivation(self, tokens):
        p, q, r = tokens
        poly = Polynomial({Monomial({p: 1, q: 1}): 1, Monomial({r: 1}): 1})
        cost = eval_in_semiring(poly, TropicalSemiring(), {p: 2.0, q: 3.0, r: 4.0})
        assert cost == 4.0  # min(2+3, 4)

    def test_viterbi_best_probability(self, tokens):
        p, q, r = tokens
        poly = Polynomial({Monomial({p: 1, q: 1}): 1, Monomial({r: 1}): 1})
        prob = eval_in_semiring(poly, ViterbiSemiring(), {p: 0.9, q: 0.5, r: 0.4})
        assert prob == pytest.approx(0.45)

    def test_homomorphism_respects_product(self, tokens):
        p, q, _ = tokens
        a = Polynomial.of_token(p) + Polynomial.of_token(q)
        b = Polynomial.of_token(p)
        semiring = NaturalsSemiring()
        assignment = {p: 3, q: 4}
        assert eval_in_semiring(a * b, semiring, assignment) == (
            eval_in_semiring(a, semiring, assignment)
            * eval_in_semiring(b, semiring, assignment)
        )


class TestWhyProvenance:
    def test_witness_sets(self, tokens):
        p, q, r = tokens
        poly = Polynomial({Monomial({p: 2, q: 1}): 5, Monomial({r: 3}): 1})
        witnesses = why_provenance(poly)
        assert witnesses == frozenset(
            {frozenset({p, q}), frozenset({r})}
        )

    def test_zero_has_no_witnesses(self):
        assert why_provenance(Polynomial.zero()) == frozenset()
