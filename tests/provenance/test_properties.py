"""Property-based tests (hypothesis) for the provenance substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.provenance import (
    AnnotatedMatrix,
    Monomial,
    Polynomial,
    Token,
)
from repro.provenance.polynomial import ONE, ZERO

TOKENS = [Token(f"p{i}", i) for i in range(4)]


@st.composite
def monomials(draw):
    powers = draw(
        st.dictionaries(
            st.sampled_from(TOKENS), st.integers(min_value=1, max_value=3),
            max_size=3,
        )
    )
    return Monomial(powers)


@st.composite
def polynomials(draw):
    terms = draw(
        st.dictionaries(
            monomials(), st.integers(min_value=1, max_value=4), max_size=4
        )
    )
    return Polynomial(terms)


@st.composite
def assignments(draw):
    return {t: draw(st.integers(min_value=0, max_value=3)) for t in TOKENS}


class TestPolynomialSemiringAxioms:
    @given(polynomials(), polynomials())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(polynomials(), polynomials())
    def test_multiplication_commutes(self, a, b):
        assert a * b == b * a

    @given(polynomials(), polynomials(), polynomials())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(polynomials(), polynomials(), polynomials())
    def test_multiplication_associates(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(polynomials(), polynomials(), polynomials())
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(polynomials())
    def test_identities(self, a):
        assert a + ZERO == a
        assert a * ONE == a
        assert (a * ZERO).is_zero()

    @given(polynomials(), assignments())
    def test_evaluation_is_homomorphic_for_sum(self, a, assignment):
        b = Polynomial.of_token(TOKENS[0])
        assert (a + b).evaluate(assignment) == a.evaluate(assignment) + b.evaluate(
            assignment
        )

    @given(polynomials(), polynomials(), assignments())
    def test_evaluation_is_homomorphic_for_product(self, a, b, assignment):
        assert (a * b).evaluate(assignment) == a.evaluate(assignment) * b.evaluate(
            assignment
        )

    @given(polynomials())
    def test_idempotent_is_idempotent(self, a):
        reduced = a.idempotent()
        assert reduced.idempotent() == reduced

    @given(polynomials(), polynomials())
    def test_idempotent_reduction_commutes_with_product(self, a, b):
        assert ((a * b).idempotent()) == (
            (a.idempotent() * b.idempotent()).idempotent()
        )

    @given(polynomials())
    def test_specialize_zero_then_evaluate(self, a):
        """Zeroing a token == evaluating it at 0."""
        target = TOKENS[0]
        zeroed = a.specialize(zeroed=[target])
        full = {t: 1 for t in TOKENS}
        killed = dict(full)
        killed[target] = 0
        assert zeroed.evaluate(full) == a.evaluate(killed)


@st.composite
def annotated_matrices(draw, shape=(2, 2)):
    n_terms = draw(st.integers(min_value=0, max_value=3))
    terms = []
    for _ in range(n_terms):
        poly = draw(polynomials())
        values = draw(
            st.lists(
                st.floats(min_value=-4, max_value=4, allow_nan=False),
                min_size=shape[0] * shape[1],
                max_size=shape[0] * shape[1],
            )
        )
        terms.append((poly, np.array(values).reshape(shape)))
    return AnnotatedMatrix(terms, shape=shape)


class TestAnnotatedMatrixLaws:
    @settings(max_examples=50)
    @given(annotated_matrices(), annotated_matrices())
    def test_addition_evaluates_pointwise(self, a, b):
        assert np.allclose((a + b).evaluate(), a.evaluate() + b.evaluate())

    @settings(max_examples=50)
    @given(annotated_matrices(), annotated_matrices())
    def test_matmul_evaluates_pointwise(self, a, b):
        assert np.allclose(
            (a @ b).evaluate(), a.evaluate() @ b.evaluate(), atol=1e-8
        )

    @settings(max_examples=50)
    @given(annotated_matrices())
    def test_zero_out_equals_evaluating_token_at_zero(self, a):
        target = TOKENS[0]
        zeroed = a.zero_out([target]).evaluate()
        direct = a.evaluate({target: 0})
        assert np.allclose(zeroed, direct)

    @settings(max_examples=50)
    @given(annotated_matrices(), annotated_matrices(), annotated_matrices())
    def test_matmul_distributes(self, a, b, c):
        left = a @ (b + c)
        right = (a @ b) + (a @ c)
        assert np.allclose(left.evaluate(), right.evaluate(), atol=1e-8)

    @settings(max_examples=50)
    @given(annotated_matrices())
    def test_transpose_involution(self, a):
        assert np.allclose(a.T.T.evaluate(), a.evaluate())
