"""Unit tests for provenance polynomials N[T]."""

import pytest

from repro.provenance import Monomial, Polynomial, TokenRegistry
from repro.provenance.polynomial import ONE, ONE_MONOMIAL, ZERO


@pytest.fixture
def tokens():
    return TokenRegistry().annotate_samples(4)


class TestMonomial:
    def test_empty_monomial_is_unit(self, tokens):
        m = Monomial({tokens[0]: 2})
        assert m * ONE_MONOMIAL == m
        assert ONE_MONOMIAL.degree() == 0

    def test_multiplication_adds_exponents(self, tokens):
        p, q = tokens[0], tokens[1]
        prod = Monomial({p: 2}) * Monomial({p: 1, q: 3})
        assert prod.powers == {p: 3, q: 3}
        assert prod.degree() == 6

    def test_iterable_constructor_counts_multiplicity(self, tokens):
        p = tokens[0]
        assert Monomial([p, p, tokens[1]]).powers[p] == 2

    def test_negative_exponent_rejected(self, tokens):
        with pytest.raises(ValueError):
            Monomial({tokens[0]: -1})

    def test_zero_exponent_dropped(self, tokens):
        assert Monomial({tokens[0]: 0}) == ONE_MONOMIAL

    def test_idempotent_clamps_exponents(self, tokens):
        p, q = tokens[0], tokens[1]
        assert Monomial({p: 5, q: 2}).idempotent() == Monomial({p: 1, q: 1})

    def test_evaluate(self, tokens):
        p, q = tokens[0], tokens[1]
        mono = Monomial({p: 2, q: 1})
        assert mono.evaluate({p: 3, q: 5}) == 45

    def test_mentions(self, tokens):
        mono = Monomial({tokens[0]: 1})
        assert mono.mentions(tokens[0])
        assert not mono.mentions(tokens[1])


class TestPolynomialConstruction:
    def test_zero_and_one(self):
        assert ZERO.is_zero()
        assert ONE.is_one()
        assert not ONE.is_zero()

    def test_of_token(self, tokens):
        poly = Polynomial.of_token(tokens[0], exponent=2)
        assert poly.degree() == 2
        assert poly.tokens() == frozenset({tokens[0]})

    def test_constant(self):
        assert Polynomial.constant(0).is_zero()
        assert Polynomial.constant(1).is_one()
        assert Polynomial.constant(3).terms == {ONE_MONOMIAL: 3}

    def test_zero_coefficients_dropped(self, tokens):
        poly = Polynomial({Monomial({tokens[0]: 1}): 0})
        assert poly.is_zero()


class TestPolynomialArithmetic:
    def test_example_from_paper(self, tokens):
        # w = p^2 q * u + q r^4 * v + p s * z; deleting r keeps terms 1 and 3.
        p, q, r, s = tokens
        w = (
            Polynomial({Monomial({p: 2, q: 1}): 1})
            + Polynomial({Monomial({q: 1, r: 4}): 1})
            + Polynomial({Monomial({p: 1, s: 1}): 1})
        )
        survived = w.specialize(zeroed=[r], kept=[p, q, s])
        assert survived == Polynomial.constant(2)  # u + z, two unit terms

    def test_addition_merges_like_monomials(self, tokens):
        p = Polynomial.of_token(tokens[0])
        assert (p + p).terms == {Monomial({tokens[0]: 1}): 2}

    def test_multiplication_distributes(self, tokens):
        p = Polynomial.of_token(tokens[0])
        q = Polynomial.of_token(tokens[1])
        left = (p + q) * (p + q)
        expanded = p * p + p * q + p * q + q * q
        assert left == expanded

    def test_zero_annihilates(self, tokens):
        p = Polynomial.of_token(tokens[0])
        assert (p * ZERO).is_zero()
        assert p + ZERO == p

    def test_one_is_neutral(self, tokens):
        p = Polynomial.of_token(tokens[0])
        assert p * ONE == p

    def test_scale(self, tokens):
        p = Polynomial.of_token(tokens[0])
        assert p.scale(3).evaluate({tokens[0]: 2}) == 6
        assert p.scale(0).is_zero()

    def test_idempotent_reduction(self, tokens):
        p = Polynomial.of_token(tokens[0], 3) + Polynomial.of_token(tokens[0], 3)
        reduced = p.idempotent()
        assert reduced == Polynomial.of_token(tokens[0], 1)


class TestEvaluationAndSpecialization:
    def test_full_evaluation(self, tokens):
        p, q = tokens[0], tokens[1]
        poly = Polynomial({Monomial({p: 2, q: 1}): 3})
        assert poly.evaluate({p: 2, q: 5}) == 60

    def test_specialize_zero_kills_mentioning_terms(self, tokens):
        p, q = tokens[0], tokens[1]
        poly = Polynomial.of_token(p) + Polynomial.of_token(q)
        assert poly.specialize(zeroed=[p]) == Polynomial.of_token(q)

    def test_specialize_keep_sets_tokens_to_one(self, tokens):
        p, q = tokens[0], tokens[1]
        poly = Polynomial({Monomial({p: 2, q: 1}): 1})
        assert poly.specialize(kept=[p, q]) == ONE

    def test_partial_specialization_is_symbolic(self, tokens):
        p, q = tokens[0], tokens[1]
        poly = Polynomial({Monomial({p: 1, q: 1}): 1})
        partial = poly.specialize(kept=[p])
        assert partial == Polynomial.of_token(q)

    def test_degree_zero_after_keep_all(self, tokens):
        poly = Polynomial({Monomial({t: 1 for t in tokens}): 4})
        assert poly.specialize(kept=tokens) == Polynomial.constant(4)

    def test_repr_smoke(self, tokens):
        poly = Polynomial({Monomial({tokens[0]: 2}): 1}) + ONE
        assert "p0" in repr(poly)
        assert repr(ZERO) == "0prov"
