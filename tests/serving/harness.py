"""Deterministic-clock test harness for the serving layer.

Two tools live here, both built on the serving layer's injectable
:class:`repro.serving.Clock`:

* :class:`FakeClock` — monotonic time that only moves when the test moves
  it.  In ``auto_advance`` mode (the default) any timed wait consumes its
  budget *instantly*: a coalescing worker that would sleep 20 ms of
  wall-clock instead advances fake time by 20 ms and dispatches at once,
  so whole serving runs finish in microseconds and every latency figure
  is exact, not ``>=``-fuzzy.  In manual mode (``auto_advance=False``)
  timed waits genuinely park until the test calls :meth:`advance` — the
  way to freeze a worker mid-coalesce and inject a deadline-lane request
  into its open batch.  A real-time safety valve (default 5 s) keeps a
  forgotten ``advance()`` from hanging the suite.

* :class:`StressDriver` — a seeded random interleaver for
  :class:`repro.serving.FleetServer`: submits across models and lanes,
  advances the clock, flushes, cancels, schedules background maintenance
  (``maintain_models``), probes cost estimates and maintenance-aware
  eviction (``cost_models``), snapshots stats, then closes and checks
  the serving invariants (every future — maintenance included — resolves
  exactly once; admission order within a lane; committed id-space
  consistency; stats conservation; cost-estimate coverage and
  monotonicity).  On any violation it raises with the seed and the full
  operation trace, so a failure replays with
  ``StressDriver(..., seed=<printed seed>)``.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serving import BackpressureError, FleetServer, ModelQuarantinedError
from repro.serving.clock import Clock


class FakeClock(Clock):
    """A test-controlled monotonic clock (module docstring)."""

    def __init__(
        self,
        start: float = 0.0,
        auto_advance: bool = True,
        real_timeout: float = 5.0,
    ) -> None:
        self._now = float(start)
        self._auto = bool(auto_advance)
        self._valve = float(real_timeout)
        self._lock = threading.Lock()

    # ------------------------------------------------------------- control
    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now()."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time to an absolute instant (no-op if already past it)."""
        with self._lock:
            self._now = max(self._now, float(timestamp))
            return self._now

    # ----------------------------------------------------------- Clock API
    def get(self, q: queue.Queue, timeout: float):
        deadline = self.now() + timeout
        if self._auto:
            try:
                return q.get_nowait()
            except queue.Empty:
                # The budget elapses in zero wall time: whoever was going
                # to coalesce has nothing more to wait for.
                self.advance_to(deadline)
                raise
        # reprolint: allow[R005] wall-clock safety valve so a stuck test fails instead of hanging the suite
        valve_end = time.monotonic() + self._valve
        while True:
            try:
                return q.get_nowait()
            except queue.Empty:
                pass
            if self.now() >= deadline - 1e-12:
                raise queue.Empty
            # reprolint: allow[R005] wall-clock safety valve so a stuck test fails instead of hanging the suite
            if time.monotonic() >= valve_end:
                # Safety valve: a test stopped advancing time while a
                # worker waits.  Pretend the budget elapsed rather than
                # hanging the suite.
                self.advance_to(deadline)
                raise queue.Empty
            # reprolint: allow[R005] bounded scheduler yield inside the harness poll loop, not a timing dependency
            time.sleep(0.0005)

    def wait(self, condition: threading.Condition, timeout: float | None) -> bool:
        if timeout is None:
            # Idle (deadline-free) waiting is real even under a fake
            # clock: it ends on notify, not on the passage of time.
            return condition.wait(self._valve)
        if self._auto:
            self.advance(timeout)
            # Briefly yield the condition's lock so submitters/notifiers
            # interleave the way a real timed wait would let them.
            condition.wait(0.0)
            return False
        # reprolint: allow[R005] wall-clock safety valve so a stuck test fails instead of hanging the suite
        valve_end = time.monotonic() + self._valve
        target = self.now() + timeout
        while self.now() < target:
            if condition.wait(0.001):
                return True
            # reprolint: allow[R005] wall-clock safety valve so a stuck test fails instead of hanging the suite
            if time.monotonic() >= valve_end:
                self.advance_to(target)
                return False
        return False


# ------------------------------------------------------------------ driver
@dataclass
class _Submitted:
    """One submitted request and everything needed to judge its outcome."""

    op_index: int
    model_id: str
    lane: str
    ids: np.ndarray
    future: object
    submit_order: int  # per (model, lane) submission counter


@dataclass
class StressReport:
    """What a stress run did, for assertions beyond the built-in invariants."""

    seed: int
    trace: list[str]
    submitted: list[_Submitted]
    rejected: int = 0
    cancelled_by_driver: int = 0
    flushes: int = 0
    empty_submits: int = 0
    # Chaos accounting: submissions fast-failed by an open circuit
    # breaker, and injected load faults armed by the driver.
    quarantined: int = 0
    load_faults: int = 0
    # Cost-model accounting: estimates the driver requested and
    # maintenance-aware retirements it performed.
    cost_estimates: int = 0
    retired: int = 0
    # Futures returned by fleet.maintain() calls the driver issued.
    maintenance: list = field(default_factory=list)

    def served(self) -> list[_Submitted]:
        return [
            s
            for s in self.submitted
            if not s.future.cancelled() and s.future.exception() is None
        ]


class InvariantViolation(AssertionError):
    """An invariant failed; the message carries the seed and the op trace."""


class StressDriver:
    """Seeded random interleaving of fleet operations (module docstring).

    Parameters
    ----------
    fleet:
        A started :class:`~repro.serving.FleetServer`.
    model_ids:
        Models to spread traffic over (must be registered).
    commit_models:
        Subset of ``model_ids`` the fleet serves in commit mode — the
        driver keeps a conservative live-id bound for them so every
        generated removal set stays valid no matter how batches land.
    lanes:
        Lane names to draw from.
    seed:
        The reproduction handle; printed on every violation.
    clock:
        The fleet's :class:`FakeClock` (advanced as one of the random
        operations); pass None when driving a real clock.
    maintain_models:
        Models the driver may randomly schedule ``fleet.maintain()`` on
        (typically the commit models — maintenance is what reclaims their
        commit garbage).  Empty (the default) disables the op.  Seeded
        traces replay only within one harness version: the op
        distribution consumes the rng, so reshaping it (as adding this
        op did) re-deals every later draw for old seeds.
    flaky / chaos_models:
        Fault injection: ``flaky`` is the registry's
        :class:`repro.testing.FlakyLoader` and ``chaos_models`` the
        models the driver may randomly evict and arm load faults on —
        either one transient fault (retried transparently) or enough to
        trip the model's circuit breaker.  Submissions the open breaker
        fast-fails are tallied in ``report.quarantined`` and checked
        against fleet stats.  ``chaos_models`` must be disjoint from
        ``commit_models`` and ``maintain_models``: a commit model is
        dirty (unevictable, so armed faults could never fire) and a
        quarantined maintenance target would fail its ticket.  Both
        default empty (chaos off), leaving old seeds' op distributions
        untouched.
    cost_models:
        Models whose trainers carry a
        :class:`~repro.core.costmodel.CostModel` (the test setup's job —
        attach it at registration or in the loader).  Enables the
        ``cost`` op: the driver flushes the fleet (estimates read live
        plan state, so in-flight dispatches must land first), asks the
        resident trainer for a subset and a superset estimate, checks
        the footprint predictions are monotone in request size, and may
        then exercise maintenance-aware eviction
        (``registry.retire(...)``).  Post-close, invariant I5 requires
        every served batch on these models to carry the pre-dispatch
        estimate (``ServedOutcome.predicted``).  May overlap
        ``commit_models`` (the flush quiesces the id space) and
        ``chaos_models`` (retire + armed load faults = cost-driven
        eviction under fault injection); keep it disjoint from
        ``maintain_models`` so a background maintenance ticket never
        mutates the plan mid-estimate.  Empty (the default) disables
        the op, leaving old seeds' op distributions untouched.
    monitor:
        Optional :class:`repro.testing.races.LockMonitor`.  The caller
        builds the fleet under ``monitor.capture()`` (so its locks are
        instrumented) and the driver adds invariant I6: the run must
        record no lock-order cycles and no lock-discipline errors.
        Purely observational — the op distribution and seeded traces are
        unchanged.
    """

    def __init__(
        self,
        fleet: FleetServer,
        model_ids: list[str],
        n_samples: dict[str, int],
        commit_models: set[str] = frozenset(),
        lanes: tuple[str, ...] = ("bulk", "deadline"),
        seed: int = 0,
        clock: FakeClock | None = None,
        max_ids_per_request: int = 4,
        maintain_models: set[str] = frozenset(),
        flaky=None,
        chaos_models: set[str] = frozenset(),
        cost_models: set[str] = frozenset(),
        monitor=None,
    ) -> None:
        self.fleet = fleet
        self.model_ids = list(model_ids)
        self.lanes = tuple(lanes)
        self.seed = seed
        self.clock = clock
        self.rng = np.random.default_rng(seed)
        self.max_ids = max_ids_per_request
        self.commit_models = set(commit_models)
        self.maintain_models = sorted(maintain_models)
        self.flaky = flaky
        self.chaos_models = sorted(chaos_models)
        if set(chaos_models) & self.commit_models:
            raise ValueError("chaos_models must be disjoint from commit_models")
        if set(chaos_models) & set(maintain_models):
            raise ValueError(
                "chaos_models must be disjoint from maintain_models"
            )
        self.cost_models = sorted(cost_models)
        if set(cost_models) & set(maintain_models):
            raise ValueError(
                "cost_models must be disjoint from maintain_models"
            )
        # Conservative per-model live bound: every id ever submitted for a
        # commit model *may* end up committed, so drawing below
        # initial_n - total_submitted is always valid in any id space the
        # request is eventually translated into.
        self._bound = dict(n_samples)
        self._initial_n = dict(n_samples)
        self._order: dict[tuple[str, str], int] = {}
        # Optional repro.testing.races.LockMonitor: the fleet under test
        # was built under monitor.capture(), and invariant I6 requires
        # the run to finish with no lock-order cycles or discipline
        # errors recorded.
        self.monitor = monitor
        self.report = StressReport(seed=seed, trace=[], submitted=[])

    # ------------------------------------------------------------- running
    def _trace(self, message: str) -> None:
        self.report.trace.append(f"[op {len(self.report.trace):4d}] {message}")

    def _pick_submit(self, op_index: int) -> None:
        model_id = self.model_ids[self.rng.integers(len(self.model_ids))]
        lane = self.lanes[self.rng.integers(len(self.lanes))]
        bound = self._bound[model_id]
        if bound <= self.max_ids + 1:
            self._trace(f"skip submit {model_id}: id space exhausted")
            return
        k = int(self.rng.integers(1, self.max_ids + 1))
        ids = np.sort(
            self.rng.choice(bound, size=k, replace=False)
        ).astype(np.int64)
        try:
            future = self.fleet.submit(model_id, ids, lane=lane, block=False)
        except BackpressureError:
            self.report.rejected += 1
            self._trace(f"submit {model_id}/{lane} {ids.tolist()} -> REJECTED")
            return
        except ModelQuarantinedError:
            self.report.quarantined += 1
            self._trace(
                f"submit {model_id}/{lane} {ids.tolist()} -> QUARANTINED"
            )
            return
        order_key = (model_id, lane)
        order = self._order.get(order_key, 0)
        self._order[order_key] = order + 1
        if model_id in self.commit_models:
            self._bound[model_id] -= k
        self.report.submitted.append(
            _Submitted(
                op_index=op_index,
                model_id=model_id,
                lane=lane,
                ids=ids,
                future=future,
                submit_order=order,
            )
        )
        self._trace(f"submit {model_id}/{lane} {ids.tolist()}")

    def _cost_op(self) -> None:
        """Estimate a subset/superset pair; maybe retire the model.

        The flush quiesces the fleet first: estimates read live plan
        state (the packed occurrence index) and ``retire`` checkpoints
        the live trainer, so no dispatch may be in flight on the model.
        """
        model_id = self.cost_models[self.rng.integers(len(self.cost_models))]
        self.fleet.flush(timeout=30)
        trainer = self.fleet.registry.resident_trainer(model_id)
        if trainer is None or getattr(trainer, "cost_model", None) is None:
            self._trace(f"cost {model_id}: not resident, skipped")
            return
        bound = self._bound[model_id]
        if bound > self.max_ids + 2:
            k = int(self.rng.integers(1, self.max_ids + 1))
            superset = np.sort(
                self.rng.choice(bound, size=k + 1, replace=False)
            ).astype(np.int64)
            small = trainer.estimate_removal(superset[:k])
            large = trainer.estimate_removal(superset)
            self.report.cost_estimates += 2
            # I5a — footprint estimates are monotone in request size: a
            # superset can only touch at least as much of the schedule.
            # (Patch *bytes* are deliberately not monotone: dropping more
            # occurrence rows shrinks the surviving flats.)
            for attr in (
                "n_removed",
                "touched_occurrences",
                "touched_iterations",
                "touched_fraction",
                "svd_width_growth",
                "refresh_seconds",
            ):
                self._check(
                    getattr(large, attr) >= getattr(small, attr),
                    f"cost estimate not monotone for {model_id}: "
                    f"{attr} {getattr(large, attr)} < {getattr(small, attr)} "
                    f"(superset {superset.tolist()})",
                )
            self._trace(
                f"cost {model_id}: {superset[:k].tolist()} vs "
                f"{superset.tolist()} monotone"
            )
        if self.rng.random() < 0.5:
            policy = trainer.cost_model.maintenance_policy()
            retired = self.fleet.registry.retire(model_id, policy=policy)
            if retired:
                self.report.retired += 1
            self._trace(f"cost {model_id}: retire -> {retired}")

    def run(self, n_ops: int) -> StressReport:
        """Execute ``n_ops`` random operations, close the fleet, check."""
        for op_index in range(n_ops):
            roll = self.rng.random()
            if roll < 0.70:
                self._pick_submit(op_index)
            elif roll < 0.80 and self.clock is not None:
                dt = float(self.rng.uniform(0.001, 0.05))
                self.clock.advance(dt)
                self._trace(f"advance {dt * 1e3:.1f} ms")
            elif roll < 0.82 and self.maintain_models:
                model_id = self.maintain_models[
                    self.rng.integers(len(self.maintain_models))
                ]
                self.report.maintenance.append(
                    (model_id, self.fleet.maintain(model_id))
                )
                self._trace(f"maintain {model_id}")
            elif roll < 0.88:
                self.fleet.flush(timeout=30)
                self.report.flushes += 1
                self._trace("flush")
            elif roll < 0.93 and self.report.submitted:
                victim = self.report.submitted[
                    self.rng.integers(len(self.report.submitted))
                ]
                if victim.future.cancel():
                    self.report.cancelled_by_driver += 1
                    self._trace(
                        f"cancel {victim.model_id}/{victim.lane} "
                        f"(op {victim.op_index}) -> cancelled"
                    )
                else:
                    self._trace(
                        f"cancel (op {victim.op_index}) -> too late"
                    )
            elif roll < 0.945 and self.cost_models:
                self._cost_op()
            elif (
                roll < 0.955 and self.chaos_models and self.flaky is not None
            ):
                model_id = self.chaos_models[
                    self.rng.integers(len(self.chaos_models))
                ]
                retry = self.fleet.retry
                if self.rng.random() < 0.5:
                    n = 1  # one transient fault: retried transparently
                else:
                    # Enough for every retried dispatch to fail until the
                    # breaker opens.
                    n = retry.load_attempts * retry.quarantine_after
                evicted = self.fleet.registry.evict(model_id)
                self.flaky.fail_next(model_id, n)
                self.report.load_faults += n
                self._trace(
                    f"chaos {model_id}: evicted={evicted}, "
                    f"armed {n} load fault(s)"
                )
            else:
                model_id = self.model_ids[
                    self.rng.integers(len(self.model_ids))
                ]
                stats = self.fleet.stats(model_id)
                self._trace(
                    f"stats {model_id}: submitted={stats.submitted} "
                    f"answered={stats.answered}"
                )
                self._check(
                    stats.pending >= 0,
                    f"mid-run negative pending for {model_id}",
                )
        self.fleet.close(wait=True)
        self._trace("close")
        self.check_invariants()
        return self.report

    # ---------------------------------------------------------- invariants
    def _check(self, condition: bool, message: str) -> None:
        if not condition:
            raise InvariantViolation(
                f"{message}\n  seed: {self.seed}\n  trace:\n    "
                + "\n    ".join(self.report.trace)
            )

    def check_invariants(self) -> None:
        """The serving invariants, post-close (module docstring)."""
        # I0 — every maintenance run the driver scheduled resolved with a
        # report (close() drains the maintenance backlog before exiting).
        for model_id, future in self.report.maintenance:
            self._check(
                future.done(),
                f"unresolved maintenance future for {model_id}",
            )
            self._check(
                future.exception() is None,
                f"maintenance failed for {model_id}: {future.exception()!r}",
            )
        # I1 — every future resolves exactly once (done + exactly one of
        # cancelled / exception / result; Future enforces at-most-once,
        # the harness enforces at-least-once, i.e. nothing leaked).
        for submitted in self.report.submitted:
            future = submitted.future
            self._check(
                future.done(),
                f"unresolved future: op {submitted.op_index} "
                f"{submitted.model_id}/{submitted.lane}",
            )
            if not future.cancelled() and future.exception() is None:
                outcome = future.result()
                self._check(
                    outcome.model_id == submitted.model_id
                    and outcome.lane == submitted.lane,
                    f"outcome mislabeled: op {submitted.op_index} got "
                    f"{outcome.model_id}/{outcome.lane}",
                )

        # I2 — admission order respected within a lane: for each (model,
        # lane), dispatch coordinates (batch_seq, batch_rank) are strictly
        # increasing in submission order.
        by_lane: dict[tuple[str, str], list[_Submitted]] = {}
        for submitted in self.report.served():
            by_lane.setdefault(
                (submitted.model_id, submitted.lane), []
            ).append(submitted)
        for (model_id, lane), members in by_lane.items():
            members.sort(key=lambda s: s.submit_order)
            coords = [
                (s.future.result().batch_seq, s.future.result().batch_rank)
                for s in members
            ]
            self._check(
                coords == sorted(coords) and len(set(coords)) == len(coords),
                f"admission order violated in {model_id}/{lane}: {coords}",
            )

        # I3 — stats conserve request counts, per model and fleet-wide,
        # and the lane split sums back to the aggregate.
        totals = {
            "submitted": 0,
            "answered": 0,
            "failed": 0,
            "cancelled": 0,
            "quarantined": 0,
        }
        for model_id in self.model_ids:
            stats = self.fleet.stats(model_id)
            self._check(
                stats.pending == 0,
                f"{model_id}: pending != 0 after close ({stats.pending})",
            )
            self._check(
                stats.submitted
                == stats.answered + stats.failed + stats.cancelled,
                f"{model_id}: counts not conserved ({stats.as_dict()})",
            )
            lane_sum = {key: 0 for key in totals}
            for lane_stats in stats.lanes.values():
                lane_sum["submitted"] += lane_stats.submitted
                lane_sum["answered"] += lane_stats.answered
                lane_sum["failed"] += lane_stats.failed
                lane_sum["cancelled"] += lane_stats.cancelled
                lane_sum["quarantined"] += lane_stats.quarantined
            for key, value in lane_sum.items():
                self._check(
                    value == getattr(stats, key),
                    f"{model_id}: lane {key} sum {value} != "
                    f"aggregate {getattr(stats, key)}",
                )
            for key in totals:
                totals[key] += getattr(stats, key)
        fleet_stats = self.fleet.stats()
        for key, value in totals.items():
            self._check(
                value == getattr(fleet_stats, key),
                f"fleet {key} {getattr(fleet_stats, key)} != "
                f"model sum {value}",
            )
        self._check(
            fleet_stats.rejected == self.report.rejected,
            f"fleet rejected {fleet_stats.rejected} != driver-observed "
            f"{self.report.rejected}",
        )
        self._check(
            fleet_stats.quarantined == self.report.quarantined,
            f"fleet quarantined {fleet_stats.quarantined} != "
            f"driver-observed {self.report.quarantined}",
        )

        # I5 — cost-model coverage: every served batch on a cost model
        # carries the pre-dispatch estimate, and it is well-formed.
        cost_set = set(self.cost_models)
        for submitted in self.report.served():
            if submitted.model_id not in cost_set:
                continue
            predicted = submitted.future.result().predicted
            self._check(
                predicted is not None,
                f"served batch without a cost estimate: op "
                f"{submitted.op_index} {submitted.model_id}/{submitted.lane}",
            )
            self._check(
                predicted["mode"] in ("refresh", "recompile", "unsupported")
                and predicted["n_removed"] >= 0
                and predicted["plan_patch_bytes"] >= 0,
                f"malformed cost estimate on op {submitted.op_index}: "
                f"{predicted}",
            )

        # I4 — committed id-space consistency: each commit model's
        # deletion log is duplicate-free, in-bounds, and exactly accounts
        # for the shrink of its id space.
        for model_id in self.commit_models:
            trainer = self.fleet.registry.resident_trainer(model_id)
            if trainer is None:  # no commit ever dispatched -> may be cold
                continue
            log = trainer.deletion_log
            self._check(
                np.unique(log).size == log.size,
                f"{model_id}: duplicate original ids in deletion log",
            )
            initial = self._initial_n[model_id]
            self._check(
                trainer.n_samples == initial - log.size,
                f"{model_id}: n_samples {trainer.n_samples} != "
                f"{initial} - {log.size}",
            )
            if log.size:
                self._check(
                    0 <= int(log.min()) and int(log.max()) < initial,
                    f"{model_id}: deletion log out of original bounds",
                )

        # I6 — under lock instrumentation, the whole run recorded no
        # acquisition-order cycle and no discipline error: a cycle is a
        # deadlock hazard even if this interleaving never hung.
        if self.monitor is not None:
            cycles = self.monitor.cycles()
            self._check(
                not cycles and not self.monitor.discipline_errors,
                "lock hazards recorded: "
                f"cycles={cycles} discipline="
                f"{[str(e) for e in self.monitor.discipline_errors]}",
            )
