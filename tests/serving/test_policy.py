"""Unit tests for the admission policy (pure logic, no threads)."""

import pytest

from repro.serving import AdmissionPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = AdmissionPolicy()
        assert policy.max_batch >= 1
        assert policy.max_pending >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_seconds": -0.1},
            {"max_pending": 0},
        ],
    )
    def test_rejects_degenerate_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)

    def test_frozen(self):
        policy = AdmissionPolicy()
        with pytest.raises(Exception):
            policy.max_batch = 99


class TestDispatchLogic:
    def test_dispatches_on_full_batch(self):
        policy = AdmissionPolicy(max_batch=4, max_delay_seconds=10.0)
        assert not policy.should_dispatch(3, 0.0)
        assert policy.should_dispatch(4, 0.0)

    def test_dispatches_on_expired_budget(self):
        policy = AdmissionPolicy(max_batch=100, max_delay_seconds=0.05)
        assert not policy.should_dispatch(1, 0.01)
        assert policy.should_dispatch(1, 0.05)

    def test_remaining_budget_clamps_at_zero(self):
        policy = AdmissionPolicy(max_delay_seconds=0.02)
        assert policy.remaining_budget(0.005) == pytest.approx(0.015)
        assert policy.remaining_budget(1.0) == 0.0

    def test_zero_delay_serves_immediately(self):
        policy = AdmissionPolicy(max_delay_seconds=0.0)
        assert policy.should_dispatch(1, 0.0)
        assert policy.remaining_budget(0.0) == 0.0
