"""Unit tests for the admission policy and SLA lanes (pure logic, no threads)."""

import pytest

from repro import Calibration, CostModel
from repro.serving import AdmissionPolicy, Lane


class TestValidation:
    def test_defaults_are_valid(self):
        policy = AdmissionPolicy()
        assert policy.max_batch >= 1
        assert policy.max_pending >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_seconds": -0.1},
            {"max_pending": 0},
        ],
    )
    def test_rejects_degenerate_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)

    def test_frozen(self):
        policy = AdmissionPolicy()
        with pytest.raises(Exception):
            policy.max_batch = 99


class TestDispatchLogic:
    def test_dispatches_on_full_batch(self):
        policy = AdmissionPolicy(max_batch=4, max_delay_seconds=10.0)
        assert not policy.should_dispatch(3, 0.0)
        assert policy.should_dispatch(4, 0.0)

    def test_dispatches_on_expired_budget(self):
        policy = AdmissionPolicy(max_batch=100, max_delay_seconds=0.05)
        assert not policy.should_dispatch(1, 0.01)
        assert policy.should_dispatch(1, 0.05)

    def test_remaining_budget_clamps_at_zero(self):
        policy = AdmissionPolicy(max_delay_seconds=0.02)
        assert policy.remaining_budget(0.005) == pytest.approx(0.015)
        assert policy.remaining_budget(1.0) == 0.0

    def test_zero_delay_serves_immediately(self):
        policy = AdmissionPolicy(max_delay_seconds=0.0)
        assert policy.should_dispatch(1, 0.0)
        assert policy.remaining_budget(0.0) == 0.0

    def test_explicit_batch_delay_overrides_the_default(self):
        policy = AdmissionPolicy(max_batch=100, max_delay_seconds=0.05)
        # A zero-delay (deadline) member collapses the batch's budget.
        assert policy.should_dispatch(1, 0.0, delay=0.0)
        assert policy.remaining_budget(0.01, delay=0.0) == 0.0
        assert not policy.should_dispatch(1, 0.01, delay=0.5)
        assert policy.remaining_budget(0.01, delay=0.5) == pytest.approx(0.49)


class TestCostAwareDispatch:
    """The cost-model hook in should_dispatch: early close only, and lane
    budgets stay hard upper bounds."""

    def test_calibrated_model_closes_early(self):
        policy = AdmissionPolicy(
            max_batch=16,
            max_delay_seconds=0.05,
            cost_model=CostModel(Calibration(batch_seconds=0.001)),
        )
        # Remaining budget (0.05) dwarfs the marginal saving (0.001):
        # dispatch now instead of holding the batch open.
        assert policy.should_dispatch(1, 0.0)
        # Near the end of the budget the saving wins again: keep waiting.
        assert not policy.should_dispatch(1, 0.0495)

    def test_uncalibrated_model_is_inert(self):
        policy = AdmissionPolicy(
            max_batch=16, max_delay_seconds=0.05, cost_model=CostModel()
        )
        assert not policy.should_dispatch(1, 0.0)
        assert policy.should_dispatch(1, 0.05)  # the fixed budget still rules

    def test_empty_batch_never_closes_early(self):
        policy = AdmissionPolicy(
            max_batch=16,
            max_delay_seconds=0.05,
            cost_model=CostModel(Calibration(batch_seconds=0.001)),
        )
        assert not policy.should_dispatch(0, 0.0)

    def test_deadline_member_still_forces_zero_budget(self):
        """Regression: a zero-delay (deadline-lane) member collapses the
        batch's budget to zero no matter what the model predicts — even a
        huge predicted saving must never extend a deadline batch's wait."""
        patient = CostModel(Calibration(batch_seconds=1e9))
        policy = AdmissionPolicy(
            max_batch=16, max_delay_seconds=0.05, cost_model=patient
        )
        # The model itself would wait forever (saving always exceeds any
        # remaining budget)...
        assert not patient.should_close(1, 0.05)
        # ...but a deadline member's delay=0.0 dispatches unconditionally,
        # before the cost hook is even consulted.
        assert policy.should_dispatch(1, 0.0, delay=0.0)
        assert policy.remaining_budget(0.0, delay=0.0) == 0.0
        # And the deadline lane's configured budget is still zero with a
        # cost model attached.
        assert policy.delay_for("deadline") == 0.0

    def test_cost_hook_is_one_directional(self):
        """should_close can only turn 'keep waiting' into 'dispatch now':
        whenever the fixed policy would dispatch, the cost-aware policy
        dispatches too, for any calibration."""
        fixed = AdmissionPolicy(max_batch=4, max_delay_seconds=0.02)
        for batch_seconds in (0.0, 1e-9, 0.01, 1e9):
            aware = AdmissionPolicy(
                max_batch=4,
                max_delay_seconds=0.02,
                cost_model=CostModel(
                    Calibration(batch_seconds=batch_seconds)
                ),
            )
            for n in (1, 2, 4):
                for wait in (0.0, 0.01, 0.02, 0.5):
                    for delay in (None, 0.0, 0.02, 0.5):
                        if fixed.should_dispatch(n, wait, delay):
                            assert aware.should_dispatch(n, wait, delay), (
                                f"cost model delayed a dispatch: "
                                f"{batch_seconds=} {n=} {wait=} {delay=}"
                            )


class TestLanes:
    def test_default_lanes(self):
        policy = AdmissionPolicy()
        assert policy.lane_names == ("deadline", "bulk", "maintenance")
        assert policy.lane(None).name == "bulk"  # default lane
        assert policy.delay_for("deadline") == 0.0
        # bulk inherits the policy's coalescing budget.
        assert policy.delay_for("bulk") == policy.max_delay_seconds
        assert policy.lane("deadline").priority < policy.lane("bulk").priority

    def test_unknown_lane_raises(self):
        with pytest.raises(ValueError, match="unknown lane"):
            AdmissionPolicy().lane("vip")

    def test_duplicate_lane_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate lane"):
            AdmissionPolicy(lanes=(Lane("a"), Lane("a")))

    def test_default_lane_must_exist(self):
        with pytest.raises(ValueError, match="default_lane"):
            AdmissionPolicy(lanes=(Lane("a"),), default_lane="b")

    def test_empty_lanes_rejected(self):
        with pytest.raises(ValueError, match="at least one lane"):
            AdmissionPolicy(lanes=())

    def test_lane_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            Lane("")
        with pytest.raises(ValueError, match=">= 0"):
            Lane("x", max_delay_seconds=-1.0)

    def test_custom_lane_delay_is_used(self):
        policy = AdmissionPolicy(
            max_delay_seconds=0.1,
            lanes=(Lane("slow", max_delay_seconds=0.5),),
            default_lane="slow",
        )
        assert policy.delay_for("slow") == 0.5
        assert policy.delay_for(None) == 0.5


class TestPreemptionGuardKnobs:
    """max_preemption_ratio validation and resolution (starvation guard)."""

    def test_policy_level_default_applies_to_all_lanes(self):
        policy = AdmissionPolicy(max_preemption_ratio=0.5)
        assert policy.preemption_ratio_for("deadline") == 0.5
        assert policy.preemption_ratio_for("bulk") == 0.5

    def test_lane_override_wins(self):
        policy = AdmissionPolicy(
            lanes=(
                Lane("deadline", max_delay_seconds=0.0, priority=0,
                     max_preemption_ratio=0.25),
                Lane("bulk", priority=10),
            ),
            max_preemption_ratio=0.9,
        )
        assert policy.preemption_ratio_for("deadline") == 0.25
        assert policy.preemption_ratio_for("bulk") == 0.9

    def test_unset_means_unlimited(self):
        policy = AdmissionPolicy()
        assert policy.preemption_ratio_for("deadline") is None

    def test_out_of_range_ratios_rejected(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_preemption_ratio=-0.1)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_preemption_ratio=1.5)
        with pytest.raises(ValueError):
            Lane("x", max_preemption_ratio=2.0)

    def test_maintenance_lane_is_stock_and_lowest_priority(self):
        policy = AdmissionPolicy()
        lane = policy.lane("maintenance")
        assert lane.priority > policy.lane("bulk").priority
        assert lane.priority > policy.lane("deadline").priority


class TestPreemptionGuardDebt:
    """The debt counter itself (dispatch plumbing is tested in
    tests/serving/test_maintenance_serving.py)."""

    def test_unguarded_dispatches_repay_outstanding_debt(self):
        from repro.serving.policy import _PreemptionGuard

        guard = _PreemptionGuard()
        guard.note(True, 0.5)
        guard.note(True, 0.5)
        assert guard.must_yield()
        # A dispatch led by a ratio-less lane (note(False, None)) repays
        # at the ratio that accrued the debt — a past flood must not
        # leave the guard force-yielding forever.
        guard.note(False, None)
        guard.note(False, None)
        assert not guard.must_yield()

    def test_no_ratio_ever_seen_is_a_noop(self):
        from repro.serving.policy import _PreemptionGuard

        guard = _PreemptionGuard()
        guard.note(False, None)
        assert not guard.must_yield()
