"""Unit tests for the admission policy and SLA lanes (pure logic, no threads)."""

import pytest

from repro.serving import AdmissionPolicy, Lane


class TestValidation:
    def test_defaults_are_valid(self):
        policy = AdmissionPolicy()
        assert policy.max_batch >= 1
        assert policy.max_pending >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_seconds": -0.1},
            {"max_pending": 0},
        ],
    )
    def test_rejects_degenerate_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)

    def test_frozen(self):
        policy = AdmissionPolicy()
        with pytest.raises(Exception):
            policy.max_batch = 99


class TestDispatchLogic:
    def test_dispatches_on_full_batch(self):
        policy = AdmissionPolicy(max_batch=4, max_delay_seconds=10.0)
        assert not policy.should_dispatch(3, 0.0)
        assert policy.should_dispatch(4, 0.0)

    def test_dispatches_on_expired_budget(self):
        policy = AdmissionPolicy(max_batch=100, max_delay_seconds=0.05)
        assert not policy.should_dispatch(1, 0.01)
        assert policy.should_dispatch(1, 0.05)

    def test_remaining_budget_clamps_at_zero(self):
        policy = AdmissionPolicy(max_delay_seconds=0.02)
        assert policy.remaining_budget(0.005) == pytest.approx(0.015)
        assert policy.remaining_budget(1.0) == 0.0

    def test_zero_delay_serves_immediately(self):
        policy = AdmissionPolicy(max_delay_seconds=0.0)
        assert policy.should_dispatch(1, 0.0)
        assert policy.remaining_budget(0.0) == 0.0

    def test_explicit_batch_delay_overrides_the_default(self):
        policy = AdmissionPolicy(max_batch=100, max_delay_seconds=0.05)
        # A zero-delay (deadline) member collapses the batch's budget.
        assert policy.should_dispatch(1, 0.0, delay=0.0)
        assert policy.remaining_budget(0.01, delay=0.0) == 0.0
        assert not policy.should_dispatch(1, 0.01, delay=0.5)
        assert policy.remaining_budget(0.01, delay=0.5) == pytest.approx(0.49)


class TestLanes:
    def test_default_lanes(self):
        policy = AdmissionPolicy()
        assert policy.lane_names == ("deadline", "bulk")
        assert policy.lane(None).name == "bulk"  # default lane
        assert policy.delay_for("deadline") == 0.0
        # bulk inherits the policy's coalescing budget.
        assert policy.delay_for("bulk") == policy.max_delay_seconds
        assert policy.lane("deadline").priority < policy.lane("bulk").priority

    def test_unknown_lane_raises(self):
        with pytest.raises(ValueError, match="unknown lane"):
            AdmissionPolicy().lane("vip")

    def test_duplicate_lane_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate lane"):
            AdmissionPolicy(lanes=(Lane("a"), Lane("a")))

    def test_default_lane_must_exist(self):
        with pytest.raises(ValueError, match="default_lane"):
            AdmissionPolicy(lanes=(Lane("a"),), default_lane="b")

    def test_empty_lanes_rejected(self):
        with pytest.raises(ValueError, match="at least one lane"):
            AdmissionPolicy(lanes=())

    def test_lane_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            Lane("")
        with pytest.raises(ValueError, match=">= 0"):
            Lane("x", max_delay_seconds=-1.0)

    def test_custom_lane_delay_is_used(self):
        policy = AdmissionPolicy(
            max_delay_seconds=0.1,
            lanes=(Lane("slow", max_delay_seconds=0.5),),
            default_lane="slow",
        )
        assert policy.delay_for("slow") == 0.5
        assert policy.delay_for(None) == 0.5
