"""Graceful degradation under injected faults: retry, quarantine, crash.

Drives the real :class:`FleetServer` / :class:`DeletionServer` with the
:class:`~repro.testing.FlakyLoader` and :class:`~repro.testing.FaultInjector`
seams — no mocks of the serving layer itself — and the
:class:`harness.FakeClock`, so every backoff sleep and probe interval
elapses in zero wall time.
"""

import shutil

import numpy as np
import pytest

from harness import FakeClock
from repro import DeletionServer, FleetServer, IncrementalTrainer, ModelRegistry
from repro.serving import (
    CheckpointCorruptionError,
    ModelLoadError,
    ModelQuarantinedError,
    RetryPolicy,
    WorkerCrashedError,
)
from repro.datasets import make_binary_classification
from repro.testing import FaultInjector, FlakyLoader, SimulatedCrash, corrupt_npz_member

_DATA = make_binary_classification(300, 8, separation=1.2, seed=7)


def fit_model(**overrides):
    kwargs = dict(
        learning_rate=0.1,
        regularization=0.01,
        batch_size=40,
        n_iterations=40,
        seed=0,
        method="priu",
    )
    kwargs.update(overrides)
    trainer = IncrementalTrainer("binary_logistic", **kwargs)
    trainer.fit(_DATA.features, _DATA.labels)
    return trainer


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    directory = tmp_path_factory.mktemp("degradation") / "ckpt"
    fit_model().save_checkpoint(directory)
    return directory


def flaky_fleet(checkpoint, retry, model_ids=("m",), flaky=None):
    flaky = flaky if flaky is not None else FlakyLoader()
    registry = ModelRegistry(loader=flaky)
    for model_id in model_ids:
        registry.register(
            model_id,
            checkpoint=checkpoint,
            features=_DATA.features,
            labels=_DATA.labels,
        )
    clock = FakeClock()
    fleet = FleetServer(registry, n_workers=1, clock=clock, retry=retry)
    return fleet, flaky, clock


class TestLoadRetry:
    def test_transient_failures_retried_within_one_dispatch(self, checkpoint):
        retry = RetryPolicy(load_attempts=3, backoff_seconds=0.05)
        fleet, flaky, _clock = flaky_fleet(checkpoint, retry)
        flaky.fail_next("m", 2)  # two failures, third attempt succeeds
        with fleet:
            outcome = fleet.resolve("m", [1, 2], timeout=30)
        assert outcome.weights is not None
        assert flaky.failures == 2 and flaky.loads == 3
        health = fleet.describe("m")["health"]
        assert health["state"] == "healthy"
        assert health["load_retries"] == 2
        assert health["consecutive_failures"] == 0
        assert fleet.stats().quarantined == 0
        assert fleet.stats("m").answered == 1

    def test_quarantine_after_repeated_dispatch_failures(self, checkpoint):
        retry = RetryPolicy(
            load_attempts=2,
            backoff_seconds=0.0,
            quarantine_after=2,
            probe_interval_seconds=10.0,
        )
        fleet, flaky, _clock = flaky_fleet(checkpoint, retry)
        flaky.fail_next("m", 4)  # 2 dispatches x 2 attempts, all fail
        with fleet:
            with pytest.raises(ModelLoadError) as first:
                fleet.resolve("m", [1], timeout=30)
            assert first.value.attempts == 2
            assert fleet.describe("m")["health"]["state"] == "healthy"

            with pytest.raises(ModelLoadError):
                fleet.resolve("m", [2], timeout=30)
            health = fleet.describe("m")["health"]
            assert health["state"] == "quarantined"
            assert health["quarantines"] == 1
            assert health["consecutive_failures"] == 2

            # Breaker open: fast-fail at submit, no load attempted.
            loads_before = flaky.loads
            with pytest.raises(ModelQuarantinedError) as rejected:
                fleet.submit("m", [3])
            assert rejected.value.model_id == "m"
            assert rejected.value.retry_at == health["probe_at"]
            assert flaky.loads == loads_before
        assert fleet.stats().quarantined == 1
        assert fleet.stats("m").quarantined == 1
        assert fleet.stats().failed == 2

    def test_corruption_skips_retries_and_quarantines_immediately(
        self, checkpoint, tmp_path
    ):
        broken = tmp_path / "broken"
        shutil.copytree(checkpoint, broken)
        corrupt_npz_member(broken / "store.npz", "__schedule__")
        registry = ModelRegistry()
        registry.register(
            "m",
            checkpoint=broken,
            features=_DATA.features,
            labels=_DATA.labels,
        )
        retry = RetryPolicy(load_attempts=3, quarantine_after=3)
        with FleetServer(
            registry, n_workers=1, clock=FakeClock(), retry=retry
        ) as fleet:
            with pytest.raises(ModelLoadError) as failed:
                fleet.resolve("m", [1], timeout=30)
            # Non-transient: a single attempt, no backoff retries.
            assert failed.value.attempts == 1
            assert isinstance(failed.value.__cause__, CheckpointCorruptionError)
            health = fleet.describe("m")["health"]
            assert health["state"] == "quarantined"
            assert health["load_retries"] == 0
            with pytest.raises(ModelQuarantinedError):
                fleet.submit("m", [2])


class TestProbeRecovery:
    RETRY = RetryPolicy(
        load_attempts=1,
        backoff_seconds=0.0,
        quarantine_after=1,
        probe_interval_seconds=5.0,
    )

    def test_half_open_probe_restores_service(self, checkpoint):
        fleet, flaky, clock = flaky_fleet(checkpoint, self.RETRY)
        flaky.fail_next("m", 1)
        with fleet:
            with pytest.raises(ModelLoadError):
                fleet.resolve("m", [1], timeout=30)
            health = fleet.describe("m")["health"]
            assert health["state"] == "quarantined"
            with pytest.raises(ModelQuarantinedError):
                fleet.submit("m", [2])

            clock.advance_to(health["probe_at"])
            # The loader has healed; the probe submission goes through
            # and closes the breaker.
            outcome = fleet.resolve("m", [3], timeout=30)
            assert outcome.weights is not None
            health = fleet.describe("m")["health"]
            assert health["state"] == "healthy"
            assert health["consecutive_failures"] == 0
            # Normal service resumed.
            assert fleet.resolve("m", [4], timeout=30).weights is not None
        assert fleet.stats().quarantined == 1

    def test_failed_probe_reopens_the_breaker(self, checkpoint):
        fleet, flaky, clock = flaky_fleet(checkpoint, self.RETRY)
        flaky.fail_next("m", 2)  # first dispatch AND the probe fail
        with fleet:
            with pytest.raises(ModelLoadError):
                fleet.resolve("m", [1], timeout=30)
            probe_at = fleet.describe("m")["health"]["probe_at"]
            clock.advance_to(probe_at)
            with pytest.raises(ModelLoadError):
                fleet.resolve("m", [2], timeout=30)
            health = fleet.describe("m")["health"]
            assert health["state"] == "quarantined"
            assert health["quarantines"] == 2
            # Straight back to fast-fail until the next probe window.
            with pytest.raises(ModelQuarantinedError):
                fleet.submit("m", [3])


class TestSaveDegradation:
    def test_failed_save_keeps_model_dirty_resident_and_serving(
        self, checkpoint, tmp_path
    ):
        first = tmp_path / "first"
        second = tmp_path / "second"
        shutil.copytree(checkpoint, first)
        shutil.copytree(checkpoint, second)
        registry = ModelRegistry()
        for model_id, directory in (("m", first), ("n", second)):
            registry.register(
                model_id,
                checkpoint=directory,
                features=_DATA.features,
                labels=_DATA.labels,
            )
        for model_id in ("m", "n"):
            registry.get(model_id).remove([1, 2, 3], commit=True)
        assert set(registry.dirty_ids()) == {"m", "n"}

        # Fail exactly the first write of the sweep ("m" loaded first).
        with FaultInjector().fail_at("store.begin", times=1).installed():
            written = registry.save_dirty()

        assert set(written) == {"m", "n"}
        assert not written["m"].ok and isinstance(written["m"].error, OSError)
        assert written["n"].ok and written["n"].paths is not None
        # The failed model stays dirty: unevictable, still resident,
        # still answering from its committed in-memory state.
        assert registry.dirty_ids() == ("m",)
        assert not registry.evict("m")
        assert registry.get("m").weights_ is not None
        # Its checkpoint on disk is untouched — no half-written files.
        assert sorted(p.name for p in first.iterdir()) == [
            "plan.npz",
            "store.npz",
        ]

        # The next sweep retries and succeeds.
        retried = registry.save_dirty()
        assert retried.keys() == {"m"} and retried["m"].ok
        assert registry.dirty_ids() == ()
        assert registry.evict("m")

    def test_crash_during_save_dirty_leaves_loadable_checkpoint(
        self, checkpoint, tmp_path
    ):
        """A process death mid-``save_dirty`` never tears the archive: a
        fresh process loads the complete pre-commit checkpoint."""
        work = tmp_path / "work"
        shutil.copytree(checkpoint, work)
        registry = ModelRegistry()
        registry.register(
            "m",
            checkpoint=work,
            features=_DATA.features,
            labels=_DATA.labels,
        )
        before = registry.get("m").weights_.copy()
        registry.get("m").remove([1, 2, 3], commit=True)

        with FaultInjector().crash_at("plan.temp-written").installed():
            with pytest.raises(SimulatedCrash):
                registry.save_dirty()

        # The epoch was never bumped and the model is still dirty.
        assert registry.dirty_ids() == ("m",)
        # A fresh process sees the complete old checkpoint.
        reloaded = IncrementalTrainer.from_checkpoint(
            work, _DATA.features, _DATA.labels
        )
        assert np.array_equal(reloaded.weights_, before)


class CrashOnce:
    """Wrap a trainer method to die like a worker bug would: abruptly."""

    def __init__(self):
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        raise SimulatedCrash("injected worker death")


class TestWorkerCrash:
    def test_deletion_server_fails_pending_instead_of_wedging(self):
        trainer = fit_model()
        trainer.remove_many = CrashOnce()
        server = DeletionServer(trainer, method="priu", autostart=False)
        futures = [server.submit([k, k + 7]) for k in range(3)]
        server.start()
        for future in futures:
            with pytest.raises(WorkerCrashedError) as failed:
                future.result(timeout=30)
            assert isinstance(failed.value.__cause__, SimulatedCrash)
        # flush() unblocks rather than waiting on futures nobody will
        # ever answer, and new submissions fast-fail.
        assert server.flush(timeout=30)
        with pytest.raises(WorkerCrashedError):
            server.submit([1])
        assert server.stats().failed == 3
        server.close()

    def test_fleet_fails_pending_across_models_and_future_submits(self):
        registry = ModelRegistry()
        crashy = fit_model()
        crashy.remove_many = CrashOnce()
        registry.register("crashy", trainer=crashy)
        registry.register("bystander", trainer=fit_model(seed=2))
        fleet = FleetServer(registry, n_workers=1, autostart=False)
        doomed = fleet.submit("crashy", [1, 2])
        queued = fleet.submit("bystander", [3])
        fleet.start()
        with pytest.raises(WorkerCrashedError):
            doomed.result(timeout=30)
        # The lone worker died: queued work for other models fails too
        # (fail-fast) instead of waiting forever.
        with pytest.raises(WorkerCrashedError):
            queued.result(timeout=30)
        assert fleet.flush(timeout=30)
        with pytest.raises(WorkerCrashedError):
            fleet.submit("bystander", [4])
        assert fleet.stats().failed == 2
        fleet.close()
