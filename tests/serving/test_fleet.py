"""ModelRegistry + FleetServer: the multi-model serving tier.

Registry tests exercise real checkpoints written by ``save_checkpoint``
(lazy loads, LRU eviction under both caps, dirty/pin protection).  Fleet
tests drive the real worker pool and the real batched engine — no mocks —
with the :class:`harness.FakeClock` wherever timing matters.
"""

import shutil
import threading
import time

import numpy as np
import pytest

from harness import FakeClock
from repro import (
    AdmissionPolicy,
    DeletionServer,
    FleetServer,
    IncrementalTrainer,
    ModelRegistry,
)
from repro.core.serialization import read_checkpoint_metadata
from repro.datasets import make_binary_classification, make_regression
from repro.serving import BackpressureError, ModelLoadError, RetryPolicy

_BINARY = make_binary_classification(400, 10, separation=1.0, seed=11)
_BINARY_B = make_binary_classification(300, 8, separation=1.2, seed=12)
_LINEAR = make_regression(350, 6, noise=0.05, seed=13)


def fit_binary(data=_BINARY, **overrides):
    kwargs = dict(
        learning_rate=0.1,
        regularization=0.01,
        batch_size=40,
        n_iterations=50,
        seed=0,
        method="priu",
    )
    kwargs.update(overrides)
    trainer = IncrementalTrainer("binary_logistic", **kwargs)
    trainer.fit(data.features, data.labels)
    return trainer


def fit_linear():
    trainer = IncrementalTrainer(
        "linear",
        learning_rate=0.05,
        regularization=0.01,
        batch_size=35,
        n_iterations=40,
        seed=1,
        method="priu",
    )
    trainer.fit(_LINEAR.features, _LINEAR.labels)
    return trainer


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory):
    """Three saved checkpoints (a/b binary, c linear) with their data."""
    root = tmp_path_factory.mktemp("fleet-checkpoints")
    specs = {}
    for name, (maker, data) in {
        "model-a": (lambda: fit_binary(_BINARY), _BINARY),
        "model-b": (lambda: fit_binary(_BINARY_B, seed=2), _BINARY_B),
        "model-c": (fit_linear, _LINEAR),
    }.items():
        trainer = maker()
        directory = root / name
        trainer.save_checkpoint(directory)
        specs[name] = (directory, data)
    return specs


def registry_with(checkpoints, names, **kwargs) -> ModelRegistry:
    registry = ModelRegistry(**kwargs)
    for name in names:
        directory, data = checkpoints[name]
        registry.register(
            name, checkpoint=directory, features=data.features, labels=data.labels
        )
    return registry


class TestCheckpointMetadata:
    def test_reads_identity_without_loading_arrays(self, checkpoints):
        directory, data = checkpoints["model-a"]
        metadata = read_checkpoint_metadata(directory)
        assert metadata.task == "binary_logistic"
        assert metadata.n_samples == data.features.shape[0]
        assert metadata.n_features == data.features.shape[1]
        assert metadata.n_iterations == 50
        assert metadata.plan_path is not None
        assert metadata.format_version == 3
        payload = metadata.as_dict()
        assert payload["n_samples"] == data.features.shape[0]

    def test_store_archive_addressing(self, checkpoints):
        directory, _ = checkpoints["model-c"]
        metadata = read_checkpoint_metadata(directory / "store.npz")
        assert metadata.task == "linear"
        assert metadata.plan_path is None  # store-only addressing

    def test_missing_path_fails_cleanly(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_checkpoint_metadata(tmp_path / "nope")


class TestRegistry:
    def test_register_validates_eagerly(self, checkpoints, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(FileNotFoundError):
            registry.register(
                "ghost",
                checkpoint=tmp_path / "missing",
                features=np.zeros((2, 2)),
                labels=np.zeros(2),
            )
        directory, data = checkpoints["model-a"]
        with pytest.raises(ValueError, match="features"):
            registry.register("half", checkpoint=directory)
        with pytest.raises(ValueError, match="exactly one"):
            registry.register("neither")
        metadata = registry.register(
            "ok", checkpoint=directory, features=data.features, labels=data.labels
        )
        assert metadata.n_samples == data.features.shape[0]
        with pytest.raises(ValueError, match="already registered"):
            registry.register(
                "ok",
                checkpoint=directory,
                features=data.features,
                labels=data.labels,
            )
        assert registry.stats()["loads"] == 0  # still nothing loaded

    def test_lazy_load_and_lru_hits(self, checkpoints):
        registry = registry_with(checkpoints, ["model-a", "model-b"])
        assert registry.resident_ids == ()
        trainer = registry.get("model-a")
        assert registry.stats() == {
            **registry.stats(),
            "loads": 1,
            "resident": 1,
        }
        assert registry.get("model-a") is trainer  # hit, no second load
        assert registry.stats()["hits"] == 1
        assert registry.n_samples("model-a") == trainer.n_samples

    def test_unknown_model_raises(self, checkpoints):
        registry = registry_with(checkpoints, ["model-a"])
        with pytest.raises(ValueError, match="unknown model"):
            registry.get("model-z")
        with pytest.raises(ValueError, match="unknown model"):
            registry.n_samples("model-z")

    def test_lru_eviction_under_resident_cap(self, checkpoints):
        registry = registry_with(
            checkpoints, ["model-a", "model-b", "model-c"], max_resident=2
        )
        registry.get("model-a")
        registry.get("model-b")
        registry.get("model-c")  # evicts the least recently used: a
        assert registry.resident_ids == ("model-b", "model-c")
        registry.get("model-b")  # touch b -> c is now LRU
        registry.get("model-a")  # reload a -> evicts c
        assert registry.resident_ids == ("model-b", "model-a")
        stats = registry.stats()
        assert stats["evictions"] == 2
        assert stats["loads"] == 4  # a, b, c, then a again

    def test_byte_cap_keeps_at_least_the_requested_model(self, checkpoints):
        registry = registry_with(
            checkpoints, ["model-a", "model-b"], max_plan_bytes=1
        )
        trainer = registry.get("model-a")
        # Over cap, but the just-loaded model is protected from its own
        # eviction pass.
        assert registry.resident_ids == ("model-a",)
        registry.get("model-b")  # displaces a (cap fits ~zero plans)
        assert registry.resident_ids == ("model-b",)
        assert trainer.plan_nbytes() > 1  # the cap really was exceeded

    def test_pinned_models_are_not_evicted(self, checkpoints):
        registry = registry_with(
            checkpoints, ["model-a", "model-b"], max_resident=1
        )
        with registry.pinned("model-a") as trainer:
            assert trainer is registry.get("model-a")
            registry.get("model-b")  # would evict a, but a is pinned
            assert "model-a" in registry.resident_ids
        registry.get("model-b")
        registry.get("model-a")  # unpinned now: b gets evicted instead
        assert registry.resident_ids == ("model-a",)

    def test_dirty_models_resist_eviction_until_saved(self, checkpoints):
        registry = registry_with(
            checkpoints, ["model-a", "model-b"], max_resident=1
        )
        trainer = registry.get("model-a")
        trainer.remove([3, 4], commit=True)  # in-process commit: dirty
        assert registry.dirty_ids() == ("model-a",)
        assert registry.evict("model-a") is False
        registry.get("model-b")  # over cap, but a is unevictable
        assert "model-a" in registry.resident_ids
        assert registry.describe("model-a")["dirty"] is True
        written = registry.save_dirty()  # re-checkpoint in place
        assert "model-a" in written
        assert registry.dirty_ids() == ()
        assert registry.evict("model-a") is True
        # The refreshed checkpoint reflects the commit.
        assert registry.n_samples("model-a") == trainer.n_samples

    @pytest.mark.parametrize(
        "archive_name",
        ["model-a-archive.npz", "model-a.store"],  # the latter: no .npz
    )
    def test_save_dirty_rewrites_bare_archive_registration_in_place(
        self, tmp_path, archive_name
    ):
        """A registration whose checkpoint is a bare store archive (not a
        ``save_checkpoint`` directory) must be re-saved to the *exact*
        registered path, so an evict + reload sees the committed state
        (regression: the rewrite landed in ``<parent>/store.npz`` while
        the spec kept pointing at the stale pre-commit file, silently
        resurrecting committed-deleted samples on reload; and for an
        archive name without the ``.npz`` suffix, ``np.savez_compressed``
        diverted the rewrite to ``<name>.npz`` with the same effect)."""
        source = tmp_path / "source"
        fit_binary(_BINARY).save_checkpoint(source)
        archive = tmp_path / archive_name
        shutil.copy(source / "store.npz", archive)
        registry = ModelRegistry()
        registry.register(
            "m",
            checkpoint=archive,
            features=_BINARY.features,
            labels=_BINARY.labels,
        )
        trainer = registry.get("m")
        trainer.remove([3, 4], commit=True)
        assert registry.dirty_ids() == ("m",)
        written = registry.save_dirty()
        assert written["m"].ok
        assert written["m"].paths["store"] == archive  # the registered path
        assert registry.n_samples("m") == trainer.n_samples
        assert registry.evict("m")
        reloaded = registry.get("m")
        assert reloaded.n_samples == trainer.n_samples
        assert np.array_equal(np.sort(reloaded.deletion_log), [3, 4])
        np.testing.assert_allclose(
            reloaded.weights_, trainer.weights_, atol=1e-10
        )

    def test_save_dirty_drops_stale_plan_path_override(self, tmp_path):
        """An explicit ``plan_path=`` load override names the pre-commit
        plan; after ``save_dirty`` it must be dropped for directory
        registrations too, or the next evict + reload fails on the
        plan/store sample-count mismatch, wedging the model."""
        source = tmp_path / "m"
        fit_binary(_BINARY).save_checkpoint(source)
        stale_plan = tmp_path / "stale-plan.npz"
        shutil.copy(source / "plan.npz", stale_plan)
        registry = ModelRegistry()
        registry.register(
            "m",
            checkpoint=source,
            features=_BINARY.features,
            labels=_BINARY.labels,
            plan_path=stale_plan,
        )
        loaded = registry.get("m")
        loaded.remove([3, 4], commit=True)
        assert registry.save_dirty().keys() == {"m"}
        assert registry.evict("m")
        reloaded = registry.get("m")  # must not load the stale plan
        assert reloaded.n_samples == loaded.n_samples
        np.testing.assert_allclose(
            reloaded.weights_, loaded.weights_, atol=1e-10
        )

    def test_live_trainer_registration_is_resident_and_unevictable(self):
        trainer = fit_binary()
        registry = ModelRegistry(max_resident=1)
        assert registry.register("live", trainer=trainer) is None
        assert registry.resident_ids == ("live",)
        assert registry.evict("live") is False
        assert registry.get("live") is trainer

    def test_describe(self, checkpoints):
        registry = registry_with(checkpoints, ["model-a"])
        description = registry.describe("model-a")
        assert description["resident"] is False
        assert description["metadata"]["task"] == "binary_logistic"
        registry.get("model-a")
        assert registry.describe("model-a")["resident"] is True


class TestWarmStartRanking:
    """warm_start's hottest-N ordering, and its interplay with retire."""

    def test_hottest_first_with_ties_broken_by_registration_order(
        self, checkpoints
    ):
        registry = registry_with(
            checkpoints, ["model-a", "model-b", "model-c"]
        )
        hotness = {"model-a": 2, "model-b": 2, "model-c": 5}
        loaded = registry.warm_start(3, hotness=hotness)
        # model-c is hottest; the a/b tie resolves to registration order,
        # so repeated restarts warm the same models in the same order.
        assert loaded == ("model-c", "model-a", "model-b")
        assert registry.resident_ids == ("model-c", "model-a", "model-b")

    def test_tie_order_is_independent_of_hotness_dict_order(
        self, checkpoints
    ):
        results = []
        for mapping in (
            {"model-b": 3, "model-a": 3},
            {"model-a": 3, "model-b": 3},
        ):
            registry = registry_with(checkpoints, ["model-a", "model-b"])
            results.append(registry.warm_start(2, hotness=dict(mapping)))
        assert results[0] == results[1] == ("model-a", "model-b")

    def test_retired_model_warms_back_first_by_admission_history(
        self, checkpoints
    ):
        """Maintenance-aware eviction and warm_start compose: retire drops
        the hottest model, but its admission history (counted by every
        fleet submit) keeps it first in line to be pre-loaded again."""
        from repro import CostModel

        registry = registry_with(checkpoints, ["model-a", "model-b"])
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_batch=4, max_delay_seconds=0.01),
            method="priu",
            n_workers=1,
            clock=FakeClock(),
            autostart=True,
        )
        for _ in range(3):
            fleet.submit("model-a", [1, 2]).result(timeout=30)
        fleet.submit("model-b", [3]).result(timeout=30)
        assert fleet.flush(timeout=30)
        evictions_before = registry.stats()["evictions"]
        assert (
            registry.retire("model-a", policy=CostModel().maintenance_policy())
            is True
        )
        fleet.close()
        assert registry.resident_trainer("model-a") is None
        assert registry.stats()["evictions"] == evictions_before + 1
        # Only the retired model is a candidate (model-b is resident), and
        # its recorded hotness ranks it for reload.
        assert registry.warm_start(2) == ("model-a",)
        assert registry.resident_trainer("model-a") is not None


@pytest.fixture
def live_fleet():
    """Three live models behind a fleet (non-commit), plus direct handles."""
    trainers = {
        "alpha": fit_binary(_BINARY),
        "beta": fit_binary(_BINARY_B, seed=2),
        "gamma": fit_linear(),
    }
    registry = ModelRegistry()
    for model_id, trainer in trainers.items():
        registry.register(model_id, trainer=trainer)
    return registry, trainers


class TestFleetServing:
    def test_routes_to_the_right_model_and_matches_direct(self, live_fleet):
        registry, trainers = live_fleet
        rng = np.random.default_rng(5)
        with FleetServer(registry, AdmissionPolicy(max_batch=8)) as fleet:
            futures = {}
            for model_id, trainer in trainers.items():
                ids = np.sort(
                    rng.choice(trainer.n_samples, size=4, replace=False)
                )
                futures[model_id] = (fleet.submit(model_id, ids), ids)
            outcomes = {
                model_id: (future.result(timeout=30), ids)
                for model_id, (future, ids) in futures.items()
            }
        for model_id, (outcome, ids) in outcomes.items():
            expected = trainers[model_id].remove(ids, method="priu").weights
            assert np.allclose(outcome.weights, expected, atol=1e-10)
            assert outcome.model_id == model_id
            assert outcome.weights.shape == expected.shape

    def test_unknown_model_fails_at_submit(self, live_fleet):
        registry, _ = live_fleet
        with FleetServer(registry) as fleet:
            with pytest.raises(ValueError, match="unknown model"):
                fleet.submit("delta", [1, 2])

    def test_out_of_range_ids_fail_without_loading(self, checkpoints):
        registry = registry_with(checkpoints, ["model-a"])
        n = checkpoints["model-a"][1].features.shape[0]
        with FleetServer(registry) as fleet:
            with pytest.raises(ValueError, match="removal ids"):
                fleet.submit("model-a", [n + 7])
        # Validation came from checkpoint metadata, not a forced load.
        assert registry.stats()["loads"] == 0

    def test_submission_triggers_lazy_load(self, checkpoints):
        registry = registry_with(checkpoints, ["model-b"])
        with FleetServer(registry, AdmissionPolicy(max_batch=4)) as fleet:
            outcome = fleet.resolve("model-b", [1, 2, 3], timeout=30)
        assert registry.stats()["loads"] == 1
        assert outcome.model_id == "model-b"

    def test_empty_submit_resolves_inline(self, live_fleet):
        registry, trainers = live_fleet
        with FleetServer(registry) as fleet:
            outcome = fleet.resolve("alpha", [], timeout=30)
        assert outcome.method == "noop"
        assert outcome.model_id == "alpha"
        np.testing.assert_allclose(outcome.weights, trainers["alpha"].weights_)
        stats = fleet.stats("alpha")
        assert stats.submitted == 1 and stats.answered == 1

    def test_per_model_backpressure_is_isolated(self, live_fleet):
        registry, trainers = live_fleet
        fleet = FleetServer(
            registry, AdmissionPolicy(max_pending=2), autostart=False
        )
        fleet.submit("alpha", [1])
        fleet.submit("alpha", [2])
        with pytest.raises(BackpressureError, match="alpha"):
            fleet.submit("alpha", [3], block=False)
        # Other models' queues are unaffected.
        fleet.submit("beta", [1], block=False)
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()
        assert fleet.stats("alpha").rejected == 1
        assert fleet.stats("beta").rejected == 0
        assert fleet.stats().rejected == 1

    def test_submit_after_close_raises(self, live_fleet):
        registry, _ = live_fleet
        fleet = FleetServer(registry)
        fleet.close()
        with pytest.raises(RuntimeError, match="closed"):
            fleet.submit("alpha", [1])
        with pytest.raises(RuntimeError, match="closed"):
            fleet.submit("alpha", [])

    def test_close_drains_preloaded_queues(self, live_fleet):
        registry, trainers = live_fleet
        fleet = FleetServer(registry, autostart=False)
        futures = [
            fleet.submit(model_id, [i, i + 1])
            for i, model_id in enumerate(trainers)
        ]
        fleet.close(wait=True)
        assert all(f.done() for f in futures)
        assert fleet.stats().answered == len(futures)
        assert fleet.pending == 0

    def test_flush_without_start_raises_instead_of_hanging(self, live_fleet):
        registry, _ = live_fleet
        fleet = FleetServer(registry, autostart=False)
        fleet.submit("alpha", [1])
        with pytest.raises(RuntimeError, match="never started"):
            fleet.flush(timeout=1.0)
        fleet.close()

    def test_cancelled_future_is_skipped(self, live_fleet):
        registry, _ = live_fleet
        fleet = FleetServer(registry, autostart=False)
        doomed = fleet.submit("beta", [1, 2])
        kept = fleet.submit("beta", [3])
        assert doomed.cancel()
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()
        assert kept.result(timeout=30).weights is not None
        stats = fleet.stats("beta")
        assert stats.cancelled == 1 and stats.answered == 1

    def test_load_failure_fails_the_batch_not_the_pool(
        self, checkpoints, tmp_path
    ):
        """A registration whose training data no longer matches the
        checkpoint fails its own batch; the pool keeps serving others."""
        directory, data = checkpoints["model-a"]
        registry = ModelRegistry()
        registry.register(
            "broken",
            checkpoint=directory,
            features=data.features[:-5],  # wrong shape: load will raise
            labels=data.labels[:-5],
        )
        registry.register("healthy", trainer=fit_binary(_BINARY_B, seed=2))
        retry = RetryPolicy(load_attempts=1)  # deterministic error: no backoff
        with FleetServer(registry, n_workers=1, retry=retry) as fleet:
            bad = fleet.submit("broken", [1, 2])
            with pytest.raises(ModelLoadError, match="captured over"):
                bad.result(timeout=30)
            good = fleet.resolve("healthy", [1, 2], timeout=30)
        assert good.weights is not None
        assert fleet.stats("broken").failed == 1
        assert fleet.stats("healthy").answered == 1

    def test_per_model_stats_sum_to_fleet_stats(self, live_fleet):
        registry, trainers = live_fleet
        with FleetServer(registry, AdmissionPolicy(max_batch=4)) as fleet:
            for model_id in trainers:
                for k in range(3):
                    fleet.submit(model_id, [k, k + 5])
            assert fleet.flush(timeout=30)
        per_model = fleet.model_stats()
        assert set(per_model) == set(trainers)
        assert sum(s.answered for s in per_model.values()) == 9
        assert fleet.stats().answered == 9

    def test_deadline_lane_beats_bulk_under_fake_clock(self, live_fleet):
        registry, _ = live_fleet
        clock = FakeClock()
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_batch=16, max_delay_seconds=0.05),
            n_workers=1,
            clock=clock,
            autostart=False,
        )
        bulk = fleet.submit("alpha", [1, 2], lane="bulk")
        urgent = fleet.submit("alpha", [3], lane="deadline")
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()
        urgent_outcome = urgent.result(timeout=30)
        bulk_outcome = bulk.result(timeout=30)
        # The deadline request preempted the coalescing delay entirely and
        # dispatched first within the shared batch.
        assert urgent_outcome.wait_seconds == 0.0
        assert urgent_outcome.batch_rank == 0
        assert bulk_outcome.wait_seconds == 0.0  # rode the same batch
        assert bulk_outcome.batch_seq == urgent_outcome.batch_seq
        stats = fleet.stats("alpha")
        assert stats.lane("deadline").wait.max == 0.0


class TestFleetCommitMode:
    def test_per_model_commit_mode(self):
        committed = fit_binary(_BINARY)
        reference = fit_binary(_BINARY)
        stateless = fit_binary(_BINARY_B, seed=2)
        registry = ModelRegistry()
        registry.register("committed", trainer=committed)
        registry.register("stateless", trainer=stateless)
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_batch=1),
            n_workers=1,
            autostart=False,
        )
        fleet.configure_model("committed", commit_mode=True)
        sets = [np.array([1, 2]), np.array([5, 6]), np.array([2, 9])]
        futures = [fleet.submit("committed", s) for s in sets]
        untouched = fleet.submit("stateless", np.array([7, 8]))
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()
        acc = np.empty(0, dtype=np.int64)
        for removed, future in zip(sets, futures):
            outcome = future.result(timeout=30)
            assert outcome.committed
            acc = np.union1d(acc, removed)
            expected = reference.remove(acc, method="priu").weights
            np.testing.assert_allclose(
                outcome.weights, expected, atol=1e-10, rtol=0.0
            )
        assert committed.n_samples == reference.n_samples - acc.size
        # The stateless model stayed stateless.
        assert not untouched.result(timeout=30).committed
        assert stateless.n_samples == _BINARY_B.features.shape[0]

    def test_configure_after_traffic_is_rejected(self):
        registry = ModelRegistry()
        registry.register("m", trainer=fit_binary())
        fleet = FleetServer(registry, autostart=False)
        fleet.submit("m", [1])
        with pytest.raises(RuntimeError, match="already has traffic"):
            fleet.configure_model("m", commit_mode=True)
        fleet.close()

    def test_history_not_replayed_onto_rewritten_checkpoint_space(
        self, tmp_path
    ):
        """Commit -> save_dirty -> evict -> reload: a request validated
        against the rewritten checkpoint must NOT be translated through
        commits that checkpoint already contains (regression: current id
        0 was silently dropped as 'already deleted')."""
        trainer = fit_binary(_BINARY)
        checkpoint = tmp_path / "m"
        trainer.save_checkpoint(checkpoint)
        registry = ModelRegistry()
        registry.register(
            "m",
            checkpoint=checkpoint,
            features=_BINARY.features,
            labels=_BINARY.labels,
            method="priu",
        )
        with FleetServer(
            registry,
            AdmissionPolicy(max_batch=4),
            method="priu",
            n_workers=1,
            commit_mode=True,
        ) as fleet:
            first = fleet.resolve("m", [0, 1, 2], timeout=30)
            assert first.committed
            assert registry.save_dirty().keys() == {"m"}
            assert registry.evict("m")  # clean again: cold-start next hit
            # New space id 0 is original sample 3 — it must be deleted,
            # not dropped as "already committed".
            second = fleet.resolve("m", [0], timeout=30)
        assert np.array_equal(second.removed, [0])
        live = registry.get("m")
        assert np.array_equal(np.sort(live.deletion_log), [0, 1, 2, 3])
        assert live.n_samples == _BINARY.features.shape[0] - 4

    def test_cold_submits_are_translated_through_same_epoch_commits(
        self, tmp_path
    ):
        """Requests submitted while the model is still cold are tagged
        with the archive's id space — commits that land between their
        submit and their dispatch (same epoch) must still translate them
        (regression: the archive tag sorted *above* same-epoch commits,
        exempting queued cold requests from remapping)."""
        trainer = fit_binary(_BINARY)
        checkpoint = tmp_path / "m"
        trainer.save_checkpoint(checkpoint)
        registry = ModelRegistry()
        registry.register(
            "m",
            checkpoint=checkpoint,
            features=_BINARY.features,
            labels=_BINARY.labels,
            method="priu",
        )
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_batch=1),
            method="priu",
            n_workers=1,
            commit_mode=True,
            autostart=False,
        )
        # All three enqueue before the model ever loads: archive space.
        first = fleet.submit("m", [0, 1, 2])
        overlap = fleet.submit("m", [0])  # committed by the first batch
        shifted = fleet.submit("m", [4])  # survives, shifts down by 3
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()
        assert np.array_equal(first.result(timeout=30).removed, [0, 1, 2])
        assert overlap.result(timeout=30).removed.size == 0
        assert np.array_equal(shifted.result(timeout=30).removed, [4 - 3])
        live = registry.get("m")
        assert np.array_equal(np.sort(live.deletion_log), [0, 1, 2, 4])
        assert live.n_samples == _BINARY.features.shape[0] - 4

    def test_queued_request_remaps_across_evict_reload_within_epoch(
        self, tmp_path
    ):
        """save_dirty -> request queued against the clean resident model
        -> evict -> reload -> commit: store version numbers restart on
        reload (``load_store`` rebuilds records via ``add()``), so the
        queued request's tag must not outrank the post-reload commit's
        key (regression: the request was tagged with the pre-eviction
        in-memory version, the commit recorded at the lower reloaded
        version was skipped by remap, and the wrong sample was silently
        deleted)."""
        trainer = fit_binary(_BINARY)
        checkpoint = tmp_path / "m"
        trainer.save_checkpoint(checkpoint)
        registry = ModelRegistry()
        registry.register(
            "m",
            checkpoint=checkpoint,
            features=_BINARY.features,
            labels=_BINARY.labels,
            method="priu",
        )
        # Epoch 0: commit originals {0,1,2} directly on the loaded
        # trainer, then re-checkpoint (epoch 1, clean, still resident).
        registry.get("m").remove([0, 1, 2], commit=True)
        assert registry.save_dirty().keys() == {"m"}
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_batch=1),
            method="priu",
            n_workers=1,
            commit_mode=True,
            autostart=False,
        )
        # Queued against the clean *resident* model, whose in-memory
        # store version exceeds what a reload will restart it to.
        parked = fleet.submit("m", [5], lane="bulk")
        assert registry.evict("m")  # clean: versions reset on reload
        # Dispatches ahead of the parked request (deadline lane) on the
        # freshly reloaded trainer, committing new-space id 0.
        overtake = fleet.submit("m", [0], lane="deadline")
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()
        assert np.array_equal(overtake.result(timeout=30).removed, [0])
        # The parked request addressed post-first-commit id 5 (original
        # 8); the overtaking commit removed one lower id, so it must
        # execute as 4 — not as the untranslated 5.
        assert np.array_equal(parked.result(timeout=30).removed, [4])
        live = registry.get("m")
        assert np.array_equal(np.sort(live.deletion_log), [0, 1, 2, 3, 8])
        assert live.n_samples == _BINARY.features.shape[0] - 5

    def test_blocked_submitter_registers_its_key_before_waiting(self):
        """A submitter parked on the per-model backpressure semaphore must
        already be counted in the commit tracker's in-flight key set —
        otherwise a concurrent dispatch can prune commit-history entries
        the parked request still needs, and its ids later dispatch
        unremapped."""
        registry = ModelRegistry()
        registry.register("m", trainer=fit_binary(_BINARY))
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_pending=1),
            commit_mode=True,
            autostart=False,
        )
        fleet.submit("m", [1])
        thread = threading.Thread(
            target=lambda: fleet.submit("m", [2], block=True, timeout=30),
            daemon=True,
        )
        thread.start()
        with fleet._sched:
            tracker = fleet._queues["m"].tracker
        def registered() -> int:
            with tracker._lock:
                return sum(tracker._inflight_keys.values())
        # reprolint: allow[R005] bounded spin waiting for background threads to park; no scheduling depends on the value
        deadline = time.monotonic() + 5
        # reprolint: allow[R005] bounded spin waiting for background threads to park; no scheduling depends on the value
        while time.monotonic() < deadline and registered() < 2:
            # reprolint: allow[R005] bounded spin waiting for background threads to park; no scheduling depends on the value
            time.sleep(0.001)
        # Queued request + parked submitter, both pinned before dispatch.
        assert registered() == 2
        fleet.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert fleet.flush(timeout=30)
        fleet.close()
        assert fleet.stats("m").answered == 2
        assert registered() == 0

    def test_queued_requests_remap_across_commits(self):
        trainer = fit_binary(_BINARY)
        n = trainer.n_samples
        registry = ModelRegistry()
        registry.register("m", trainer=trainer)
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_batch=1),
            n_workers=1,
            commit_mode=True,
            autostart=False,
        )
        first = fleet.submit("m", np.arange(5))
        high = fleet.submit("m", [n - 3])
        low = fleet.submit("m", [7])
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()
        assert first.result(timeout=30).committed
        # Translated sets, reported in the space their batch executed in.
        assert np.array_equal(high.result(timeout=30).removed, [n - 3 - 5])
        assert np.array_equal(low.result(timeout=30).removed, [7 - 5])
        assert np.array_equal(
            np.sort(trainer.deletion_log), np.r_[np.arange(5), 7, n - 3]
        )
