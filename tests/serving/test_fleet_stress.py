"""Seeded stress + contract tests for the serving fleet (ISSUE 4).

Two layers:

* **Contract** — for every model in a deterministic mixed-traffic run,
  each request's answer must be *bit-identical* to serving that model's
  request subsequence (same order, same lanes, same policy) through a
  dedicated single-model :class:`DeletionServer`; and deadline-lane
  requests must never wait on another lane's coalescing delay.  Proved
  under the :class:`harness.FakeClock` — no real sleeps anywhere here.

* **Stress** — :class:`harness.StressDriver` interleaves ≥200 randomized
  submits / clock advances / flushes / cancels / stats snapshots across
  3 models × 2 lanes (one model in commit mode) under 5 fixed seeds, then
  closes and checks the serving invariants.  A violation raises with the
  seed and the full operation trace, so any failure replays exactly.
"""

import numpy as np
import pytest

from harness import FakeClock, StressDriver
from repro import (
    AdmissionPolicy,
    DeletionServer,
    FleetServer,
    IncrementalTrainer,
    ModelRegistry,
)
from repro.datasets import make_binary_classification, make_regression

_BINARY = make_binary_classification(400, 10, separation=1.0, seed=21)
_BINARY_B = make_binary_classification(320, 8, separation=1.2, seed=22)
_LINEAR = make_regression(360, 6, noise=0.05, seed=23)


def fit_model(kind: str) -> IncrementalTrainer:
    """Deterministic fits: two calls with the same kind are bit-identical."""
    if kind == "binary":
        trainer = IncrementalTrainer(
            "binary_logistic",
            learning_rate=0.1,
            regularization=0.01,
            batch_size=40,
            n_iterations=50,
            seed=0,
            method="priu",
        )
        trainer.fit(_BINARY.features, _BINARY.labels)
    elif kind == "binary-b":
        trainer = IncrementalTrainer(
            "binary_logistic",
            learning_rate=0.08,
            regularization=0.02,
            batch_size=32,
            n_iterations=45,
            seed=2,
            method="priu",
        )
        trainer.fit(_BINARY_B.features, _BINARY_B.labels)
    elif kind == "linear":
        trainer = IncrementalTrainer(
            "linear",
            learning_rate=0.05,
            regularization=0.01,
            batch_size=36,
            n_iterations=40,
            seed=1,
            method="priu",
        )
        trainer.fit(_LINEAR.features, _LINEAR.labels)
    else:  # pragma: no cover - test bug
        raise ValueError(kind)
    return trainer


# ----------------------------------------------------------------- contract
class TestFleetContract:
    """The ISSUE 4 acceptance bar, deterministic under the fake clock."""

    def test_mixed_traffic_is_bit_identical_to_dedicated_servers(self):
        kinds = {"m-bin": "binary", "m-lin": "linear", "m-commit": "binary-b"}
        trainers = {mid: fit_model(kind) for mid, kind in kinds.items()}
        registry = ModelRegistry()
        for model_id, trainer in trainers.items():
            registry.register(model_id, trainer=trainer)
        policy = AdmissionPolicy(max_batch=4, max_delay_seconds=0.02)
        clock = FakeClock()
        fleet = FleetServer(
            registry,
            policy,
            method="priu",
            n_workers=1,
            clock=clock,
            autostart=False,
        )
        fleet.configure_model("m-commit", commit_mode=True)

        # Mixed traffic: seeded, spread over models and lanes, all
        # submitted before start so batch formation is deterministic.
        rng = np.random.default_rng(17)
        model_ids = list(kinds)
        per_model: dict[str, list] = {mid: [] for mid in model_ids}
        bound = {mid: trainers[mid].n_samples for mid in model_ids}
        for _ in range(48):
            model_id = model_ids[rng.integers(len(model_ids))]
            lane = "deadline" if rng.random() < 0.3 else "bulk"
            k = int(rng.integers(1, 4))
            if bound[model_id] <= k + 1:
                continue
            ids = np.sort(
                rng.choice(bound[model_id], size=k, replace=False)
            ).astype(np.int64)
            if model_id == "m-commit":
                bound[model_id] -= k  # conservative post-commit bound
            future = fleet.submit(model_id, ids, lane=lane)
            per_model[model_id].append((ids, lane, future))
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()

        for model_id, submissions in per_model.items():
            assert len(submissions) >= 8  # the traffic really was mixed
            # Dedicated single-model server fed the same subsequence, in
            # the same order, under the same policy and its own fake clock.
            if model_id == "m-commit":
                reference_trainer = fit_model(kinds[model_id])
            else:
                reference_trainer = trainers[model_id]  # stateless: reuse
            reference = DeletionServer(
                reference_trainer,
                policy,
                method="priu",
                commit_mode=(model_id == "m-commit"),
                autostart=False,
                clock=FakeClock(),
            )
            reference_futures = [
                reference.submit(ids, lane=lane)
                for ids, lane, _ in submissions
            ]
            reference.start()
            assert reference.flush(timeout=30)
            reference.close()
            for (ids, lane, fleet_future), reference_future in zip(
                submissions, reference_futures
            ):
                fleet_outcome = fleet_future.result(timeout=30)
                reference_outcome = reference_future.result(timeout=30)
                # Bit-identical, not merely allclose.
                assert np.array_equal(
                    fleet_outcome.weights, reference_outcome.weights
                ), f"{model_id}: served weights diverge for {ids}"
                assert np.array_equal(
                    fleet_outcome.removed, reference_outcome.removed
                )
                # Deadline-lane requests never wait on another lane's
                # coalescing delay.
                if lane == "deadline":
                    assert fleet_outcome.wait_seconds == 0.0
        # And the committed model's final state matches its reference.
        assert np.array_equal(
            trainers["m-commit"].weights_, reference_trainer.weights_
        )
        assert np.array_equal(
            trainers["m-commit"].deletion_log, reference_trainer.deletion_log
        )

    def test_deadline_p99_zero_bulk_waits_budget_under_fake_clock(self):
        """Lane SLAs read straight off the per-lane stats: deadline wait
        is exactly zero, lone-bulk waits are exactly the budget."""
        trainer = fit_model("binary")
        registry = ModelRegistry()
        registry.register("m", trainer=trainer)
        clock = FakeClock()
        policy = AdmissionPolicy(max_batch=16, max_delay_seconds=0.03)
        fleet = FleetServer(
            registry, policy, n_workers=1, clock=clock, autostart=False
        )
        fleet.submit("m", [1, 2], lane="bulk")
        fleet.start()
        assert fleet.flush(timeout=30)  # lone bulk: waits out the budget
        fleet.submit("m", [3], lane="deadline")
        assert fleet.flush(timeout=30)  # lone deadline: zero wait
        fleet.close()
        lanes = fleet.stats("m").lanes
        assert lanes["bulk"].wait.p99 == 0.03
        assert lanes["deadline"].wait.p99 == 0.0
        assert lanes["deadline"].latency.p99 < lanes["bulk"].latency.p50


# ------------------------------------------------------------------- stress
STRESS_SEEDS = (101, 202, 303, 404, 505)


@pytest.mark.parametrize("seed", STRESS_SEEDS)
def test_stress_randomized_interleaving(seed):
    """≥200 randomized ops across 3 models × 2 lanes, invariants checked.

    One model runs in commit mode (freshly fitted per seed — commits
    mutate it); the other two serve stateless counterfactuals and are
    double-checked against direct ``remove`` calls afterwards.
    """
    trainers = {
        "stress-bin": fit_model("binary"),
        "stress-lin": fit_model("linear"),
        "stress-commit": fit_model("binary-b"),
    }
    registry = ModelRegistry()
    for model_id, trainer in trainers.items():
        registry.register(model_id, trainer=trainer)
    clock = FakeClock()
    fleet = FleetServer(
        registry,
        AdmissionPolicy(max_batch=4, max_delay_seconds=0.02, max_pending=8),
        method="priu",
        n_workers=2,
        clock=clock,
        autostart=False,
    )
    fleet.configure_model("stress-commit", commit_mode=True)
    fleet.start()
    driver = StressDriver(
        fleet,
        model_ids=list(trainers),
        n_samples={mid: t.n_samples for mid, t in trainers.items()},
        commit_models={"stress-commit"},
        lanes=("bulk", "deadline"),
        seed=seed,
        clock=clock,
    )
    report = driver.run(n_ops=220)

    # The run must genuinely exercise the surface the invariants protect.
    assert len(report.submitted) >= 100
    touched_models = {s.model_id for s in report.submitted}
    touched_lanes = {s.lane for s in report.submitted}
    assert touched_models == set(trainers)
    assert touched_lanes == {"bulk", "deadline"}

    # Answers of the stateless models match direct single-request serving.
    for submitted in report.served():
        if submitted.model_id == "stress-commit":
            continue
        outcome = submitted.future.result()
        expected = trainers[submitted.model_id].remove(
            submitted.ids, method="priu"
        )
        np.testing.assert_allclose(
            outcome.weights, expected.weights, atol=1e-10, rtol=0.0,
            err_msg=f"seed {seed}: {submitted.model_id} {submitted.ids}",
        )


def test_stress_violations_carry_seed_and_trace():
    """The harness's failure report is actionable: seed + full op trace."""
    trainer = fit_model("binary")
    registry = ModelRegistry()
    registry.register("m", trainer=trainer)
    fleet = FleetServer(registry, autostart=True)
    driver = StressDriver(
        fleet,
        model_ids=["m"],
        n_samples={"m": trainer.n_samples},
        seed=42,
    )
    driver._trace("synthetic op")
    with pytest.raises(AssertionError) as excinfo:
        driver._check(False, "synthetic violation")
    message = str(excinfo.value)
    assert "seed: 42" in message
    assert "synthetic op" in message
    fleet.close()


# -------------------------------------------------------------------- chaos
CHAOS_SEEDS = (11, 23, 37, 41, 53)


@pytest.fixture(scope="module")
def chaos_checkpoint(tmp_path_factory):
    """A saved checkpoint for the model the chaos ops evict and reload."""
    directory = tmp_path_factory.mktemp("chaos") / "ckpt"
    fit_model("binary").save_checkpoint(directory)
    return directory


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_stress_chaos_load_faults(seed, chaos_checkpoint):
    """Randomized traffic with injected load faults stays correct.

    One checkpoint-backed model is randomly evicted and armed with load
    failures — sometimes one transient fault (retried transparently),
    sometimes enough to trip its circuit breaker.  The invariants must
    hold throughout (including quarantine accounting), every *answered*
    request must still match direct serving bit-for-bit, and the faults
    must never leak onto the healthy models.
    """
    from repro.serving import RetryPolicy
    from repro.testing import FlakyLoader

    flaky = FlakyLoader()
    registry = ModelRegistry(loader=flaky)
    registry.register(
        "chaos-bin",
        checkpoint=chaos_checkpoint,
        features=_BINARY.features,
        labels=_BINARY.labels,
    )
    live = {
        "stress-lin": fit_model("linear"),
        "stress-commit": fit_model("binary-b"),
    }
    for model_id, trainer in live.items():
        registry.register(model_id, trainer=trainer)
    clock = FakeClock()
    retry = RetryPolicy(
        load_attempts=2,
        backoff_seconds=0.01,
        quarantine_after=2,
        probe_interval_seconds=0.5,
    )
    fleet = FleetServer(
        registry,
        AdmissionPolicy(max_batch=4, max_delay_seconds=0.02, max_pending=8),
        method="priu",
        n_workers=2,
        clock=clock,
        retry=retry,
        autostart=False,
    )
    fleet.configure_model("stress-commit", commit_mode=True)
    fleet.start()
    driver = StressDriver(
        fleet,
        model_ids=["chaos-bin", "stress-lin", "stress-commit"],
        n_samples={
            "chaos-bin": _BINARY.features.shape[0],
            "stress-lin": live["stress-lin"].n_samples,
            "stress-commit": live["stress-commit"].n_samples,
        },
        commit_models={"stress-commit"},
        lanes=("bulk", "deadline"),
        seed=seed,
        clock=clock,
        flaky=flaky,
        chaos_models={"chaos-bin"},
    )
    report = driver.run(n_ops=260)

    # Chaos actually happened: faults were armed and some fired.
    assert report.load_faults > 0
    assert flaky.failures > 0
    # Healthy models never saw an injected fault.
    for model_id in live:
        assert fleet.stats(model_id).failed == 0

    # Every successfully answered request is still bit-exact against
    # direct serving — reloads, retries and probes change nothing.
    reference = {
        "chaos-bin": fit_model("binary"),
        "stress-lin": live["stress-lin"],
    }
    for submitted in report.served():
        if submitted.model_id == "stress-commit":
            continue
        outcome = submitted.future.result()
        expected = reference[submitted.model_id].remove(
            submitted.ids, method="priu"
        )
        np.testing.assert_allclose(
            outcome.weights, expected.weights, atol=1e-10, rtol=0.0,
            err_msg=f"seed {seed}: {submitted.model_id} {submitted.ids}",
        )


def test_chaos_models_must_not_overlap_commit_models():
    from repro.testing import FlakyLoader

    trainer = fit_model("binary")
    registry = ModelRegistry()
    registry.register("m", trainer=trainer)
    fleet = FleetServer(registry, autostart=False)
    with pytest.raises(ValueError, match="disjoint"):
        StressDriver(
            fleet,
            model_ids=["m"],
            n_samples={"m": trainer.n_samples},
            commit_models={"m"},
            flaky=FlakyLoader(),
            chaos_models={"m"},
        )
    fleet.close()
