"""Fleet maintenance scheduling, warm-start, and the starvation guard.

Three surfaces from ISSUE 5:

* **Background maintenance** — ``FleetServer(maintenance=...)`` schedules
  ``maintain()`` for dirty-and-idle resident models behind the
  lowest-priority ``maintenance`` lane; explicit ``fleet.maintain()``
  returns a future of the report; answers stay *bit-identical* to a
  never-maintained reference server through any commit/maintain
  interleaving (re-pack moves values, never changes them).
* **Registry warm-start** — ``warm_start(n)`` pre-loads the hottest N
  models by admission history instead of paying first-request latency.
* **Starvation guard** — ``max_preemption_ratio`` keeps a deadline flood
  from pinning bulk traffic at its full coalescing budget, in both the
  single-model server and the fleet.
"""

import numpy as np
import pytest

from harness import FakeClock, StressDriver
from repro import (
    AdmissionPolicy,
    DeletionServer,
    FleetServer,
    IncrementalTrainer,
    MaintenancePolicy,
    ModelRegistry,
)
from repro.datasets import (
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
)

_MULTI = make_multiclass_classification(330, 12, n_classes=3, seed=61)
_BINARY = make_binary_classification(400, 10, separation=1.0, seed=62)
_LINEAR = make_regression(300, 6, noise=0.05, seed=63)


def fit_multinomial() -> IncrementalTrainer:
    """Dense multinomial: commits leave slot-map garbage, answers exact."""
    trainer = IncrementalTrainer(
        "multinomial_logistic",
        learning_rate=0.05,
        regularization=0.01,
        batch_size=40,
        n_iterations=50,
        n_classes=3,
        seed=0,
        method="priu",
        plan_refresh_threshold=1.0,
    )
    trainer.fit(_MULTI.features, _MULTI.labels)
    return trainer


def fit_binary() -> IncrementalTrainer:
    trainer = IncrementalTrainer(
        "binary_logistic",
        learning_rate=0.1,
        regularization=0.01,
        batch_size=40,
        n_iterations=50,
        seed=0,
        method="priu",
    )
    trainer.fit(_BINARY.features, _BINARY.labels)
    return trainer


# ---------------------------------------------------------- fleet scheduling
class TestFleetMaintenance:
    def _fleet(self, trainer, maintenance=None, **kwargs):
        registry = ModelRegistry()
        registry.register("m", trainer=trainer)
        clock = FakeClock()
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_batch=4, max_delay_seconds=0.02),
            method="priu",
            n_workers=2,
            clock=clock,
            maintenance=maintenance,
            autostart=False,
            **kwargs,
        )
        fleet.configure_model("m", commit_mode=True)
        return fleet, clock

    def test_explicit_maintain_returns_report_future(self):
        trainer = fit_multinomial()
        fleet, _ = self._fleet(trainer)
        fleet.start()
        for i in range(4):
            fleet.resolve("m", [i * 5, i * 5 + 1], timeout=30)
        assert trainer.maintenance_cost().slot_garbage_rows > 0
        report = fleet.maintain("m").result(timeout=30)
        assert "repack" in report.performed
        assert trainer.maintenance_cost().slot_garbage_rows == 0
        stats = fleet.maintenance_stats("m")
        assert stats["runs"] == 1 and stats["pending"] == 0
        assert stats["last"]["performed"] == list(report.performed)
        fleet.close()

    def test_auto_scheduling_after_committed_batches(self):
        trainer = fit_multinomial()
        fleet, _ = self._fleet(trainer, maintenance=MaintenancePolicy())
        fleet.start()
        futures = [fleet.submit("m", [i * 3, i * 3 + 1]) for i in range(6)]
        assert fleet.flush(timeout=30)
        for future in futures:
            future.result(timeout=30)
        # close() drains the scheduled background runs before stopping.
        fleet.close()
        stats = fleet.maintenance_stats("m")
        assert stats["runs"] >= 1
        assert stats["pending"] == 0
        assert trainer.maintenance_cost().slot_garbage_rows == 0
        # The runs are visible in the maintenance lane's ordinary stats,
        # and the lane split still sums to the aggregate.
        snapshot = fleet.stats("m")
        lane = snapshot.lane("maintenance")
        assert lane.answered == stats["runs"]
        assert snapshot.submitted == (
            snapshot.answered + snapshot.failed + snapshot.cancelled
        )

    def test_thresholds_gate_auto_scheduling(self):
        trainer = fit_multinomial()
        fleet, _ = self._fleet(
            trainer,
            maintenance=MaintenancePolicy(max_slot_garbage_rows=10_000),
        )
        fleet.start()
        for i in range(4):
            fleet.resolve("m", [i * 4], timeout=30)
        fleet.close()
        assert fleet.maintenance_stats("m")["runs"] == 0
        assert trainer.maintenance_cost().slot_garbage_rows > 0

    def test_maintenance_cannot_delay_queued_traffic(self):
        """With requests queued, the scheduler never picks maintenance."""
        trainer = fit_multinomial()
        fleet, _ = self._fleet(trainer)
        for i in range(3):
            fleet.submit("m", [i * 6, i * 6 + 1])
        maintenance_future = fleet.maintain("m")
        futures = [fleet.submit("m", [40 + i]) for i in range(3)]
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()
        report = maintenance_future.result(timeout=30)
        # Every deletion answered; maintenance ran after the queue drained
        # (it saw every commit's garbage, not just the pre-maintain ones).
        for future in futures:
            assert future.result(timeout=30).committed
        assert fleet.maintenance_stats("m")["runs"] == 1
        assert report.cost_after.slot_garbage_rows == 0
        assert trainer.maintenance_cost().slot_garbage_rows == 0

    def test_maintain_validates_model_and_closed_state(self):
        trainer = fit_multinomial()
        fleet, _ = self._fleet(trainer)
        with pytest.raises(ValueError, match="unknown model id"):
            fleet.maintain("nope")
        fleet.start()
        fleet.close()
        with pytest.raises(RuntimeError, match="closed"):
            fleet.maintain("m")
        with pytest.raises(ValueError, match="unknown model id"):
            fleet.maintenance_stats("nope")

    def test_describe_exposes_maintenance_cost(self):
        trainer = fit_multinomial()
        fleet, _ = self._fleet(trainer)
        fleet.start()
        fleet.resolve("m", [1, 2], timeout=30)
        fleet.close()
        info = fleet.registry.describe("m")
        assert info["maintenance_cost"]["slot_garbage_rows"] == (
            trainer.maintenance_cost().slot_garbage_rows
        )
        assert info["admissions"] >= 1

    def test_registry_plan_bytes_shrink_after_maintenance(self):
        trainer = fit_multinomial()
        fleet, _ = self._fleet(trainer)
        fleet.start()
        for i in range(5):
            fleet.resolve("m", [i * 7, i * 7 + 1], timeout=30)
        before = fleet.registry.stats()["resident_plan_bytes"]
        fleet.maintain("m").result(timeout=30)
        after = fleet.registry.stats()["resident_plan_bytes"]
        assert after < before
        fleet.close()


class TestMaintenanceContract:
    def test_interleaved_maintenance_is_bit_identical_to_reference(self):
        """Commit/maintain interleavings never change a served answer."""
        trainer = fit_multinomial()
        reference_trainer = fit_multinomial()
        registry = ModelRegistry()
        registry.register("m", trainer=trainer)
        policy = AdmissionPolicy(max_batch=4, max_delay_seconds=0.02)
        fleet = FleetServer(
            registry, policy, method="priu", n_workers=1,
            clock=FakeClock(), autostart=False,
        )
        fleet.configure_model("m", commit_mode=True)
        reference = DeletionServer(
            reference_trainer, policy, method="priu",
            commit_mode=True, autostart=False, clock=FakeClock(),
        )
        rng = np.random.default_rng(5)
        bound = trainer.n_samples
        rounds = []
        for _ in range(3):
            batch = []
            for _ in range(6):
                k = int(rng.integers(1, 4))
                ids = np.sort(rng.choice(bound, size=k, replace=False))
                bound -= k
                batch.append(ids.astype(np.int64))
            rounds.append(batch)

        # Bit-identity holds within a batch-size class, so both sides
        # must coalesce identically.  Round one queues everything before
        # start() — both workers deterministically take max_batch-sized
        # batches off identical queues.  Later rounds race a *running*
        # worker, where batch composition is scheduler timing; resolving
        # each request before submitting the next pins both sides to
        # singleton batches instead.
        fleet_outcomes, reference_outcomes = [], []
        started = False
        for batch in rounds:
            if not started:
                fleet_futures = [fleet.submit("m", ids) for ids in batch]
                reference_futures = [reference.submit(ids) for ids in batch]
                fleet.start()
                reference.start()
                started = True
                assert fleet.flush(timeout=30)
                assert reference.flush(timeout=30)
                fleet_outcomes += [
                    f.result(timeout=30) for f in fleet_futures
                ]
                reference_outcomes += [
                    f.result(timeout=30) for f in reference_futures
                ]
            else:
                for ids in batch:
                    fleet_outcomes.append(
                        fleet.submit("m", ids).result(timeout=30)
                    )
                    reference_outcomes.append(
                        reference.submit(ids).result(timeout=30)
                    )
            # Maintain between rounds — the reference never does.
            fleet.maintain("m").result(timeout=30)
        fleet.close()
        reference.close()
        for got, want in zip(fleet_outcomes, reference_outcomes):
            assert np.array_equal(got.weights, want.weights)
            assert np.array_equal(got.removed, want.removed)
        assert np.array_equal(
            trainer.deletion_log, reference_trainer.deletion_log
        )
        assert np.array_equal(trainer.weights_, reference_trainer.weights_)
        assert trainer.maintenance_cost().slot_garbage_rows == 0
        assert reference_trainer.maintenance_cost().slot_garbage_rows > 0


class TestReceiptClocks:
    def test_default_clock_keeps_wall_time_receipts(self):
        """Receipts persist across restarts: commit-mode servers always
        inject their serving clock, and the stock monotonic clock stamps
        receipts through ``Clock.timestamp()`` — wall time, never
        process-relative perf_counter seconds."""
        import time as _time

        trainer = fit_multinomial()
        with DeletionServer(trainer, commit_mode=True) as server:
            server.submit([1, 2]).result(timeout=30)
        assert trainer.clock is server._clock  # serving clock injected
        timestamp = trainer.commit_receipts[0].timestamp
        # reprolint: allow[R005] this asserts receipts carry wall time — comparing against the real clock IS the test
        assert abs(timestamp - _time.time()) < 600.0

    def test_injected_clock_stamps_receipts(self):
        """An explicitly injected (fake) clock also stamps receipts, so
        fake-clock tests get deterministic audit trails."""
        trainer = fit_multinomial()
        clock = FakeClock(start=500.0)
        with DeletionServer(
            trainer, commit_mode=True, clock=clock
        ) as server:
            server.submit([1, 2]).result(timeout=30)
        assert trainer.commit_receipts[0].timestamp >= 500.0


STRESS_SEEDS = (11, 22, 33)


@pytest.mark.parametrize("seed", STRESS_SEEDS)
def test_stress_with_maintenance_interleaved(seed):
    """Randomized submits × commits × maintain ops keep every invariant."""
    trainers = {
        "s-multi": fit_multinomial(),
        "s-bin": fit_binary(),
    }
    registry = ModelRegistry()
    for model_id, trainer in trainers.items():
        registry.register(model_id, trainer=trainer)
    clock = FakeClock()
    fleet = FleetServer(
        registry,
        AdmissionPolicy(max_batch=4, max_delay_seconds=0.02, max_pending=8),
        method="priu",
        n_workers=2,
        clock=clock,
        maintenance=MaintenancePolicy(),
        autostart=False,
    )
    fleet.configure_model("s-multi", commit_mode=True)
    fleet.start()
    driver = StressDriver(
        fleet,
        model_ids=list(trainers),
        n_samples={mid: t.n_samples for mid, t in trainers.items()},
        commit_models={"s-multi"},
        lanes=("bulk", "deadline"),
        seed=seed,
        clock=clock,
        maintain_models={"s-multi"},
    )
    report = driver.run(n_ops=200)
    assert report.maintenance  # the maintain op genuinely fired
    for _, future in report.maintenance:
        assert future.result().cost_after.slot_garbage_rows == 0
    # Stateless model answers still match direct serving (batched vs
    # single-request replay differs only at BLAS reduction order).
    for submitted in report.served():
        if submitted.model_id != "s-bin":
            continue
        outcome = submitted.future.result()
        expected = trainers["s-bin"].remove(submitted.ids, method="priu")
        np.testing.assert_allclose(
            outcome.weights, expected.weights, atol=1e-10, rtol=0.0,
            err_msg=f"seed {seed}: s-bin {submitted.ids}",
        )


# -------------------------------------------------------------- warm start
class TestWarmStart:
    def _registry(self, tmp_path, n_models=4, max_resident=None):
        trainer = IncrementalTrainer(
            "linear",
            learning_rate=0.05,
            regularization=0.01,
            batch_size=32,
            n_iterations=30,
            seed=0,
            method="priu",
        )
        trainer.fit(_LINEAR.features, _LINEAR.labels)
        registry = ModelRegistry(max_resident=max_resident)
        for i in range(n_models):
            directory = tmp_path / f"model-{i}"
            trainer.save_checkpoint(directory)
            registry.register(
                f"model-{i}",
                checkpoint=directory,
                features=_LINEAR.features,
                labels=_LINEAR.labels,
            )
        return registry

    def test_preloads_hottest_by_admission_history(self, tmp_path):
        registry = self._registry(tmp_path)
        with FleetServer(registry, n_workers=1) as fleet:
            for _ in range(5):
                fleet.resolve("model-2", [1, 2], timeout=30)
            for _ in range(2):
                fleet.resolve("model-0", [3], timeout=30)
            for model_id in list(registry.resident_ids):
                registry.evict(model_id)
            assert registry.resident_ids == ()
            loaded = fleet.warm_start(2)
            assert loaded == ("model-2", "model-0")  # hottest first
            assert set(registry.resident_ids) == {"model-2", "model-0"}
            # Warm models answer without a load on the request path.
            loads_before = registry.stats()["loads"]
            fleet.resolve("model-2", [4], timeout=30)
            assert registry.stats()["loads"] == loads_before

    def test_never_admitted_models_are_not_warmed(self, tmp_path):
        registry = self._registry(tmp_path)
        assert registry.warm_start(3) == ()

    def test_respects_resident_cap_and_explicit_hotness(self, tmp_path):
        registry = self._registry(tmp_path, max_resident=2)
        loaded = registry.warm_start(
            3, hotness={"model-3": 9, "model-1": 5, "model-0": 1}
        )
        assert loaded == ("model-3", "model-1")  # cap stopped the third
        assert set(registry.resident_ids) == {"model-3", "model-1"}
        with pytest.raises(ValueError):
            registry.warm_start(-1)

    def test_stops_warming_once_the_byte_cap_saturates(self, tmp_path):
        """Warming must never evict models already serving: a byte cap
        smaller than two plans stops the sweep after the first load
        triggers it, instead of churning the rest of the candidates
        through the LRU."""
        registry = self._registry(tmp_path)
        one_plan = registry.warm_start(1, hotness={"model-0": 1})
        assert one_plan == ("model-0",)
        plan_bytes = registry.stats()["resident_plan_bytes"]
        for model_id in list(registry.resident_ids):
            registry.evict(model_id)
        capped = ModelRegistry(max_plan_bytes=int(plan_bytes * 1.5))
        for i in range(4):
            capped.register(
                f"model-{i}",
                checkpoint=tmp_path / f"model-{i}",
                features=_LINEAR.features,
                labels=_LINEAR.labels,
            )
        hotness = {f"model-{i}": 10 - i for i in range(4)}
        loaded = capped.warm_start(4, hotness=hotness)
        # The second load saturated the cap (evicting the first would be
        # thrash), so the sweep stopped there.
        assert len(loaded) <= 2
        assert capped.stats()["evictions"] <= 1


# -------------------------------------------------------- starvation guard
class TestStarvationGuard:
    def _flood_server(self, ratio, n_deadline=8):
        policy = AdmissionPolicy(
            max_batch=1, max_delay_seconds=0.0, max_preemption_ratio=ratio
        )
        server = DeletionServer(
            fit_binary(), policy, method="priu",
            autostart=False, clock=FakeClock(),
        )
        bulk = server.submit([1, 2], lane="bulk")
        deadlines = [
            server.submit([10 + i], lane="deadline") for i in range(n_deadline)
        ]
        server.start()
        assert server.flush(timeout=30)
        server.close()
        return bulk.result(timeout=30), [
            f.result(timeout=30) for f in deadlines
        ]

    def test_unguarded_flood_pins_bulk_to_the_end(self):
        bulk, deadlines = self._flood_server(ratio=None)
        assert bulk.batch_seq > max(o.batch_seq for o in deadlines) - 1

    def test_guard_yields_bulk_mid_flood(self):
        bulk, deadlines = self._flood_server(ratio=0.5)
        # Debt 0.5 after the first preempting dispatch, 1.0 after the
        # second: the third dispatch must yield to the waiting bulk.
        assert bulk.batch_seq == 2
        # Deadline requests still dispatch in admission order around it.
        seqs = [o.batch_seq for o in deadlines]
        assert seqs == sorted(seqs)
        # max_batch=1 stays a hard cap: the yielded request takes its own
        # dispatch, it never rides along as a max_batch+1 overflow.
        assert bulk.batch_size == 1
        assert all(o.batch_size == 1 for o in deadlines)

    def test_zero_ratio_serves_oldest_bulk_with_every_batch(self):
        policy = AdmissionPolicy(
            max_batch=2, max_delay_seconds=0.0, max_preemption_ratio=0.0
        )
        server = DeletionServer(
            fit_binary(), policy, method="priu",
            autostart=False, clock=FakeClock(),
        )
        bulks = [server.submit([1 + i], lane="bulk") for i in range(3)]
        deadlines = [
            server.submit([50 + i], lane="deadline") for i in range(6)
        ]
        server.start()
        assert server.flush(timeout=30)
        server.close()
        bulk_seqs = sorted(f.result().batch_seq for f in bulks)
        # After the first preempting batch, every dispatch carries the
        # oldest waiting bulk request along.
        assert bulk_seqs[0] <= 1
        assert bulk_seqs[-1] <= len(set(
            f.result().batch_seq for f in deadlines
        ))

    def test_fleet_guard_yields_bulk_mid_flood(self):
        trainer = fit_binary()
        registry = ModelRegistry()
        registry.register("m", trainer=trainer)
        policy = AdmissionPolicy(
            max_batch=1, max_delay_seconds=0.0, max_preemption_ratio=0.5
        )
        fleet = FleetServer(
            registry, policy, method="priu", n_workers=1,
            clock=FakeClock(), autostart=False,
        )
        bulk = fleet.submit("m", [1, 2], lane="bulk")
        deadlines = [
            fleet.submit("m", [10 + i], lane="deadline") for i in range(8)
        ]
        fleet.start()
        assert fleet.flush(timeout=30)
        fleet.close()
        bulk_seq = bulk.result(timeout=30).batch_seq
        assert bulk_seq == 2
        seqs = [f.result(timeout=30).batch_seq for f in deadlines]
        assert seqs == sorted(seqs)

    def test_guarded_answers_match_unguarded(self):
        """The guard reorders dispatch, never arithmetic (the yielded
        request rides a K=2 batch, so agreement is at reduction-order
        level rather than bitwise)."""
        guarded, _ = self._flood_server(ratio=0.5)
        unguarded, _ = self._flood_server(ratio=None)
        np.testing.assert_allclose(
            guarded.weights, unguarded.weights, atol=1e-10, rtol=0.0
        )
