"""End-to-end tests for the DeletionServer request queue.

A small binary-logistic workload is fitted once per module; every test
drives the real worker thread and the real batched replay engine — no
mocks — so these tests double as an integration check of the whole
capture → compile → serve pipeline.

Timing-sensitive tests run on the :class:`harness.FakeClock`: time moves
only when the test moves it, so latency/wait assertions are *exact*
(``==``, not ``>=``-fuzzy) and the suite contains no real sleeps.
"""

import threading
import time

import numpy as np
import pytest

from harness import FakeClock
from repro import AdmissionPolicy, DeletionServer, IncrementalTrainer, Lane
from repro.datasets import make_binary_classification
from repro.serving import BackpressureError, ServedOutcome


@pytest.fixture(scope="module")
def trainer():
    data = make_binary_classification(500, 10, separation=1.0, seed=7)
    fitted = IncrementalTrainer(
        "binary_logistic",
        learning_rate=0.1,
        regularization=0.01,
        batch_size=50,
        n_iterations=80,
        seed=0,
    )
    fitted.fit(data.features, data.labels)
    return fitted


@pytest.fixture
def removal_sets(trainer):
    rng = np.random.default_rng(3)
    n = trainer.store.n_samples
    return [
        np.sort(rng.choice(n, size=5, replace=False)) for _ in range(10)
    ]


class TestAnswers:
    def test_served_matches_direct_remove(self, trainer, removal_sets):
        with DeletionServer(trainer, method="priu") as server:
            futures = [server.submit(s) for s in removal_sets]
            outcomes = [f.result(timeout=30) for f in futures]
        for removed, outcome in zip(removal_sets, outcomes):
            expected = trainer.remove(removed, method="priu").weights
            assert np.allclose(outcome.weights, expected, atol=1e-10)
            assert isinstance(outcome, ServedOutcome)
            assert np.array_equal(outcome.removed, removed)

    def test_outcome_timings_are_exact_under_fake_clock(
        self, trainer, removal_sets
    ):
        clock = FakeClock()
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=16, max_delay_seconds=0.02),
            autostart=False,
            clock=clock,
        )
        future = server.submit(removal_sets[0])
        server.start()
        assert server.flush(timeout=30)
        server.close()
        outcome = future.result(timeout=30)
        # The lone request waits out exactly its coalescing budget; the
        # dispatch itself consumes zero fake time.
        assert outcome.wait_seconds == 0.02
        assert outcome.latency_seconds == 0.02
        assert outcome.batch_size == 1
        assert outcome.batch_seq == 0 and outcome.batch_rank == 0
        assert outcome.lane == "bulk"

    def test_empty_removal_set_is_served(self, trainer):
        with DeletionServer(trainer, method="priu") as server:
            outcome = server.resolve([], timeout=30)
        assert np.allclose(outcome.weights, trainer.weights_, atol=1e-8)


class TestCoalescing:
    def test_preloaded_queue_coalesces_into_one_batch(
        self, trainer, removal_sets
    ):
        server = DeletionServer(
            trainer, AdmissionPolicy(max_batch=32), autostart=False
        )
        futures = [server.submit(s) for s in removal_sets]
        server.start()
        assert server.flush(timeout=30)
        sizes = {f.result().batch_size for f in futures}
        assert sizes == {len(removal_sets)}
        stats = server.stats()
        assert stats.batches == 1
        assert stats.mean_batch_size == len(removal_sets)
        server.close()

    def test_max_batch_is_respected(self, trainer, removal_sets):
        server = DeletionServer(
            trainer, AdmissionPolicy(max_batch=3), autostart=False
        )
        futures = [server.submit(s) for s in removal_sets[:9]]
        server.start()
        assert server.flush(timeout=30)
        assert all(f.result().batch_size <= 3 for f in futures)
        assert server.stats().batches >= 3
        server.close()

    def test_zero_delay_still_answers_everything(self, trainer, removal_sets):
        policy = AdmissionPolicy(max_batch=4, max_delay_seconds=0.0)
        with DeletionServer(trainer, policy) as server:
            futures = server.submit_many(removal_sets)
            results = [f.result(timeout=30) for f in futures]
        assert len(results) == len(removal_sets)

    def test_every_member_waits_exactly_the_shared_budget(
        self, trainer, removal_sets
    ):
        """All three preloaded requests dispatch together when the oldest
        runs out of budget — their waits are identical and exact."""
        clock = FakeClock()
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=16, max_delay_seconds=0.02),
            autostart=False,
            clock=clock,
        )
        futures = [server.submit(s) for s in removal_sets[:3]]
        server.start()
        assert server.flush(timeout=30)
        server.close()
        outcomes = [f.result(timeout=30) for f in futures]
        assert [o.wait_seconds for o in outcomes] == [0.02, 0.02, 0.02]
        assert [o.batch_rank for o in outcomes] == [0, 1, 2]
        assert {o.batch_seq for o in outcomes} == {0}

    def test_staggered_submissions_wait_from_their_own_enqueue(
        self, trainer, removal_sets
    ):
        """The batch dispatches when the *oldest* member's budget expires;
        a late joiner's measured wait is exactly the remainder."""
        clock = FakeClock()
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=16, max_delay_seconds=0.02),
            autostart=False,
            clock=clock,
        )
        early = server.submit(removal_sets[0])
        clock.advance(0.015)
        late = server.submit(removal_sets[1])
        server.start()
        assert server.flush(timeout=30)
        server.close()
        assert early.result(timeout=30).wait_seconds == 0.02
        assert late.result(timeout=30).wait_seconds == pytest.approx(0.005)


class TestLanes:
    def test_deadline_lane_forces_immediate_dispatch(
        self, trainer, removal_sets
    ):
        """A zero-delay lane in the batch preempts everyone's coalescing:
        the batch it joins leaves immediately (bulk rides along free)."""
        clock = FakeClock()
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=16, max_delay_seconds=0.05),
            autostart=False,
            clock=clock,
        )
        bulk = server.submit(removal_sets[0], lane="bulk")
        urgent = server.submit(removal_sets[1], lane="deadline")
        server.start()
        assert server.flush(timeout=30)
        server.close()
        assert urgent.result(timeout=30).wait_seconds == 0.0
        assert bulk.result(timeout=30).wait_seconds == 0.0  # rode along
        assert urgent.result().batch_size == 2

    def test_deadline_preempts_an_open_batch_mid_coalesce(
        self, trainer, removal_sets
    ):
        """Manual-clock interleaving: a bulk request is already coalescing
        (budget 20 ms) when a deadline request arrives 5 ms in — the open
        batch dispatches at 5 ms, not 20."""
        clock = FakeClock(auto_advance=False)
        policy = AdmissionPolicy(max_batch=16, max_delay_seconds=0.02)
        server = DeletionServer(trainer, policy, clock=clock)
        bulk = server.submit(removal_sets[0], lane="bulk")
        clock.advance(0.005)
        urgent = server.submit(removal_sets[1], lane="deadline")
        assert server.flush(timeout=30)
        server.close()
        assert urgent.result(timeout=30).wait_seconds == 0.0
        assert bulk.result(timeout=30).wait_seconds == pytest.approx(0.005)
        assert bulk.result().batch_size == 2

    def test_deadline_never_waits_behind_a_full_bulk_backlog(
        self, trainer, removal_sets
    ):
        """Six bulk requests queue ahead of one deadline request with
        max_batch=2: lane priority puts the deadline request in the very
        next dispatched batch, not behind three bulk batches."""
        clock = FakeClock()
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=2, max_delay_seconds=0.05),
            autostart=False,
            clock=clock,
        )
        bulk_futures = [
            server.submit(s, lane="bulk") for s in removal_sets[:6]
        ]
        urgent = server.submit(removal_sets[6], lane="deadline")
        server.start()
        assert server.flush(timeout=30)
        server.close()
        outcome = urgent.result(timeout=30)
        assert outcome.batch_seq == 0 and outcome.batch_rank == 0
        assert outcome.wait_seconds == 0.0
        # Bulk admission order is preserved among bulk requests.
        bulk_coords = [
            (f.result().batch_seq, f.result().batch_rank)
            for f in bulk_futures
        ]
        assert bulk_coords == sorted(bulk_coords)

    def test_unknown_lane_fails_at_submit(self, trainer, removal_sets):
        with DeletionServer(trainer) as server:
            with pytest.raises(ValueError, match="unknown lane"):
                server.submit(removal_sets[0], lane="vip")
        assert server.stats().submitted == 0

    def test_custom_lanes(self, trainer, removal_sets):
        policy = AdmissionPolicy(
            max_delay_seconds=0.03,
            lanes=(
                Lane("gold", max_delay_seconds=0.0, priority=0),
                Lane("silver", max_delay_seconds=None, priority=5),
            ),
            default_lane="silver",
        )
        clock = FakeClock()
        server = DeletionServer(
            trainer, policy, autostart=False, clock=clock
        )
        default = server.submit(removal_sets[0])
        server.start()
        assert server.flush(timeout=30)
        server.close()
        outcome = default.result(timeout=30)
        assert outcome.lane == "silver"
        assert outcome.wait_seconds == 0.03  # inherited policy budget


class TestBackpressure:
    def test_nonblocking_submit_raises_when_full(self, trainer, removal_sets):
        server = DeletionServer(
            trainer, AdmissionPolicy(max_pending=2), autostart=False
        )
        server.submit(removal_sets[0])
        server.submit(removal_sets[1])
        with pytest.raises(BackpressureError):
            server.submit(removal_sets[2], block=False)
        assert server.stats().rejected == 1
        # The two accepted requests still drain.
        server.start()
        assert server.flush(timeout=30)
        server.close()

    def test_blocking_submit_with_timeout_raises(self, trainer, removal_sets):
        server = DeletionServer(
            trainer, AdmissionPolicy(max_pending=1), autostart=False
        )
        server.submit(removal_sets[0])
        with pytest.raises(BackpressureError):
            server.submit(removal_sets[1], timeout=0.001)
        server.start()
        server.flush(timeout=30)
        server.close()

    def test_blocked_submitter_registers_its_key_before_waiting(
        self, trainer, removal_sets
    ):
        """A submitter parked on the backpressure semaphore must already
        be counted in the commit tracker's in-flight key set — otherwise
        a concurrent dispatch can prune commit-history entries the parked
        request still needs, and its ids later dispatch unremapped."""
        server = DeletionServer(
            trainer, AdmissionPolicy(max_pending=1), autostart=False
        )
        server.submit(removal_sets[0])
        thread = threading.Thread(
            target=lambda: server.submit(
                removal_sets[1], block=True, timeout=30
            ),
            daemon=True,
        )
        thread.start()
        def registered() -> int:
            with server._tracker._lock:
                return sum(server._tracker._inflight_keys.values())
        # reprolint: allow[R005] bounded spin waiting for background threads to park; no scheduling depends on the value
        deadline = time.monotonic() + 5
        # reprolint: allow[R005] bounded spin waiting for background threads to park; no scheduling depends on the value
        while time.monotonic() < deadline and registered() < 2:
            # reprolint: allow[R005] bounded spin waiting for background threads to park; no scheduling depends on the value
            time.sleep(0.001)
        # Queued request + parked submitter, both pinned before dispatch.
        assert registered() == 2
        server.start()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert server.flush(timeout=30)
        server.close()
        assert server.stats().answered == 2
        assert registered() == 0


class TestValidationAndLifecycle:
    def test_out_of_range_ids_fail_at_submit(self, trainer):
        with DeletionServer(trainer) as server:
            with pytest.raises(ValueError, match="removal ids"):
                server.submit([trainer.store.n_samples + 3])
            with pytest.raises(ValueError, match="removal ids"):
                server.submit([-4])

    def test_cannot_delete_everything(self, trainer):
        with DeletionServer(trainer) as server:
            with pytest.raises(ValueError, match="every training sample"):
                server.submit(np.arange(trainer.store.n_samples))

    def test_unknown_method_rejected_at_construction(self, trainer):
        with pytest.raises(ValueError, match="method"):
            DeletionServer(trainer, method="priu_opt")

    def test_submit_after_close_raises(self, trainer, removal_sets):
        server = DeletionServer(trainer)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(removal_sets[0])

    def test_close_drains_queued_requests(self, trainer, removal_sets):
        server = DeletionServer(trainer, autostart=False)
        futures = [server.submit(s) for s in removal_sets[:4]]
        server.close(wait=True)  # starts the worker, drains, then stops
        assert all(f.done() for f in futures)
        assert server.stats().answered == 4

    def test_close_is_idempotent(self, trainer):
        server = DeletionServer(trainer)
        server.close()
        server.close()

    def test_flush_without_start_raises_instead_of_hanging(
        self, trainer, removal_sets
    ):
        server = DeletionServer(trainer, autostart=False)
        server.submit(removal_sets[0])
        with pytest.raises(RuntimeError, match="never started"):
            server.flush(timeout=1.0)
        server.close()

    def test_cancelled_future_is_skipped(self, trainer, removal_sets):
        server = DeletionServer(trainer, autostart=False)
        cancelled = server.submit(removal_sets[0])
        kept = server.submit(removal_sets[1])
        assert cancelled.cancel()
        server.start()
        assert server.flush(timeout=30)
        assert kept.result().weights is not None
        assert cancelled.cancelled()
        stats = server.stats()
        assert stats.cancelled == 1
        assert stats.answered == 1
        assert stats.pending == 0
        server.close()


class TestCloseRaces:
    """The close()-vs-in-flight-batch audit (ISSUE 4 satellite).

    Contract: a batch dispatched before (or concurrently with) close()
    always resolves its futures; queued-but-undispatched requests drain;
    submissions observing the closed flag raise; nothing leaks.
    """

    def test_close_while_batch_is_in_flight_resolves_every_future(
        self, trainer, removal_sets, monkeypatch
    ):
        dispatch_started = threading.Event()
        release_dispatch = threading.Event()
        original = trainer.remove_many

        def gated(index_sets, **kwargs):
            dispatch_started.set()
            assert release_dispatch.wait(timeout=10)
            return original(index_sets, **kwargs)

        monkeypatch.setattr(trainer, "remove_many", gated)
        server = DeletionServer(
            trainer, AdmissionPolicy(max_batch=1, max_delay_seconds=0.0)
        )
        in_flight = server.submit(removal_sets[0])
        assert dispatch_started.wait(timeout=10)
        queued = server.submit(removal_sets[1])  # behind the open batch
        server.close(wait=False)  # races the in-flight dispatch
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(removal_sets[2])
        release_dispatch.set()
        server.close(wait=True)  # idempotent; joins the worker
        assert in_flight.result(timeout=30).weights is not None
        assert queued.result(timeout=30).weights is not None
        stats = server.stats()
        assert stats.answered == 2
        assert stats.pending == 0

    def test_concurrent_close_calls_join_cleanly(self, trainer, removal_sets):
        server = DeletionServer(trainer, autostart=False)
        futures = [server.submit(s) for s in removal_sets[:3]]
        closers = [
            threading.Thread(target=server.close) for _ in range(3)
        ]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert all(f.done() for f in futures)
        assert server.stats().answered == 3

    def test_exit_does_not_block_while_unwinding(self, trainer):
        """``__exit__`` must not join the worker when an exception is
        propagating — the pending futures' owners are being torn down."""
        with pytest.raises(RuntimeError, match="boom"):
            with DeletionServer(trainer, method="priu") as server:
                server.submit(np.array([1, 2]))
                raise RuntimeError("boom")
        # The server stopped accepting work…
        with pytest.raises(RuntimeError, match="closed"):
            server.submit([3])
        # …and the queued request still drains in the background.
        assert server.flush(timeout=30)


class TestStats:
    def test_stats_cover_all_requests(self, trainer, removal_sets):
        with DeletionServer(trainer) as server:
            futures = server.submit_many(removal_sets)
            [f.result(timeout=30) for f in futures]
            stats = server.stats()
        assert stats.submitted == len(removal_sets)
        assert stats.answered == len(removal_sets)
        assert stats.failed == 0
        assert stats.pending == 0
        assert stats.latency is not None
        assert stats.latency.count == len(removal_sets)
        assert stats.wait.min >= 0.0
        assert stats.latency.p95 >= stats.latency.p50
        # latency = wait + service (dispatch->answer), so service can
        # never exceed the worst end-to-end latency.
        assert stats.service.max <= stats.latency.max
        payload = stats.as_dict()
        assert payload["answered"] == len(removal_sets)
        assert payload["latency"]["count"] == len(removal_sets)

    def test_per_lane_stats_are_split_and_conserved(
        self, trainer, removal_sets
    ):
        clock = FakeClock()
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=16, max_delay_seconds=0.02),
            autostart=False,
            clock=clock,
        )
        for s in removal_sets[:3]:
            server.submit(s, lane="bulk")
        for s in removal_sets[3:5]:
            server.submit(s, lane="deadline")
        server.start()
        assert server.flush(timeout=30)
        server.close()
        stats = server.stats()
        assert stats.lane("bulk").answered == 3
        assert stats.lane("deadline").answered == 2
        assert (
            stats.lane("bulk").submitted + stats.lane("deadline").submitted
            == stats.submitted
        )
        # Deadline preempted the batch: nobody waited.
        assert stats.lane("deadline").wait.max == 0.0
        assert stats.lane("bulk").wait.max == 0.0

    def test_fresh_server_has_empty_summaries(self, trainer):
        server = DeletionServer(trainer, autostart=False)
        stats = server.stats()
        assert stats.latency is None
        assert stats.mean_batch_size == 0.0
        assert stats.lanes == {}
        server.close()

    def test_dispatch_failure_fails_the_batch_futures(
        self, trainer, removal_sets
    ):
        server = DeletionServer(trainer, method="priu", autostart=False)
        futures = [server.submit(s) for s in removal_sets[:3]]
        # Sabotage the compiled plan so remove_many raises mid-dispatch.
        original_version = trainer.store._version
        trainer.store._version += 1
        try:
            server.start()
            assert server.flush(timeout=30)
            for future in futures:
                with pytest.raises(RuntimeError, match="store changed"):
                    future.result(timeout=5)
            assert server.stats().failed == 3
        finally:
            trainer.store._version = original_version
            server.close()
