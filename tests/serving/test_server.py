"""End-to-end tests for the DeletionServer request queue.

A small binary-logistic workload is fitted once per module; every test
drives the real worker thread and the real batched replay engine — no
mocks — so these tests double as an integration check of the whole
capture → compile → serve pipeline.
"""

import time

import numpy as np
import pytest

from repro import AdmissionPolicy, DeletionServer, IncrementalTrainer
from repro.datasets import make_binary_classification
from repro.serving import BackpressureError, ServedOutcome


@pytest.fixture(scope="module")
def trainer():
    data = make_binary_classification(500, 10, separation=1.0, seed=7)
    fitted = IncrementalTrainer(
        "binary_logistic",
        learning_rate=0.1,
        regularization=0.01,
        batch_size=50,
        n_iterations=80,
        seed=0,
    )
    fitted.fit(data.features, data.labels)
    return fitted


@pytest.fixture
def removal_sets(trainer):
    rng = np.random.default_rng(3)
    n = trainer.store.n_samples
    return [
        np.sort(rng.choice(n, size=5, replace=False)) for _ in range(10)
    ]


class TestAnswers:
    def test_served_matches_direct_remove(self, trainer, removal_sets):
        with DeletionServer(trainer, method="priu") as server:
            futures = [server.submit(s) for s in removal_sets]
            outcomes = [f.result(timeout=30) for f in futures]
        for removed, outcome in zip(removal_sets, outcomes):
            expected = trainer.remove(removed, method="priu").weights
            assert np.allclose(outcome.weights, expected, atol=1e-10)
            assert isinstance(outcome, ServedOutcome)
            assert np.array_equal(outcome.removed, removed)

    def test_outcome_timings_are_consistent(self, trainer, removal_sets):
        with DeletionServer(trainer) as server:
            outcome = server.resolve(removal_sets[0], timeout=30)
        assert outcome.wait_seconds >= 0.0
        assert outcome.latency_seconds >= outcome.wait_seconds
        assert outcome.batch_size >= 1

    def test_empty_removal_set_is_served(self, trainer):
        with DeletionServer(trainer, method="priu") as server:
            outcome = server.resolve([], timeout=30)
        assert np.allclose(outcome.weights, trainer.weights_, atol=1e-8)


class TestCoalescing:
    def test_preloaded_queue_coalesces_into_one_batch(
        self, trainer, removal_sets
    ):
        server = DeletionServer(
            trainer, AdmissionPolicy(max_batch=32), autostart=False
        )
        futures = [server.submit(s) for s in removal_sets]
        server.start()
        assert server.flush(timeout=30)
        sizes = {f.result().batch_size for f in futures}
        assert sizes == {len(removal_sets)}
        stats = server.stats()
        assert stats.batches == 1
        assert stats.mean_batch_size == len(removal_sets)
        server.close()

    def test_max_batch_is_respected(self, trainer, removal_sets):
        server = DeletionServer(
            trainer, AdmissionPolicy(max_batch=3), autostart=False
        )
        futures = [server.submit(s) for s in removal_sets[:9]]
        server.start()
        assert server.flush(timeout=30)
        assert all(f.result().batch_size <= 3 for f in futures)
        assert server.stats().batches >= 3
        server.close()

    def test_zero_delay_still_answers_everything(self, trainer, removal_sets):
        policy = AdmissionPolicy(max_batch=4, max_delay_seconds=0.0)
        with DeletionServer(trainer, policy) as server:
            futures = server.submit_many(removal_sets)
            results = [f.result(timeout=30) for f in futures]
        assert len(results) == len(removal_sets)


class TestBackpressure:
    def test_nonblocking_submit_raises_when_full(self, trainer, removal_sets):
        server = DeletionServer(
            trainer, AdmissionPolicy(max_pending=2), autostart=False
        )
        server.submit(removal_sets[0])
        server.submit(removal_sets[1])
        with pytest.raises(BackpressureError):
            server.submit(removal_sets[2], block=False)
        assert server.stats().rejected == 1
        # The two accepted requests still drain.
        server.start()
        assert server.flush(timeout=30)
        server.close()

    def test_blocking_submit_with_timeout_raises(self, trainer, removal_sets):
        server = DeletionServer(
            trainer, AdmissionPolicy(max_pending=1), autostart=False
        )
        server.submit(removal_sets[0])
        start = time.perf_counter()
        with pytest.raises(BackpressureError):
            server.submit(removal_sets[1], timeout=0.05)
        assert time.perf_counter() - start >= 0.04
        server.start()
        server.flush(timeout=30)
        server.close()


class TestValidationAndLifecycle:
    def test_out_of_range_ids_fail_at_submit(self, trainer):
        with DeletionServer(trainer) as server:
            with pytest.raises(ValueError, match="removal ids"):
                server.submit([trainer.store.n_samples + 3])
            with pytest.raises(ValueError, match="removal ids"):
                server.submit([-4])

    def test_cannot_delete_everything(self, trainer):
        with DeletionServer(trainer) as server:
            with pytest.raises(ValueError, match="every training sample"):
                server.submit(np.arange(trainer.store.n_samples))

    def test_unknown_method_rejected_at_construction(self, trainer):
        with pytest.raises(ValueError, match="method"):
            DeletionServer(trainer, method="priu_opt")

    def test_submit_after_close_raises(self, trainer, removal_sets):
        server = DeletionServer(trainer)
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(removal_sets[0])

    def test_close_drains_queued_requests(self, trainer, removal_sets):
        server = DeletionServer(trainer, autostart=False)
        futures = [server.submit(s) for s in removal_sets[:4]]
        server.close(wait=True)  # starts the worker, drains, then stops
        assert all(f.done() for f in futures)
        assert server.stats().answered == 4

    def test_close_is_idempotent(self, trainer):
        server = DeletionServer(trainer)
        server.close()
        server.close()

    def test_flush_without_start_raises_instead_of_hanging(
        self, trainer, removal_sets
    ):
        server = DeletionServer(trainer, autostart=False)
        server.submit(removal_sets[0])
        with pytest.raises(RuntimeError, match="never started"):
            server.flush(timeout=1.0)
        server.close()

    def test_cancelled_future_is_skipped(self, trainer, removal_sets):
        server = DeletionServer(trainer, autostart=False)
        cancelled = server.submit(removal_sets[0])
        kept = server.submit(removal_sets[1])
        assert cancelled.cancel()
        server.start()
        assert server.flush(timeout=30)
        assert kept.result().weights is not None
        assert cancelled.cancelled()
        stats = server.stats()
        assert stats.cancelled == 1
        assert stats.answered == 1
        assert stats.pending == 0
        server.close()


class TestStats:
    def test_stats_cover_all_requests(self, trainer, removal_sets):
        with DeletionServer(trainer) as server:
            futures = server.submit_many(removal_sets)
            [f.result(timeout=30) for f in futures]
            stats = server.stats()
        assert stats.submitted == len(removal_sets)
        assert stats.answered == len(removal_sets)
        assert stats.failed == 0
        assert stats.pending == 0
        assert stats.latency is not None
        assert stats.latency.count == len(removal_sets)
        assert stats.wait.min >= 0.0
        assert stats.latency.p95 >= stats.latency.p50
        # latency = wait + service (dispatch->answer), so service can
        # never exceed the worst end-to-end latency.
        assert stats.service.max <= stats.latency.max
        payload = stats.as_dict()
        assert payload["answered"] == len(removal_sets)
        assert payload["latency"]["count"] == len(removal_sets)

    def test_fresh_server_has_empty_summaries(self, trainer):
        server = DeletionServer(trainer, autostart=False)
        stats = server.stats()
        assert stats.latency is None
        assert stats.mean_batch_size == 0.0
        server.close()

    def test_dispatch_failure_fails_the_batch_futures(
        self, trainer, removal_sets
    ):
        server = DeletionServer(trainer, method="priu", autostart=False)
        futures = [server.submit(s) for s in removal_sets[:3]]
        # Sabotage the compiled plan so remove_many raises mid-dispatch.
        original_version = trainer.store._version
        trainer.store._version += 1
        try:
            server.start()
            assert server.flush(timeout=30)
            for future in futures:
                with pytest.raises(RuntimeError, match="store changed"):
                    future.result(timeout=5)
            assert server.stats().failed == 3
        finally:
            trainer.store._version = original_version
            server.close()
