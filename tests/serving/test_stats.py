"""ServingStats / LatencySummary behaviour under the fake clock.

The satellite coverage ISSUE 4 asks for: per-lane percentiles computed
from exact (fake-clock) samples, request-count conservation, and snapshot
isolation — a snapshot taken now must never change when the recorder
keeps accumulating.
"""

import pytest

from repro.eval.timing import LatencySummary
from repro.serving import StatsRecorder
from repro.serving.stats import LaneStats, ServingStats


def _filled_recorder() -> StatsRecorder:
    recorder = StatsRecorder()
    for _ in range(4):
        recorder.record_submitted("bulk")
    for _ in range(2):
        recorder.record_submitted("deadline")
    recorder.record_batch(
        waits=[0.02, 0.02, 0.0, 0.0],
        services=[0.001, 0.001, 0.001, 0.001],
        latencies=[0.021, 0.021, 0.001, 0.001],
        lanes=["bulk", "bulk", "deadline", "deadline"],
    )
    recorder.record_failed(1, ["bulk"])
    recorder.record_cancelled(1, ["bulk"])
    recorder.record_rejected("bulk")
    return recorder


class TestConservation:
    def test_counts_conserve_per_lane_and_aggregate(self):
        stats = _filled_recorder().snapshot()
        # submitted == answered + failed + cancelled + pending, per lane…
        for lane in ("bulk", "deadline"):
            lane_stats = stats.lane(lane)
            assert lane_stats.submitted == (
                lane_stats.answered
                + lane_stats.failed
                + lane_stats.cancelled
                + lane_stats.pending
            )
        # …and in aggregate; the lane split sums back to the aggregate.
        assert stats.submitted == (
            stats.answered + stats.failed + stats.cancelled + stats.pending
        )
        assert stats.pending == 0
        for field in ("submitted", "answered", "failed", "cancelled", "rejected"):
            assert sum(
                getattr(lane, field) for lane in stats.lanes.values()
            ) == getattr(stats, field)

    def test_pending_counts_unanswered(self):
        recorder = StatsRecorder()
        recorder.record_submitted("bulk")
        recorder.record_submitted("bulk")
        stats = recorder.snapshot()
        assert stats.pending == 2
        assert stats.lane("bulk").pending == 2

    def test_rejections_never_enter_the_pipeline_counts(self):
        recorder = StatsRecorder()
        recorder.record_rejected("deadline")
        stats = recorder.snapshot()
        assert stats.rejected == 1
        assert stats.submitted == 0
        assert stats.lane("deadline").rejected == 1
        assert stats.lane("deadline").pending == 0


class TestPerLanePercentiles:
    def test_exact_fake_clock_samples_give_exact_percentiles(self):
        stats = _filled_recorder().snapshot()
        bulk = stats.lane("bulk")
        deadline = stats.lane("deadline")
        # Bulk waited out the full coalescing budget, deadline none at all
        # — the exact numbers a FakeClock run produces.
        assert bulk.wait.p50 == 0.02 and bulk.wait.p99 == 0.02
        assert deadline.wait.p50 == 0.0 and deadline.wait.max == 0.0
        assert deadline.latency.p99 < bulk.latency.p50

    def test_lane_summaries_cover_only_their_own_samples(self):
        stats = _filled_recorder().snapshot()
        assert stats.lane("bulk").latency.count == 2
        assert stats.lane("deadline").latency.count == 2
        assert stats.latency.count == 4

    def test_unlaned_recordings_only_move_the_aggregate(self):
        recorder = StatsRecorder()
        recorder.record_submitted()  # lane=None
        recorder.record_batch([0.1], [0.1], [0.2])
        stats = recorder.snapshot()
        assert stats.submitted == 1 and stats.answered == 1
        assert stats.lanes == {}

    def test_traffic_free_lane_reads_as_zeros(self):
        stats = StatsRecorder().snapshot()
        lane = stats.lane("never-seen")
        assert isinstance(lane, LaneStats)
        assert lane.submitted == 0 and lane.latency is None


class TestSnapshotIsolation:
    def test_later_recordings_do_not_mutate_an_earlier_snapshot(self):
        recorder = _filled_recorder()
        before = recorder.snapshot()
        bulk_before = before.lane("bulk")
        answered_before = before.answered
        latency_count_before = before.latency.count
        # Keep accumulating after the snapshot…
        for _ in range(5):
            recorder.record_submitted("bulk")
        recorder.record_batch(
            [9.0] * 5, [9.0] * 5, [9.0] * 5, ["bulk"] * 5
        )
        # …the old snapshot must be completely frozen.
        assert before.answered == answered_before
        assert before.latency.count == latency_count_before
        assert before.lane("bulk") is bulk_before
        assert bulk_before.latency.max < 9.0
        after = recorder.snapshot()
        assert after.answered == answered_before + 5
        assert after.lane("bulk").latency.max == 9.0

    def test_snapshots_are_independent_objects(self):
        recorder = _filled_recorder()
        first = recorder.snapshot()
        second = recorder.snapshot()
        assert first is not second
        assert first.lanes is not second.lanes
        assert first.as_dict() == second.as_dict()


class TestSerialization:
    def test_as_dict_includes_lane_breakdown(self):
        payload = _filled_recorder().snapshot().as_dict()
        assert set(payload["lanes"]) == {"bulk", "deadline"}
        assert payload["lanes"]["bulk"]["answered"] == 2
        assert payload["lanes"]["deadline"]["wait"]["p99"] == 0.0
        assert payload["latency"]["count"] == 4

    def test_latency_summary_p99_orders_correctly(self):
        samples = [float(i) for i in range(1, 101)]
        summary = LatencySummary.from_samples(samples)
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.max
        assert summary.p99 == pytest.approx(99.01)

    def test_serving_stats_direct_construction_defaults(self):
        stats = ServingStats(
            submitted=1,
            answered=1,
            failed=0,
            cancelled=0,
            rejected=0,
            batches=1,
            mean_batch_size=1.0,
            wait=None,
            service=None,
            latency=None,
        )
        assert stats.lanes == {}
        assert stats.pending == 0
