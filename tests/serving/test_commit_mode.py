"""Commit-mode serving: batches are applied, not just answered.

Every test drives the real worker thread, the real batched engine, and the
real commit path (store compaction + plan refresh) — no mocks.
"""

import numpy as np
import pytest

from repro import AdmissionPolicy, DeletionServer, IncrementalTrainer
from repro.datasets import make_binary_classification

_DATA = make_binary_classification(500, 10, separation=1.0, seed=7)


def fresh_trainer(**overrides):
    kwargs = dict(
        learning_rate=0.1,
        regularization=0.01,
        batch_size=50,
        n_iterations=80,
        seed=0,
        method="priu",
    )
    kwargs.update(overrides)
    trainer = IncrementalTrainer("binary_logistic", **kwargs)
    trainer.fit(_DATA.features, _DATA.labels)
    return trainer


@pytest.fixture
def trainer():
    return fresh_trainer()


@pytest.fixture
def reference():
    return fresh_trainer()


class TestCommitModeAnswers:
    def test_batch_applies_prefix_unions_in_admission_order(
        self, trainer, reference
    ):
        sets = [np.array([1, 2]), np.array([5, 6]), np.array([2, 9])]
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=8),
            method="priu",
            autostart=False,
            commit_mode=True,
        )
        futures = [server.submit(s) for s in sets]
        server.start()
        assert server.flush(timeout=30)
        server.close()
        outcomes = [f.result(timeout=30) for f in futures]
        acc = np.empty(0, dtype=np.int64)
        for removed, outcome in zip(sets, outcomes):
            acc = np.union1d(acc, removed)
            expected = reference.remove(acc, method="priu").weights
            np.testing.assert_allclose(
                outcome.weights, expected, atol=1e-10, rtol=0.0
            )
            assert outcome.committed
        # The trainer adopted the final prefix as its baseline.
        assert np.array_equal(trainer.weights_, outcomes[-1].weights)
        assert trainer.n_samples == reference.n_samples - acc.size
        assert np.array_equal(np.sort(trainer.deletion_log), acc)

    def test_consecutive_batches_accumulate(self, trainer, reference):
        with DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=1),  # force one commit per request
            method="priu",
            commit_mode=True,
        ) as server:
            server.resolve(np.array([3, 4]), timeout=30)
            # After the first commit the id space shrank by 2; ids are
            # interpreted in the *current* space.
            second = server.resolve(np.array([0]), timeout=30)
        # Current id 0 after removing {3, 4} is still original id 0.
        expected = reference.remove([0, 3, 4], method="priu").weights
        np.testing.assert_allclose(
            second.weights, expected, atol=1e-10, rtol=0.0
        )

    def test_non_commit_server_leaves_trainer_untouched(self, trainer):
        baseline = trainer.weights_.copy()
        n_before = trainer.n_samples
        with DeletionServer(trainer, method="priu") as server:
            server.resolve(np.array([1, 2, 3]), timeout=30)
        assert np.array_equal(trainer.weights_, baseline)
        assert trainer.n_samples == n_before


class TestCommitModeValidation:
    def test_submits_validate_against_post_commit_id_space(self, trainer):
        with DeletionServer(
            trainer, AdmissionPolicy(max_batch=1), method="priu", commit_mode=True
        ) as server:
            n_before = trainer.n_samples
            server.resolve(np.arange(10), timeout=30)
            # The server's live bound has shrunk by the committed batch.
            with pytest.raises(ValueError, match="removal ids"):
                server.submit([n_before - 1])
            # Ids inside the reduced space are still fine.
            server.resolve([trainer.n_samples - 1], timeout=30)

    def test_queued_requests_are_remapped_across_commits(self, trainer):
        """A request queued behind a commit keeps denoting the samples its
        caller addressed — ids are translated into the post-commit space,
        never reinterpreted against whatever shifted into their slots."""
        n = trainer.n_samples
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=1),
            method="priu",
            autostart=False,
            commit_mode=True,
        )
        # All three submitted in the *original* id space; the first
        # dispatch commits [0..4], shifting everything above down by 5.
        first = server.submit(np.arange(5))
        high = server.submit([n - 3])
        low = server.submit([7])
        server.start()
        assert server.flush(timeout=30)
        server.close()
        assert first.result(timeout=30).committed
        # Translated sets, reported in the space their batch executed in.
        assert np.array_equal(high.result(timeout=30).removed, [n - 3 - 5])
        assert np.array_equal(low.result(timeout=30).removed, [7 - 5])
        # Identity check: exactly the submitted *original* samples left.
        assert np.array_equal(
            np.sort(trainer.deletion_log), np.r_[np.arange(5), 7, n - 3]
        )

    def test_ids_already_committed_drop_out_of_queued_requests(self, trainer):
        """Overlap with an earlier commit is not an error: those samples
        are gone, which is what the caller asked for."""
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=1),
            method="priu",
            autostart=False,
            commit_mode=True,
        )
        first = server.submit([3])
        overlap = server.submit([3, 9])  # 3 will already be committed
        server.start()
        assert server.flush(timeout=30)
        server.close()
        assert first.result(timeout=30).committed
        outcome = overlap.result(timeout=30)
        assert outcome.committed
        assert np.array_equal(outcome.removed, [9 - 1])  # only the survivor
        assert np.array_equal(np.sort(trainer.deletion_log), [3, 9])


class TestCancelledBatches:
    def test_fully_cancelled_batch_does_not_kill_the_worker(self, trainer):
        """A commit-mode batch whose every request was cancelled must be a
        no-op, not an uncaught min()-over-empty crash in the worker."""
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=1),
            method="priu",
            autostart=False,
            commit_mode=True,
        )
        doomed = server.submit([1, 2])
        assert doomed.cancel()
        server.start()
        assert server.flush(timeout=30)
        # The worker survived: it still answers and commits.
        outcome = server.resolve([5], timeout=30)
        assert outcome.committed
        server.close()
        assert server.stats().cancelled == 1


class TestEmptySubmits:
    def test_empty_submit_resolves_inline(self, trainer):
        with DeletionServer(trainer, method="priu") as server:
            outcome = server.resolve([], timeout=30)
        assert outcome.method == "noop"
        assert outcome.batch_size == 0
        assert outcome.removed.size == 0
        assert not outcome.committed
        np.testing.assert_allclose(outcome.weights, trainer.weights_)

    def test_empty_submit_counts_as_answered(self, trainer):
        with DeletionServer(trainer, method="priu") as server:
            server.resolve([], timeout=30)
            stats = server.stats()
        assert stats.submitted == 1
        assert stats.answered == 1
        assert stats.batches == 0

    def test_empty_submit_never_commits(self, trainer):
        n_before = trainer.n_samples
        with DeletionServer(trainer, method="priu", commit_mode=True) as server:
            outcome = server.resolve([], timeout=30)
        assert outcome.method == "noop"
        assert trainer.n_samples == n_before

    def test_policy_can_reject_empty_submits(self, trainer):
        policy = AdmissionPolicy(on_empty="reject")
        with DeletionServer(trainer, policy, method="priu") as server:
            with pytest.raises(ValueError, match="empty removal set"):
                server.submit([])

    def test_empty_submit_to_closed_server_raises(self, trainer):
        server = DeletionServer(trainer, method="priu")
        server.close()
        with pytest.raises(RuntimeError, match="closed"):
            server.submit([])

    def test_invalid_on_empty_rejected(self):
        with pytest.raises(ValueError, match="on_empty"):
            AdmissionPolicy(on_empty="ignore")


class TestExitDuringException:
    def test_exit_does_not_block_while_unwinding(self, trainer):
        """``__exit__`` must not join the worker when an exception is
        propagating — the pending futures' owners are being torn down."""
        with pytest.raises(RuntimeError, match="boom"):
            with DeletionServer(trainer, method="priu") as server:
                server.submit(np.array([1, 2]))
                raise RuntimeError("boom")
        # The server stopped accepting work…
        with pytest.raises(RuntimeError, match="closed"):
            server.submit([3])
        # …and the queued request still drains in the background.
        assert server.flush(timeout=30)

    def test_clean_exit_still_drains(self, trainer):
        with DeletionServer(trainer, method="priu") as server:
            future = server.submit(np.array([4, 5]))
        assert future.done()
        assert future.result().weights is not None
