"""ShardRouter: cross-process sharded serving.

Every test drives real worker processes over real checkpoints — no
mocks.  The bit-identity contract tests submit *serially* (each future
resolved before the next submit) on both the router and the
single-process reference fleet: the engine's ``remove_many`` answers are
composition-independent only within a batch-size class, so matching the
batching (every batch a singleton) makes the comparison structurally
deterministic rather than racy.

Subprocess faults use the worker's ``crash_after_submits`` seam (the
worker ``os._exit``\\ s while handling its K-th submit message — a
kernel-OOM-kill analogue) or :meth:`ShardRouter.kill_shard` (SIGKILL),
and tests wait on :meth:`describe` health rather than sleeping blind.
"""

import pickle
import time

import numpy as np
import pytest

from repro import (
    AdmissionPolicy,
    FleetServer,
    IncrementalTrainer,
    ModelRegistry,
    ShardRouter,
)
from repro.datasets import make_binary_classification
from repro.serving import LaneFrame, RetryPolicy, ShardUnavailableError, StatsFrame
from repro.serving.router import _ring_walk, hash_ring

_DATA = make_binary_classification(300, 8, separation=1.0, seed=3)
_POLICY = AdmissionPolicy(max_batch=8, max_delay_seconds=0.01)


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    """One small saved binary-logistic checkpoint (shared by many ids)."""
    trainer = IncrementalTrainer(
        "binary_logistic",
        learning_rate=0.1,
        regularization=0.01,
        batch_size=30,
        n_iterations=30,
        seed=0,
        method="priu",
    )
    trainer.fit(_DATA.features, _DATA.labels)
    directory = tmp_path_factory.mktemp("router-checkpoints") / "model"
    trainer.save_checkpoint(directory)
    return directory


def serve_serial(server, traffic):
    """Submit one request at a time (module docstring: singleton batches)."""
    return [
        server.submit(model_id, ids, lane=lane).result(timeout=60)
        for model_id, ids, lane in traffic
    ]


def mixed_lane_traffic(n=12, models=3):
    return [
        (f"model-{i % models}", [i, i + 1], "deadline" if i % 4 == 0 else "bulk")
        for i in range(n)
    ]


def reference_answers(checkpoint, traffic, models=3):
    """The single-process FleetServer's answers for the same traffic."""
    registry = ModelRegistry()
    for i in range(models):
        registry.register(
            f"model-{i}",
            checkpoint=checkpoint,
            features=_DATA.features,
            labels=_DATA.labels,
        )
    with FleetServer(registry, _POLICY, method="priu", n_workers=1) as fleet:
        return serve_serial(fleet, traffic)


def register_all(router, checkpoint, models=3):
    for i in range(models):
        router.register(f"model-{i}", checkpoint, _DATA.features, _DATA.labels)


def wait_dead(router, name, timeout=10.0):
    """Block until the router has noticed ``name``'s worker is gone."""
    deadline = time.monotonic() + timeout  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
    while time.monotonic() < deadline:  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
        shard = router.describe()["shards"][name]
        if not shard["alive"]:
            return
        time.sleep(0.02)  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
    raise AssertionError(f"{name} still marked alive after {timeout}s")


class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        slots = [f"shard-{i}" for i in range(4)]
        ring_a, ring_b = hash_ring(slots), hash_ring(slots)
        assert ring_a == ring_b
        for model_id in (f"model-{i}" for i in range(50)):
            assert _ring_walk(ring_a, model_id) == _ring_walk(ring_b, model_id)

    def test_walk_visits_every_slot_once_home_first(self):
        ring = hash_ring(["a", "b", "c"])
        walk = _ring_walk(ring, "some-model")
        assert sorted(walk) == ["a", "b", "c"]
        assert len(set(walk)) == 3

    def test_losing_a_slot_rehomes_only_its_models(self):
        slots = [f"shard-{i}" for i in range(4)]
        ring = hash_ring(slots)
        survivors = hash_ring(slots[:-1])
        moved = 0
        for i in range(200):
            model_id = f"model-{i}"
            home = _ring_walk(ring, model_id)[0]
            new_home = _ring_walk(survivors, model_id)[0]
            if home == slots[-1]:
                # Orphans land exactly on their old first-fallback slot.
                assert new_home == _ring_walk(ring, model_id)[1]
                moved += 1
            else:
                assert new_home == home
        assert moved > 0  # the lost slot did own some models

    def test_virtual_nodes_spread_load(self):
        ring = hash_ring([f"shard-{i}" for i in range(4)])
        counts: dict[str, int] = {}
        for i in range(400):
            home = _ring_walk(ring, f"model-{i}")[0]
            counts[home] = counts.get(home, 0) + 1
        assert len(counts) == 4
        assert min(counts.values()) >= 400 // 4 // 3  # no starved slot


class TestStatsFrames:
    def test_merge_concatenates_samples_and_sums_counters(self):
        a = StatsFrame(
            submitted=3,
            answered=2,
            failed=1,
            batches=2,
            batch_sizes=[1, 1],
            waits=[0.1, 0.2],
            services=[0.3, 0.4],
            latencies=[0.4, 0.6],
            lanes={"bulk": LaneFrame(submitted=3, answered=2, latencies=[0.4, 0.6])},
        )
        b = StatsFrame(
            submitted=5,
            answered=5,
            batches=1,
            batch_sizes=[5],
            waits=[0.5],
            services=[0.6],
            latencies=[1.1, 0.2, 0.3, 0.4, 0.5],
            lanes={
                "bulk": LaneFrame(submitted=2, answered=2, latencies=[1.1, 0.2]),
                "deadline": LaneFrame(submitted=3, answered=3),
            },
        )
        merged = StatsFrame.merged([a, b])
        assert merged.submitted == 8
        assert merged.answered == 7
        assert merged.failed == 1
        assert merged.batches == 3
        assert sorted(merged.batch_sizes) == [1, 1, 5]
        assert sorted(merged.latencies) == sorted(
            [0.4, 0.6, 1.1, 0.2, 0.3, 0.4, 0.5]
        )
        assert merged.lanes["bulk"].submitted == 5
        assert sorted(merged.lanes["bulk"].latencies) == [0.2, 0.4, 0.6, 1.1]
        assert merged.lanes["deadline"].answered == 3

    def test_percentiles_are_order_statistics_of_the_pool(self):
        # The whole point of shipping raw samples: the merged p99/max
        # reflect the pooled distribution, which no combination of the
        # two shards' own percentiles could reconstruct.
        fast = StatsFrame(
            submitted=99, answered=99, latencies=[0.01] * 99, batches=99
        )
        slow = StatsFrame(submitted=1, answered=1, latencies=[9.0], batches=1)
        stats = StatsFrame.merged([fast, slow]).summarize()
        pooled = [0.01] * 99 + [9.0]
        assert stats.latency.max == 9.0
        assert stats.latency.p99 == pytest.approx(
            float(np.percentile(pooled, 99))
        )
        # Averaging the per-shard p99s would have given ~4.5 here.
        assert stats.latency.p50 == pytest.approx(0.01)

    def test_frames_pickle(self):
        frame = StatsFrame(
            submitted=1, latencies=[0.5], lanes={"bulk": LaneFrame(submitted=1)}
        )
        clone = pickle.loads(pickle.dumps(frame))
        assert clone == frame

    def test_merged_of_nothing_is_empty(self):
        stats = StatsFrame.merged([]).summarize()
        assert stats.submitted == 0
        assert stats.answered == 0


class TestRouterServing:
    def test_bit_identical_to_single_process_fleet(self, checkpoint):
        traffic = mixed_lane_traffic()
        reference = reference_answers(checkpoint, traffic)
        with ShardRouter(n_shards=2, policy=_POLICY) as router:
            register_all(router, checkpoint)
            answers = serve_serial(router, traffic)
        for expected, actual in zip(reference, answers):
            assert np.array_equal(expected.weights, actual.weights)
            assert expected.method == actual.method
            assert np.array_equal(expected.removed, actual.removed)
            assert expected.lane == actual.lane
            assert expected.model_id == actual.model_id

    def test_merged_stats_account_for_every_request(self, checkpoint):
        traffic = mixed_lane_traffic()
        with ShardRouter(n_shards=2, policy=_POLICY) as router:
            register_all(router, checkpoint)
            serve_serial(router, traffic)
            assert router.flush(timeout=30)
            frame = router.stats_frame()
            stats = router.stats()
        assert stats.submitted == len(traffic)
        assert stats.answered == len(traffic)
        assert stats.failed == 0
        assert sorted(stats.lanes) == ["bulk", "deadline"]
        assert stats.lanes["deadline"].answered == 3
        assert stats.lanes["bulk"].answered == 9
        assert len(frame.latencies) == len(traffic)
        assert stats.latency is not None and stats.latency.max > 0

    def test_placement_spans_shards_and_describe_reports_it(self, checkpoint):
        with ShardRouter(n_shards=2, policy=_POLICY) as router:
            register_all(router, checkpoint, models=6)
            serve_serial(
                router, [(f"model-{i}", [i], None) for i in range(6)]
            )
            description = router.describe()
        homes = set(description["placement"].values())
        assert homes == {"shard-0", "shard-1"}
        for name, shard in description["shards"].items():
            assert shard["alive"], name
            assert shard["pid"] is not None
            assert shard["failures"] == 0
        hosted = set()
        for shard in description["shards"].values():
            hosted.update(shard["models"])
        assert hosted == {f"model-{i}" for i in range(6)}

    def test_single_shard_router_works(self, checkpoint):
        traffic = mixed_lane_traffic(n=4)
        reference = reference_answers(checkpoint, traffic)
        with ShardRouter(n_shards=1, policy=_POLICY) as router:
            register_all(router, checkpoint)
            answers = serve_serial(router, traffic)
        for expected, actual in zip(reference, answers):
            assert np.array_equal(expected.weights, actual.weights)


class TestRouterValidation:
    def test_unknown_model_fails_synchronously(self, checkpoint):
        with ShardRouter(n_shards=1, policy=_POLICY) as router:
            with pytest.raises(ValueError, match="unknown model id"):
                router.submit("ghost", [0, 1])

    def test_duplicate_registration_rejected(self, checkpoint):
        with ShardRouter(n_shards=1, policy=_POLICY) as router:
            router.register("m", checkpoint, _DATA.features, _DATA.labels)
            with pytest.raises(ValueError, match="already registered"):
                router.register("m", checkpoint, _DATA.features, _DATA.labels)

    def test_commit_mode_rejected(self, checkpoint):
        with ShardRouter(n_shards=1, policy=_POLICY) as router:
            with pytest.raises(ValueError, match="commit_mode"):
                router.register(
                    "m",
                    checkpoint,
                    _DATA.features,
                    _DATA.labels,
                    commit_mode=True,
                )

    def test_missing_checkpoint_rejected_at_register(self, tmp_path):
        with ShardRouter(n_shards=1, policy=_POLICY) as router:
            with pytest.raises(FileNotFoundError):
                router.register(
                    "m", tmp_path / "nope", _DATA.features, _DATA.labels
                )

    def test_register_validates_before_any_shard_sees_it(self, checkpoint):
        with ShardRouter(n_shards=1, policy=_POLICY) as router:
            with pytest.raises(FileNotFoundError):
                router.register(
                    "m", checkpoint / "missing", _DATA.features, _DATA.labels
                )
            assert router.model_ids() == ()


class TestFailover:
    def test_kill_fails_only_victims_futures(self, checkpoint):
        """A shard crash scopes its blast radius to its own shard.

        ``crash_after_submits=3`` arms every worker, but only the victim
        shard receives three submits; the sibling's traffic — some of it
        submitted before the crash, some after — is untouched.
        """
        with ShardRouter(
            n_shards=2,
            policy=_POLICY,
            _shard_options={"crash_after_submits": 3},
        ) as router:
            register_all(router, checkpoint, models=6)
            placement = router.describe()["placement"]
            by_shard: dict[str, list[str]] = {"shard-0": [], "shard-1": []}
            for model_id, home in placement.items():
                by_shard[home].append(model_id)
            assert all(by_shard.values()), placement
            victim_model = by_shard["shard-0"][0]
            survivor_model = by_shard["shard-1"][0]

            # Warm traffic: the victim shard burns two of its three
            # allowed submits; the survivor stays under its own fuse.
            survived_early = router.submit(survivor_model, [0]).result(
                timeout=60
            )
            for i in range(2):
                router.submit(victim_model, [i]).result(timeout=60)

            # The victim worker dies while handling this submit.
            doomed = router.submit(victim_model, [7, 8])
            with pytest.raises(ShardUnavailableError) as excinfo:
                doomed.result(timeout=60)
            assert excinfo.value.shard == "shard-0"

            # The sibling shard never noticed.
            late = router.submit(survivor_model, [5]).result(timeout=60)
            assert late.model_id == survivor_model
            assert survived_early.model_id == survivor_model

    def test_failover_rehomes_and_answers_identically(self, checkpoint):
        traffic = mixed_lane_traffic()
        reference = reference_answers(checkpoint, traffic)
        with ShardRouter(n_shards=2, policy=_POLICY) as router:
            register_all(router, checkpoint)
            answers = serve_serial(router, traffic)
            for expected, actual in zip(reference, answers):
                assert np.array_equal(expected.weights, actual.weights)

            victim = router.shard_for("model-0")
            router.kill_shard(victim)
            wait_dead(router, victim)

            # model-0 walks the ring past the dead slot; the survivor
            # lazily re-registers it and answers bit-identically.
            outcome = router.submit("model-0", [0, 1]).result(timeout=60)
            assert np.array_equal(outcome.weights, reference[0].weights)
            new_home = router.shard_for("model-0")
            assert new_home != victim

            # The dead slot's breaker recorded the death.
            assert router.describe()["shards"][victim]["failures"] == 1

    def test_restart_rehomes_models_back(self, checkpoint):
        reference = reference_answers(
            checkpoint, [("model-0", [0, 1], None)]
        )[0]
        with ShardRouter(n_shards=2, policy=_POLICY) as router:
            register_all(router, checkpoint)
            home = router.shard_for("model-0")
            router.kill_shard(home)
            wait_dead(router, home)
            assert router.shard_for("model-0") != home

            router.restart_shard(home)
            assert router.shard_for("model-0") == home
            outcome = router.submit("model-0", [0, 1]).result(timeout=60)
            assert np.array_equal(outcome.weights, reference.weights)
            assert router.describe()["shards"][home]["failures"] == 0

    def test_all_shards_dead_raises_typed_error(self, checkpoint):
        with ShardRouter(n_shards=1, policy=_POLICY) as router:
            router.register("m", checkpoint, _DATA.features, _DATA.labels)
            router.submit("m", [0]).result(timeout=60)
            router.kill_shard("shard-0")
            wait_dead(router, "shard-0")
            with pytest.raises(ShardUnavailableError):
                router.submit("m", [1])

    def test_auto_restart_revives_until_quarantine(self, checkpoint):
        retry = RetryPolicy(quarantine_after=2, probe_interval_seconds=3600.0)
        with ShardRouter(
            n_shards=1, policy=_POLICY, retry=retry, auto_restart=True
        ) as router:
            router.register("m", checkpoint, _DATA.features, _DATA.labels)
            router.submit("m", [0]).result(timeout=60)

            # First death: the breaker is still closed, so the slot
            # respawns on its own and serves again.
            pid = router.describe()["shards"]["shard-0"]["pid"]
            router.kill_shard("shard-0")
            deadline = time.monotonic() + 10  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
            while time.monotonic() < deadline:  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
                shard = router.describe()["shards"]["shard-0"]
                if shard["alive"] and shard["pid"] != pid:
                    break
                time.sleep(0.02)  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
            outcome = router.submit("m", [1]).result(timeout=60)
            assert outcome.model_id == "m"
            # A served answer is the breaker's health evidence.
            assert router.describe()["shards"]["shard-0"]["failures"] == 0

            # Two deaths in a row with no served reply between them open
            # the breaker: no respawn, submits fast-fail.
            for n_failures in range(1, retry.quarantine_after + 1):
                deadline = time.monotonic() + 10  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
                while time.monotonic() < deadline:  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
                    shard = router.describe()["shards"]["shard-0"]
                    if shard["failures"] >= n_failures:
                        break  # this death has been recorded
                    if shard["alive"]:
                        router.kill_shard("shard-0")
                    time.sleep(0.02)  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
            description = router.describe()["shards"]["shard-0"]
            assert description["failures"] >= retry.quarantine_after
            assert description["quarantined"]
            with pytest.raises(ShardUnavailableError):
                router.submit("m", [2])


class TestStandby:
    def test_promotion_inherits_the_warm_spare(self, checkpoint):
        reference = reference_answers(
            checkpoint, [("model-0", [0, 1], None)]
        )[0]
        with ShardRouter(n_shards=2, policy=_POLICY, standby=True) as router:
            register_all(router, checkpoint)
            assert router.describe()["standby"] == "standby"
            home = router.shard_for("model-0")
            outcome = router.submit("model-0", [0, 1]).result(timeout=60)
            assert np.array_equal(outcome.weights, reference.weights)

            router.kill_shard(home)
            deadline = time.monotonic() + 10  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
            while time.monotonic() < deadline:  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
                description = router.describe()
                if (
                    description["standby"] is None
                    and description["shards"][home]["alive"]
                ):
                    break
                time.sleep(0.02)  # reprolint: allow[R005] real subprocess death/respawn is I/O a fake clock cannot advance
            description = router.describe()
            # The spare took over the dead slot rather than cold-starting.
            assert description["standby"] is None
            assert description["shards"][home]["alive"]
            assert router.shard_for("model-0") == home
            outcome = router.submit("model-0", [0, 1]).result(timeout=60)
            assert np.array_equal(outcome.weights, reference.weights)


class TestShardUnavailableError:
    def test_pickles_with_attributes(self):
        error = ShardUnavailableError("shard-3", "pipe write failed")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.shard == "shard-3"
        assert clone.reason == "pipe write failed"
        assert "shard-3" in str(clone)
