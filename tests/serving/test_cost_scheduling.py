"""Cost-driven scheduling at the serving layer: estimate, then admit.

The core estimator's accuracy is property-tested in
``tests/core/test_cost_model.py``; this file proves the *scheduling*
half of the cost model's contract:

* **Answer preservation** — a commit-mode server whose trainer picks
  refresh-vs-recompile from a :class:`repro.CostModel` (at both
  extremes: a calibration that always refreshes and one that always
  recompiles) answers every request within atol 1e-10 of the
  fixed-threshold reference server, and so does a server whose
  :class:`repro.AdmissionPolicy` closes batches early.  The decision
  logs double-check that the compared runs really took different
  execution paths.

* **Early closing** — a calibrated policy-level cost model dispatches a
  lone bulk request immediately (wait exactly 0.0 under the
  :class:`harness.FakeClock`) where the fixed budget would hold it the
  full coalescing delay; an *uncalibrated* model changes nothing.
  Verified against both :class:`repro.DeletionServer` (the
  ``_collect`` loop) and :class:`repro.FleetServer` (the
  ``cost_ready`` wakeup path).

* **Estimate coverage** — every member of a served batch on a
  cost-model trainer carries the batch union's pre-dispatch estimate
  (``ServedOutcome.predicted``), and served batches feed the online
  batch-time calibration.

* **Maintenance-aware eviction** — :meth:`repro.ModelRegistry.retire`
  refuses non-resident / live / pinned models, evicts clean residents,
  and for a dirty commit model reclaims due maintenance debt,
  re-checkpoints, and evicts — after which a reload answers from the
  committed state.

* **Stress** — the :class:`harness.StressDriver` ``cost`` op under
  fixed seeds: subset/superset estimates stay monotone, invariant I5
  (estimate coverage) holds, retire fires mid-traffic, and every
  stateless answer still matches direct serving at atol 1e-10.
"""

import numpy as np
import pytest

from harness import FakeClock, StressDriver
from repro import (
    AdmissionPolicy,
    Calibration,
    CostModel,
    DeletionServer,
    FleetServer,
    IncrementalTrainer,
    MaintenancePolicy,
    ModelRegistry,
)
from repro.datasets import make_binary_classification, make_regression

_BINARY = make_binary_classification(400, 10, separation=1.0, seed=81)
_BINARY_B = make_binary_classification(320, 8, separation=1.2, seed=82)
_LINEAR = make_regression(360, 6, noise=0.05, seed=83)

#: Calibration whose crossing point clips to 1.0: every supported commit
#: refreshes.  Its counterpart clips to 0.01: every non-trivial commit
#: recompiles.  Both are deliberately extreme so the compared servers
#: genuinely take different execution paths.
ALWAYS_REFRESH = Calibration(
    refresh_seconds_per_fraction=0.001, recompile_seconds=10.0
)
ALWAYS_RECOMPILE = Calibration(
    refresh_seconds_per_fraction=1000.0, recompile_seconds=0.001
)


def fit_model(kind: str, **extra) -> IncrementalTrainer:
    """Deterministic fits: two calls with the same kind are bit-identical."""
    if kind == "binary":
        trainer = IncrementalTrainer(
            "binary_logistic",
            learning_rate=0.1,
            regularization=0.01,
            batch_size=40,
            n_iterations=50,
            seed=0,
            method="priu",
            **extra,
        )
        trainer.fit(_BINARY.features, _BINARY.labels)
    elif kind == "binary-b":
        trainer = IncrementalTrainer(
            "binary_logistic",
            learning_rate=0.08,
            regularization=0.02,
            batch_size=32,
            n_iterations=45,
            seed=2,
            method="priu",
            **extra,
        )
        trainer.fit(_BINARY_B.features, _BINARY_B.labels)
    elif kind == "linear":
        trainer = IncrementalTrainer(
            "linear",
            learning_rate=0.05,
            regularization=0.01,
            batch_size=36,
            n_iterations=40,
            seed=1,
            method="priu",
            **extra,
        )
        trainer.fit(_LINEAR.features, _LINEAR.labels)
    else:  # pragma: no cover - test bug
        raise ValueError(kind)
    return trainer


def fit_svd_model(**extra) -> IncrementalTrainer:
    """A deterministic SVD-compressed fit (n_params > batch_size).

    Commit refreshes on this config append correction columns to the
    truncated summaries — the maintenance debt the retire test needs a
    model to actually accrue (dense uncompressed refreshes compact
    physically and never owe anything).
    """
    trainer = IncrementalTrainer(
        "binary_logistic",
        learning_rate=0.1,
        regularization=0.01,
        batch_size=8,
        n_iterations=50,
        seed=0,
        method="priu",
        **extra,
    )
    trainer.fit(_BINARY.features, _BINARY.labels)
    return trainer


def _submission_plan(
    seed: int,
    n: int,
    initial_bound: int,
    max_ids: int = 3,
    mixed_lanes: bool = True,
):
    """A deterministic commit-traffic plan: ``(ids, lane)`` per request.

    Ids are drawn against a conservative shrinking bound so the same
    plan is valid no matter how the serving side partitions batches.
    ``mixed_lanes=False`` keeps everything on ``bulk``: with one lane,
    admission order equals submission order for *any* batch
    partitioning, so two servers that close batches differently must
    still commit identically.
    """
    rng = np.random.default_rng(seed)
    bound = initial_bound
    plan = []
    for _ in range(n):
        k = int(rng.integers(1, max_ids + 1))
        if bound <= k + 1:
            break
        ids = np.sort(rng.choice(bound, size=k, replace=False)).astype(
            np.int64
        )
        lane = (
            "deadline"
            if mixed_lanes and rng.random() < 0.25
            else "bulk"
        )
        bound -= k
        plan.append((ids, lane))
    return plan


def _serve_plan(server: DeletionServer, plan, advance=None):
    """Feed a plan through a server; start it after queuing if not started.

    Pre-start queuing (``autostart=False``) makes the *global* admission
    order deterministic even across lanes — the worker drains the whole
    queue in (lane priority, submission order), the same way every run.
    """
    futures = []
    for ids, lane in plan:
        futures.append(server.submit(ids, lane=lane))
        if advance is not None:
            advance()
    server.start()
    assert server.flush(timeout=30)
    server.close()
    return [future.result(timeout=30) for future in futures]


# ------------------------------------------------------- answer preservation
class TestAnswerPreservation:
    """Cost-driven decisions re-route execution, never the answer."""

    def test_commit_answers_match_fixed_threshold_reference(self):
        """Reference (fixed threshold) vs always-refresh vs always-recompile
        cost models: identical commit traffic, identical answers."""
        plan = _submission_plan(
            seed=91, n=24, initial_bound=_BINARY_B.features.shape[0]
        )
        policy = AdmissionPolicy(max_batch=4, max_delay_seconds=0.02)
        runs = {}
        for name, cost_model in (
            ("reference", None),
            ("refresh", CostModel(ALWAYS_REFRESH)),
            ("recompile", CostModel(ALWAYS_RECOMPILE)),
        ):
            trainer = fit_model("binary-b", cost_model=cost_model)
            server = DeletionServer(
                trainer,
                policy,
                method="priu",
                commit_mode=True,
                autostart=False,
                clock=FakeClock(),
            )
            outcomes = _serve_plan(server, plan)
            runs[name] = (trainer, outcomes)

        reference_trainer, reference_outcomes = runs["reference"]
        for name in ("refresh", "recompile"):
            trainer, outcomes = runs[name]
            for i, (outcome, expected) in enumerate(
                zip(outcomes, reference_outcomes)
            ):
                np.testing.assert_allclose(
                    outcome.weights, expected.weights, atol=1e-10, rtol=0.0,
                    err_msg=f"{name}: request {i} diverged",
                )
                assert np.array_equal(outcome.removed, expected.removed)
            np.testing.assert_allclose(
                trainer.weights_, reference_trainer.weights_,
                atol=1e-10, rtol=0.0,
            )
            assert np.array_equal(
                trainer.deletion_log, reference_trainer.deletion_log
            )

        # The comparison is only meaningful if the paths really diverged:
        # the decision logs must show each extreme took its namesake mode.
        # (replay-kernel calibration entries share the ring; ignore them.)
        refresh_modes = {
            d["actual_mode"]
            for d in runs["refresh"][0].cost_model.decisions()
            if d.get("kind") != "replay"
        }
        recompile_modes = {
            d["actual_mode"]
            for d in runs["recompile"][0].cost_model.decisions()
            if d.get("kind") != "replay"
        }
        assert refresh_modes == {"refresh"}
        assert recompile_modes == {"recompile"}

    def test_early_closing_preserves_answers(self):
        """A policy-level cost model that always closes early re-partitions
        batches (different ``remove_many`` groupings); every counterfactual
        answer still matches the fixed-budget reference at atol 1e-10."""
        plan = _submission_plan(
            seed=92,
            n=24,
            initial_bound=_BINARY_B.features.shape[0],
            mixed_lanes=False,
        )
        # A tiny predicted batch time: the marginal coalescing saving
        # always loses to the remaining wait, so every batch closes the
        # moment it has one member (later sweeps still ride for free).
        eager = CostModel(Calibration(batch_seconds=1e-9))
        runs = {}
        for name, policy in (
            ("reference", AdmissionPolicy(max_batch=4, max_delay_seconds=0.02)),
            (
                "eager",
                AdmissionPolicy(
                    max_batch=4, max_delay_seconds=0.02, cost_model=eager
                ),
            ),
        ):
            clock = FakeClock()
            server = DeletionServer(
                fit_model("binary-b"),
                policy,
                method="priu",
                autostart=True,
                clock=clock,
            )
            runs[name] = _serve_plan(
                server, plan, advance=lambda c=clock: c.advance(0.003)
            )
        for i, (outcome, expected) in enumerate(
            zip(runs["eager"], runs["reference"])
        ):
            np.testing.assert_allclose(
                outcome.weights, expected.weights, atol=1e-10, rtol=0.0,
                err_msg=f"early-closing request {i} diverged",
            )
            assert np.array_equal(outcome.removed, expected.removed)
        # (That the eager policy really does dispatch without waiting is
        # proved deterministically in TestEarlyClosing — here the batch
        # interleaving races the submitter, so only answers are compared.)


# ------------------------------------------------------------ early closing
class TestEarlyClosing:
    """Calibrated batch time turns 'wait out the budget' into 'go now'."""

    def _lone_bulk_wait(self, policy: AdmissionPolicy) -> float:
        trainer = fit_model("binary")
        server = DeletionServer(
            trainer, policy, method="priu", autostart=True, clock=FakeClock()
        )
        outcome = server.resolve([3, 7], lane="bulk", timeout=30)
        server.close()
        return outcome.wait_seconds

    def test_calibrated_server_dispatches_lone_bulk_immediately(self):
        policy = AdmissionPolicy(
            max_batch=16,
            max_delay_seconds=0.03,
            cost_model=CostModel(Calibration(batch_seconds=1e-9)),
        )
        assert self._lone_bulk_wait(policy) == 0.0

    def test_uncalibrated_model_keeps_the_fixed_budget(self):
        """batch_seconds == 0 means unknown: early closing stays off, the
        lone bulk request waits out the full coalescing delay."""
        policy = AdmissionPolicy(
            max_batch=16,
            max_delay_seconds=0.03,
            cost_model=CostModel(),
        )
        assert self._lone_bulk_wait(policy) == 0.03

    def test_fleet_cost_ready_dispatches_lone_bulk_immediately(self):
        """The fleet's scheduler consults the same rule (``cost_ready``):
        a calibrated policy model wakes the queue without waiting."""
        trainer = fit_model("binary")
        registry = ModelRegistry()
        registry.register("m", trainer=trainer)
        policy = AdmissionPolicy(
            max_batch=16,
            max_delay_seconds=0.03,
            cost_model=CostModel(Calibration(batch_seconds=1e-9)),
        )
        fleet = FleetServer(
            registry,
            policy,
            method="priu",
            n_workers=1,
            clock=FakeClock(),
            autostart=True,
        )
        future = fleet.submit("m", [1, 2], lane="bulk")
        assert fleet.flush(timeout=30)
        fleet.close()
        assert future.result(timeout=30).wait_seconds == 0.0


# -------------------------------------------------------- estimate coverage
class TestPredictedEstimates:
    """Every served batch on a cost-model trainer carries its estimate."""

    def test_outcomes_share_the_batch_union_estimate(self):
        trainer = fit_model("binary", cost_model=CostModel())
        server = DeletionServer(
            trainer,
            AdmissionPolicy(max_batch=8, max_delay_seconds=0.02),
            method="priu",
            autostart=False,
            clock=FakeClock(),
        )
        futures = [
            server.submit(ids, lane="bulk")
            for ids in ([1, 5], [5, 9], [200])
        ]
        server.start()
        assert server.flush(timeout=30)
        server.close()
        outcomes = [future.result(timeout=30) for future in futures]
        assert all(o.batch_size == 3 for o in outcomes)
        predicted = outcomes[0].predicted
        assert predicted is not None
        # One estimate per batch, shared by every member, priced on the
        # union of their removal sets ({1, 5, 9, 200}).
        assert all(o.predicted is predicted for o in outcomes)
        assert predicted["n_removed"] == 4
        assert predicted["mode"] in ("refresh", "recompile")
        assert predicted["plan_patch_bytes"] > 0

    def test_no_cost_model_means_no_estimate(self):
        trainer = fit_model("binary")
        server = DeletionServer(
            trainer, method="priu", autostart=True, clock=FakeClock()
        )
        outcome = server.resolve([2, 4], timeout=30)
        server.close()
        assert outcome.predicted is None

    def test_served_batches_feed_online_batch_calibration(self):
        """Real clock: one dispatch seeds batch_seconds from its measured
        service time, flipping the calibration source to 'online'."""
        cost_model = CostModel()
        assert cost_model.calibration.batch_seconds == 0.0
        trainer = fit_model("binary", cost_model=cost_model)
        server = DeletionServer(trainer, method="priu", autostart=True)
        server.resolve([2, 4], timeout=30)
        server.close()
        calibration = cost_model.calibration
        assert calibration.batch_seconds > 0.0
        assert calibration.source == "online"


# ------------------------------------------------ maintenance-aware retire
@pytest.fixture()
def checkpoint(tmp_path):
    directory = tmp_path / "ckpt"
    fit_model("binary").save_checkpoint(directory)
    return directory


class TestRetire:
    """``ModelRegistry.retire``: reclaim, checkpoint, then drop."""

    def _registry(self, checkpoint, **register_kwargs) -> ModelRegistry:
        registry = ModelRegistry()
        registry.register(
            "m",
            checkpoint=checkpoint,
            features=_BINARY.features,
            labels=_BINARY.labels,
            method="priu",
            **register_kwargs,
        )
        return registry

    def test_refuses_non_resident_and_unknown(self, checkpoint):
        registry = self._registry(checkpoint)
        assert registry.retire("m") is False  # never loaded
        with pytest.raises(ValueError, match="unknown model id"):
            registry.retire("ghost")

    def test_refuses_live_trainer_registrations(self):
        registry = ModelRegistry()
        registry.register("live", trainer=fit_model("binary"))
        # Resident but non-evictable: there is nothing to reload it from.
        assert registry.retire("live") is False
        assert registry.resident_trainer("live") is not None

    def test_refuses_pinned_models(self, checkpoint):
        registry = self._registry(checkpoint)
        registry.get("m")
        with registry.pinned("m"):
            assert registry.retire("m") is False
        assert registry.retire("m") is True

    def test_evicts_clean_resident(self, checkpoint):
        registry = self._registry(checkpoint)
        registry.get("m")
        assert registry.retire("m") is True
        assert registry.resident_trainer("m") is None
        assert registry.epoch("m") == 0  # clean: nothing was rewritten

    def test_dirty_commit_model_maintains_saves_and_evicts(self, checkpoint):
        """The full retire path: commit traffic dirties the model and
        accrues maintenance debt; retire reclaims the debt (the derived
        policy stops being due), bumps the checkpoint epoch, evicts, and
        a reload answers from the committed state."""
        cost_model = CostModel(ALWAYS_REFRESH)  # tightest derived limits
        checkpoint = checkpoint.parent / "svd-ckpt"
        fit_svd_model().save_checkpoint(checkpoint)
        registry = self._registry(checkpoint, cost_model=cost_model)
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_batch=4, max_delay_seconds=0.01),
            method="priu",
            n_workers=1,
            clock=FakeClock(),
            autostart=True,
        )
        fleet.configure_model("m", commit_mode=True)
        policy = cost_model.maintenance_policy(MaintenancePolicy())
        trainer = None
        committed = []
        rng = np.random.default_rng(7)
        for _ in range(40):
            bound = registry.n_samples("m")
            ids = np.sort(rng.choice(bound, size=3, replace=False)).astype(
                np.int64
            )
            fleet.submit("m", ids).result(timeout=30)
            committed.append(ids)
            trainer = registry.resident_trainer("m")
            if policy.due(trainer.maintenance_cost(include_bytes=False)):
                break
        else:  # pragma: no cover - calibration regression
            pytest.fail("commit churn never made maintenance due")
        assert fleet.flush(timeout=30)
        assert "m" in registry.dirty_ids()
        epoch_before = registry.epoch("m")

        assert registry.retire("m", policy=policy) is True
        fleet.close()
        # The debt was reclaimed on the way out, the checkpoint rewritten,
        # and the model dropped.
        assert not policy.due(trainer.maintenance_cost(include_bytes=False))
        assert registry.resident_trainer("m") is None
        assert registry.epoch("m") == epoch_before + 1

        # A reload serves the committed state: same answers as replaying
        # the same committed sequence on a fresh reference trainer.
        reloaded = registry.get("m")
        reference = fit_svd_model()
        for ids in committed:
            reference.commit(reference.remove(ids, method="priu"))
        assert reloaded.n_samples == reference.n_samples
        np.testing.assert_allclose(
            reloaded.weights_, reference.weights_, atol=1e-10, rtol=0.0
        )
        probe = np.array([0, 11], dtype=np.int64)
        np.testing.assert_allclose(
            reloaded.remove(probe, method="priu").weights,
            reference.remove(probe, method="priu").weights,
            atol=1e-10,
            rtol=0.0,
        )

    def test_failed_save_keeps_the_model_resident(self, checkpoint):
        """A dirty model whose checkpoint write fails stays resident and
        dirty — retire reports False instead of dropping committed state."""
        registry = self._registry(checkpoint)
        trainer = registry.get("m")
        trainer.commit(trainer.remove([3, 5], method="priu"))
        assert "m" in registry.dirty_ids()
        # Sabotage the rewrite: shadow the archive with a directory, so
        # the crash-atomic temp+rename in save_checkpoint cannot land.
        import shutil

        shutil.rmtree(checkpoint)
        (checkpoint / "store.npz").mkdir(parents=True)
        assert registry.retire("m") is False
        assert registry.resident_trainer("m") is trainer
        assert "m" in registry.dirty_ids()


# ------------------------------------------------------------------- stress
STRESS_SEEDS = (607, 811)


@pytest.fixture(scope="module")
def cost_checkpoint(tmp_path_factory):
    """A saved checkpoint for the model the cost op may retire and reload."""
    directory = tmp_path_factory.mktemp("cost") / "ckpt"
    fit_model("binary").save_checkpoint(directory)
    return directory


@pytest.mark.parametrize("seed", STRESS_SEEDS)
def test_stress_cost_op_and_estimate_coverage(seed, cost_checkpoint):
    """Randomized traffic with the ``cost`` op enabled: subset/superset
    estimates stay monotone, every served batch on a cost model carries
    its estimate (invariant I5), maintenance-aware retirement runs
    mid-traffic, and stateless answers still match direct serving."""
    shared = CostModel()  # survives retire/reload via the spec's load_kwargs
    registry = ModelRegistry()
    registry.register(
        "cost-bin",
        checkpoint=cost_checkpoint,
        features=_BINARY.features,
        labels=_BINARY.labels,
        method="priu",
        cost_model=shared,
    )
    live = {
        "cost-lin": fit_model("linear", cost_model=CostModel()),
        "cost-commit": fit_model("binary-b", cost_model=CostModel()),
    }
    for model_id, trainer in live.items():
        registry.register(model_id, trainer=trainer)
    clock = FakeClock()
    fleet = FleetServer(
        registry,
        AdmissionPolicy(
            max_batch=4,
            max_delay_seconds=0.02,
            max_pending=8,
            cost_model=CostModel(),
        ),
        method="priu",
        n_workers=2,
        clock=clock,
        autostart=False,
    )
    fleet.configure_model("cost-commit", commit_mode=True)
    fleet.start()
    driver = StressDriver(
        fleet,
        model_ids=["cost-bin", "cost-lin", "cost-commit"],
        n_samples={
            "cost-bin": _BINARY.features.shape[0],
            "cost-lin": live["cost-lin"].n_samples,
            "cost-commit": live["cost-commit"].n_samples,
        },
        commit_models={"cost-commit"},
        lanes=("bulk", "deadline"),
        seed=seed,
        clock=clock,
        cost_models={"cost-bin", "cost-lin", "cost-commit"},
    )
    report = driver.run(n_ops=300)

    # The cost op genuinely fired: estimates were taken and checked.
    assert report.cost_estimates > 0

    # Every successfully answered request is still correct against direct
    # serving (retire/reload on cost-bin changes nothing).
    reference = {
        "cost-bin": fit_model("binary"),
        "cost-lin": live["cost-lin"],
    }
    for submitted in report.served():
        if submitted.model_id == "cost-commit":
            continue
        outcome = submitted.future.result()
        expected = reference[submitted.model_id].remove(
            submitted.ids, method="priu"
        )
        np.testing.assert_allclose(
            outcome.weights, expected.weights, atol=1e-10, rtol=0.0,
            err_msg=f"seed {seed}: {submitted.model_id} {submitted.ids}",
        )


def test_stress_retire_fires_on_checkpoint_backed_cost_model(cost_checkpoint):
    """At least one seed's run retires the evictable cost model mid-run
    (live-trainer registrations always refuse, so only cost-bin counts)."""
    total_retired = 0
    for seed in STRESS_SEEDS:
        registry = ModelRegistry()
        registry.register(
            "cost-bin",
            checkpoint=cost_checkpoint,
            features=_BINARY.features,
            labels=_BINARY.labels,
            method="priu",
            cost_model=CostModel(),
        )
        clock = FakeClock()
        fleet = FleetServer(
            registry,
            AdmissionPolicy(max_batch=4, max_delay_seconds=0.02, max_pending=8),
            method="priu",
            n_workers=1,
            clock=clock,
            autostart=True,
        )
        driver = StressDriver(
            fleet,
            model_ids=["cost-bin"],
            n_samples={"cost-bin": _BINARY.features.shape[0]},
            seed=seed,
            clock=clock,
            cost_models={"cost-bin"},
        )
        report = driver.run(n_ops=200)
        total_retired += report.retired
    assert total_retired > 0


def test_cost_models_must_not_overlap_maintain_models():
    trainer = fit_model("binary")
    registry = ModelRegistry()
    registry.register("m", trainer=trainer)
    fleet = FleetServer(registry, autostart=False)
    with pytest.raises(ValueError, match="disjoint"):
        StressDriver(
            fleet,
            model_ids=["m"],
            n_samples={"m": trainer.n_samples},
            maintain_models={"m"},
            cost_models={"m"},
        )
    fleet.close()
