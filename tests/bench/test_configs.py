"""Unit tests for benchmark configurations (Table 2)."""

import pytest

from repro.bench import CONFIGS, DELETION_RATES, get


class TestConfigRegistry:
    def test_every_section6_experiment_present(self):
        expected = {
            "SGEMM (original)", "SGEMM (extended)",
            "Cov (small)", "Cov (large 1)", "Cov (large 2)",
            "HIGGS", "Heartbeat", "RCV1", "cifar10",
            "Cov (extended)", "HIGGS (extended)", "Heartbeat (extended)",
        }
        assert expected <= set(CONFIGS)

    def test_paper_hyperparameters_recorded(self):
        for config in CONFIGS.values():
            assert config.paper is not None
            assert config.paper.n_iterations >= config.n_iterations

    def test_minibatch_contrast_preserved(self):
        """Cov (small) vs (large): the B contrast driving Q6."""
        assert CONFIGS["Cov (small)"].batch_size < CONFIGS["Cov (large 1)"].batch_size
        assert (
            CONFIGS["Cov (large 2)"].n_iterations
            > CONFIGS["Cov (large 1)"].n_iterations
        )
        assert (
            CONFIGS["Cov (large 1)"].batch_size
            == CONFIGS["Cov (large 2)"].batch_size
        )

    def test_sparse_and_large_use_priu_only(self):
        assert CONFIGS["RCV1"].method == "priu"
        assert CONFIGS["cifar10"].method == "priu"

    def test_loadable(self):
        import dataclasses

        config = dataclasses.replace(get("HIGGS"), scale=0.005)
        data = config.load()
        assert data.task == config.task

    def test_trainer_kwargs_complete(self):
        kwargs = get("Cov (small)").trainer_kwargs()
        assert kwargs["task"] == "multinomial_logistic"
        assert kwargs["n_classes"] == 7

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get("MNIST (large)")

    def test_deletion_rates_span_paper_range(self):
        assert min(DELETION_RATES) <= 0.001
        assert max(DELETION_RATES) == 0.2
