"""Unit tests for benchmark reporting and the run_all harness plumbing."""

import os
from pathlib import Path

import pytest

from repro.bench import reporting
from repro.bench.run_all import (
    REPEATED_EXPERIMENTS,
    TABLE4_EXPERIMENTS,
    UPDATE_TIME_EXPERIMENTS,
    main,
)


class TestReporting:
    def test_render_contains_title_and_rows(self):
        text = reporting.render("My title", [{"x": 1.5, "y": "ok"}])
        assert "My title" in text
        assert "1.5000" in text
        assert "ok" in text

    def test_save_writes_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        path = reporting.save("unit", "hello\n")
        assert path.read_text() == "hello\n"
        assert path.parent == tmp_path

    def test_report_echoes_and_persists(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        reporting.report("unit2", "Title", [{"a": 1}])
        captured = capsys.readouterr()
        assert "Title" in captured.out
        assert (tmp_path / "unit2.txt").exists()

    def test_report_silent_mode(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        reporting.report("unit3", "Quiet", [{"a": 1}], echo=False)
        assert capsys.readouterr().out == ""


class TestRunAllRegistry:
    def test_every_figure_has_an_experiment(self):
        expected = {
            "fig1a", "fig1b", "fig2a", "fig2b", "fig2c",
            "fig3a", "fig3b", "fig3c-rcv1", "fig3c-cifar10",
        }
        assert set(UPDATE_TIME_EXPERIMENTS) == expected

    def test_fig4_covers_three_extended_datasets(self):
        assert len(REPEATED_EXPERIMENTS) == 3
        assert all("extended" in name for name in REPEATED_EXPERIMENTS.values())

    def test_table4_experiments_exist_in_configs(self):
        from repro.bench import CONFIGS

        for name in TABLE4_EXPERIMENTS:
            assert name in CONFIGS

    def test_main_quick_table1(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        main(["--quick", "--only", "table1"])
        assert (tmp_path / "table1_datasets.txt").exists()
        assert "Table 1" in capsys.readouterr().out
