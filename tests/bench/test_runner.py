"""Unit tests for the benchmark runner (on miniature workloads)."""

import dataclasses

import numpy as np
import pytest

from repro.bench import (
    CONFIGS,
    accuracy_rows,
    available_methods,
    dataset_summary_rows,
    memory_row,
    prepare_workload,
    repeated_deletion_rows,
    run_update,
    sweep_update_times,
)


@pytest.fixture(scope="module")
def tiny_linear_workload():
    config = dataclasses.replace(
        CONFIGS["SGEMM (original)"], scale=0.01, n_iterations=40
    )
    return prepare_workload(config)


@pytest.fixture(scope="module")
def tiny_logistic_workload():
    config = dataclasses.replace(
        CONFIGS["HIGGS"], scale=0.002, n_iterations=40, batch_size=50
    )
    return prepare_workload(config)


class TestPrepareWorkload:
    def test_linear_methods(self, tiny_linear_workload):
        methods = available_methods(tiny_linear_workload)
        assert set(methods) == {"basel", "priu", "priu-opt", "closed-form", "infl"}

    def test_dirty_preparation(self):
        config = dataclasses.replace(
            CONFIGS["SGEMM (original)"], scale=0.01, n_iterations=20
        )
        workload = prepare_workload(config, dirty_rate=0.1)
        assert workload.dirty_indices is not None
        assert workload.dirty_indices.size == round(0.1 * workload.n_samples)

    def test_subset_rate(self, tiny_linear_workload):
        subset = tiny_linear_workload.subset(0.05, seed=3)
        assert subset.size == round(0.05 * tiny_linear_workload.n_samples)

    def test_run_update_dispatch(self, tiny_linear_workload):
        removed = tiny_linear_workload.subset(0.02)
        for method in available_methods(tiny_linear_workload):
            weights = run_update(tiny_linear_workload, method, removed)
            assert np.isfinite(weights).all()
        with pytest.raises(ValueError):
            run_update(tiny_linear_workload, "oracle", removed)


class TestSweeps:
    def test_sweep_rows_structure(self, tiny_logistic_workload):
        rows = sweep_update_times(
            tiny_logistic_workload, [0.01, 0.1], methods=["basel", "priu"]
        )
        assert len(rows) == 4
        basel_row = next(r for r in rows if r["method"] == "basel")
        assert basel_row["speedup_vs_basel"] == pytest.approx(1.0)
        priu_row = next(r for r in rows if r["method"] == "priu")
        assert priu_row["update_seconds"] > 0

    def test_accuracy_rows(self, tiny_logistic_workload):
        removed = tiny_logistic_workload.subset(0.1)
        rows = accuracy_rows(tiny_logistic_workload, removed)
        methods = {row["method"] for row in rows}
        assert "priu" in methods
        for row in rows:
            assert -1.0 <= row["similarity"] <= 1.0

    def test_repeated_deletions(self, tiny_logistic_workload):
        rows = repeated_deletion_rows(
            tiny_logistic_workload, n_subsets=3, deletion_rate=0.01,
            methods=["basel", "priu"],
        )
        assert len(rows) == 2
        assert all(row["n_subsets"] == 3 for row in rows)
        basel = next(r for r in rows if r["method"] == "basel")
        assert basel["speedup_vs_basel"] == pytest.approx(1.0)

    def test_memory_row(self, tiny_logistic_workload):
        report = memory_row(tiny_logistic_workload)
        assert report.priu > report.basel

    def test_dataset_summary(self):
        rows = dataset_summary_rows()
        names = {row["name"] for row in rows}
        assert names == {"SGEMM", "Cov", "HIGGS", "RCV1", "Heartbeat", "cifar10"}
