"""Rule self-tests: each reprolint rule fires on a planted violation and
stays silent on the conforming twin.

These fixtures are synthetic source strings fed straight into the
analysis engine — no files on disk, no dependence on the repository's
own (clean) code.  Every rule gets at least one firing case and one
silent case, so a rule that rots into always-pass or always-fail is
caught here before CI trusts it.
"""

import textwrap
from pathlib import Path

from repro.analysis import MODULE_RULES, PROJECT_RULES, Module, run_rules


def report_for(*files):
    """Analyze ``(rel_path, source)`` pairs as an in-memory project."""
    modules = []
    for rel, text in files:
        role = "tests" if rel.startswith("tests/") else "src"
        modules.append(
            Module(Path("/project") / rel, rel, textwrap.dedent(text), role)
        )
    return run_rules(modules, MODULE_RULES, PROJECT_RULES)


def fired(report):
    return sorted({violation.rule for violation in report.violations})


# ---------------------------------------------------------------------------
# R001 — clock discipline in src/


WALL_CLOCK_SRC = """
    import time


    def stamp():
        return time.time()
"""


def test_r001_fires_on_wall_clock_outside_clock_module():
    report = report_for(("src/repro/serving/thing.py", WALL_CLOCK_SRC))
    assert fired(report) == ["R001"]


def test_r001_catches_aliased_imports():
    report = report_for(
        (
            "src/repro/core/thing.py",
            """
            from time import monotonic as _mono


            def tick():
                return _mono()
            """,
        )
    )
    assert fired(report) == ["R001"]


def test_r001_exempts_the_clock_module_itself():
    report = report_for(("src/repro/serving/clock.py", WALL_CLOCK_SRC))
    assert report.ok and not report.waived


def test_waiver_with_rationale_suppresses_but_is_recorded():
    report = report_for(
        (
            "src/repro/serving/thing.py",
            """
            import time


            def stamp():
                return time.time()  # reprolint: allow[R001] fixture rationale
            """,
        )
    )
    assert report.ok
    assert len(report.waived) == 1
    assert report.waived[0].violation.rule == "R001"


def test_waiver_without_rationale_is_itself_a_violation():
    report = report_for(
        (
            "src/repro/serving/thing.py",
            """
            import time


            def stamp():
                return time.time()  # reprolint: allow[R001]
            """,
        )
    )
    # The bare pragma earns R000 and does NOT silence the R001 it targets.
    assert fired(report) == ["R000", "R001"]


# ---------------------------------------------------------------------------
# R002 — lock discipline


GUARDED_CLASS = """
    import threading


    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0  # guarded-by: _lock

        def bump(self):
            %s
"""


def test_r002_fires_on_unguarded_touch_of_annotated_attr():
    report = report_for(
        ("src/repro/serving/c.py", GUARDED_CLASS % "self._count += 1")
    )
    assert fired(report) == ["R002"]


def test_r002_silent_when_touch_is_inside_with_lock():
    body = "with self._lock:\n                self._count += 1"
    report = report_for(("src/repro/serving/c.py", GUARDED_CLASS % body))
    assert report.ok


def test_r002_honors_caller_holds_annotation():
    report = report_for(
        (
            "src/repro/serving/c.py",
            """
            import threading


            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):  # caller-holds: _lock
                    self._count += 1
            """,
        )
    )
    assert report.ok


def test_r002_reads_class_level_guardedby_descriptor():
    report = report_for(
        (
            "src/repro/serving/c.py",
            """
            import threading

            from ..testing.races import GuardedBy


            class Counter:
                _count = GuardedBy("_lock")

                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def peek(self):
                    return self._count
            """,
        )
    )
    assert fired(report) == ["R002"]


# ---------------------------------------------------------------------------
# R003 — fault-point coverage (project rule, needs core/serialization.py)


FAKE_SERIALIZATION = """
    def _fault(event, path):
        pass


    def _write(path, *, tag):
        _fault(f"{tag}.begin", path)
        _fault(f"{tag}.done", path)


    def save(path):
        _write(path, tag="store")
"""


def test_r003_fires_when_a_seam_has_no_test_literal():
    report = report_for(
        ("src/repro/core/serialization.py", FAKE_SERIALIZATION),
        ("tests/test_sweep.py", 'GOLDEN = {"store.begin"}\n'),
    )
    assert fired(report) == ["R003"]
    assert "store.done" in report.violations[0].message


def test_r003_silent_when_every_seam_is_pinned():
    report = report_for(
        ("src/repro/core/serialization.py", FAKE_SERIALIZATION),
        ("tests/test_sweep.py", 'GOLDEN = {"store.begin", "store.done"}\n'),
    )
    assert report.ok


def test_r003_wildcard_literal_covers_data_dependent_seam():
    source = """
        def _fault(event, path):
            pass


        def commit(members, path):
            for member in members:
                _fault(f"commit.rename.{member}", path)
    """
    report = report_for(
        ("src/repro/core/serialization.py", source),
        ("tests/test_sweep.py", 'GOLDEN = {"commit.rename.*"}\n'),
    )
    assert report.ok


def test_r003_flags_a_serialization_module_with_no_seams_at_all():
    report = report_for(
        ("src/repro/core/serialization.py", "def save(path):\n    pass\n"),
        ("tests/test_sweep.py", "x = 1\n"),
    )
    assert fired(report) == ["R003"]


# ---------------------------------------------------------------------------
# R004 — serving error taxonomy


def test_r004_fires_on_bare_runtimeerror_in_serving():
    report = report_for(
        (
            "src/repro/serving/thing.py",
            """
            def close(server):
                raise RuntimeError("server closed")
            """,
        )
    )
    assert fired(report) == ["R004"]


def test_r004_allows_typed_and_api_misuse_errors():
    report = report_for(
        (
            "src/repro/serving/thing.py",
            """
            from .errors import ServerClosedError


            def close(server):
                if server.closed:
                    raise ServerClosedError("already closed")
                if server.lane < 0:
                    raise ValueError("lane must be >= 0")
            """,
        )
    )
    assert report.ok


def test_r004_ignores_non_serving_src_and_the_errors_module():
    report = report_for(
        ("src/repro/core/thing.py", 'raise RuntimeError("fine here")\n'),
        (
            "src/repro/serving/errors.py",
            'raise RuntimeError("taxonomy home")\n',
        ),
    )
    assert report.ok


# ---------------------------------------------------------------------------
# R005 — deterministic tier-1 tests


def test_r005_fires_on_real_sleep_in_tests():
    report = report_for(
        (
            "tests/serving/test_thing.py",
            """
            import time


            def test_slow():
                time.sleep(0.5)
            """,
        )
    )
    assert fired(report) == ["R005"]


def test_r005_silent_on_fake_clock_tests():
    report = report_for(
        (
            "tests/serving/test_thing.py",
            """
            def test_fast(fake_clock):
                fake_clock.advance(5.0)
                assert fake_clock.now() == 5.0
            """,
        )
    )
    assert report.ok


def test_r005_standalone_waiver_comment_covers_next_code_line():
    report = report_for(
        (
            "tests/serving/test_thing.py",
            """
            import time


            def test_measures_wall_clock():
                # reprolint: allow[R005] the subject under test is timing
                elapsed = time.monotonic()
                assert elapsed >= 0
            """,
        )
    )
    assert report.ok
    assert len(report.waived) == 1


# ---------------------------------------------------------------------------
# R006 — replay kernel discipline


REPLAY_LOOP_SRC = """
    import numpy as np


    def run(lefts, rights, weights, start, end):
        for t in range(start, end):
            weights = lefts[t] @ (rights[t].T @ weights)
        return weights
"""


def test_r006_fires_on_range_loop_with_matmul_in_replay_module():
    report = report_for(("src/repro/core/replay_plan.py", REPLAY_LOOP_SRC))
    assert fired(report) == ["R006"]


def test_r006_fires_on_numpy_product_calls_too():
    report = report_for(
        (
            "src/repro/core/kernels.py",
            """
            import numpy as np


            def run(summaries, weights, tau):
                for t in range(tau):
                    weights = np.dot(summaries[t], weights)
                return weights
            """,
        )
    )
    assert fired(report) == ["R006"]


def test_r006_flags_only_the_outermost_offending_loop():
    report = report_for(
        (
            "src/repro/core/replay_plan.py",
            """
            def run(blocks, weights, n, k):
                for i in range(n):
                    for j in range(k):
                        weights = blocks[i][j] @ weights
                return weights
            """,
        )
    )
    assert [v.rule for v in report.violations] == ["R006"]


def test_r006_ignores_loops_without_matrix_products():
    report = report_for(
        (
            "src/repro/core/replay_plan.py",
            """
            def total(base_sizes, tau):
                acc = 0
                for t in range(tau):
                    acc += base_sizes[t]
                return acc
            """,
        )
    )
    assert report.ok and not report.waived


def test_r006_ignores_modules_off_the_replay_path():
    report = report_for(("src/repro/serving/router.py", REPLAY_LOOP_SRC))
    assert report.ok


def test_r006_waiver_marks_the_sanctioned_fallback():
    report = report_for(
        (
            "src/repro/core/replay_plan.py",
            """
            def run_scalar(lefts, rights, weights, start, end):
                # reprolint: allow[R006] sanctioned per-iteration fallback
                for t in range(start, end):
                    weights = lefts[t] @ (rights[t].T @ weights)
                return weights
            """,
        )
    )
    assert report.ok
    assert len(report.waived) == 1
