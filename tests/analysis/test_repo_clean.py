"""The repository itself must pass its own lint gate.

CI runs ``tools/lint.py`` as a separate job, but keeping this inside
tier-1 means a violation fails the ordinary test run too — nobody needs
to remember to run the linter before pushing.
"""

import json
from pathlib import Path

from repro.analysis.__main__ import main

ROOT = Path(__file__).resolve().parents[2]


def test_repository_is_lint_clean(capsys, tmp_path):
    report_path = tmp_path / "report.json"
    exit_code = main(["--root", str(ROOT), "--json", str(report_path)])
    output = capsys.readouterr().out
    assert exit_code == 0, f"reprolint found violations:\n{output}"

    report = json.loads(report_path.read_text(encoding="utf-8"))
    assert report["violations"] == []
    # Waivers carry their rationale into the artifact so reviewers can
    # audit every exemption from the JSON report alone.
    assert all(entry["rationale"] for entry in report["waived"])
    assert report["files"] > 100  # the scan actually covered the tree
