"""Drift regression: static fault-point discovery vs the live protocol.

Three views of the durability protocol's fault seams must agree:

* the **golden set** below — the reviewed, human-readable contract;
* the **static set** — ``repro.analysis.faultpoints.discover_fault_points``
  reading ``core/serialization.py``'s AST;
* the **dynamic set** — event names actually emitted through the fault
  hook by a full ``save_checkpoint`` (via ``record_fault_points``).

If someone adds a ``_fault(...)`` seam without teaching the enumeration
(or vice versa), exactly one of these comparisons breaks and names the
missing seam.  This is also the test that satisfies reprolint rule R003:
every golden pattern appears here as a literal.
"""

from fnmatch import fnmatchcase

import pytest

from repro.analysis import discover_fault_points
from repro.core import IncrementalTrainer
from repro.datasets import make_regression
from repro.testing import record_fault_points

# The reviewed seam contract.  ``commit.rename.*`` is parameterized by
# archive member name; everything else is a concrete event.
GOLDEN = frozenset(
    {
        "commit.clear-journal",
        "commit.done",
        "commit.rename.*",
        "journal.begin",
        "journal.renamed",
        "journal.temp-synced",
        "journal.temp-written",
        "plan.begin",
        "plan.renamed",
        "plan.temp-synced",
        "plan.temp-written",
        "store.begin",
        "store.renamed",
        "store.temp-synced",
        "store.temp-written",
    }
)


def test_static_discovery_matches_golden_set():
    assert discover_fault_points() == GOLDEN


@pytest.fixture(scope="module")
def checkpoint_events(tmp_path_factory):
    """Event names emitted by one full checkpoint save."""
    data = make_regression(120, 5, noise=0.05, seed=77)
    trainer = IncrementalTrainer(
        "linear",
        learning_rate=0.05,
        regularization=0.01,
        batch_size=30,
        n_iterations=12,
        seed=0,
        method="priu",
    )
    trainer.fit(data.features, data.labels)
    directory = tmp_path_factory.mktemp("drift") / "ckpt"
    return record_fault_points(lambda: trainer.save_checkpoint(directory))


def test_every_emitted_event_is_statically_discovered(checkpoint_events):
    static = discover_fault_points()
    unknown = [
        event
        for event in checkpoint_events
        if not any(fnmatchcase(event, pattern) for pattern in static)
    ]
    assert not unknown, f"events with no discovered seam: {unknown}"


def test_every_discovered_seam_fires_during_a_full_save(checkpoint_events):
    emitted = set(checkpoint_events)
    silent = [
        pattern
        for pattern in discover_fault_points()
        if not any(fnmatchcase(event, pattern) for event in emitted)
    ]
    assert not silent, f"discovered seams never exercised: {silent}"
