"""Multi-model serving: a checkpoint registry + a shared-pool fleet server.

A real deletion-serving deployment fronts *many* trained models at once —
every ``save_checkpoint`` directory is an independently servable unit —
while GDPR-deadline traffic must overtake bulk clean-up sweeps.  This
module supplies that tier:

* :class:`ModelRegistry` — names checkpoints by model id, loads them
  lazily through
  :meth:`~repro.core.api.IncrementalTrainer.from_checkpoint` (validated
  up front via the cheap
  :func:`~repro.core.serialization.read_checkpoint_metadata`), and keeps
  the *resident set* bounded: least-recently-used models are evicted once
  the count or compiled-plan byte caps are exceeded.  Models that have
  committed deletions ("dirty" — their on-disk checkpoint is stale) and
  models pinned by an in-flight dispatch are never evicted.
* :class:`FleetServer` — ``submit(model_id, ids, lane=...)`` routes
  requests to per-model admission queues (same SLA-lane ordering and
  coalescing budgets as :class:`~repro.serving.DeletionServer`) served by
  a shared pool of ``n_workers`` threads.  At most one ``remove_many`` is
  in flight per model (a batched replay already saturates the BLAS
  threads; two per model would fight for cores, and commit mode requires
  serialized application anyway), and ready models are picked round-robin
  so one chatty model cannot starve the rest.  Commit mode and the update
  method are per-model settings; stats are kept per model *and*
  fleet-wide, each with per-lane breakdowns.

All deadline math runs on the same injectable
:class:`~repro.serving.clock.Clock` as the single-model server, so the
whole fleet can be driven deterministically by the fake-clock test
harness (``tests/serving/harness.py``).

Typical use::

    registry = ModelRegistry(max_resident=8)
    registry.register("emea", ckpt_dir_a, features_a, labels_a)
    registry.register("apac", ckpt_dir_b, features_b, labels_b)
    with FleetServer(registry, AdmissionPolicy(max_batch=16)) as fleet:
        urgent = fleet.submit("emea", ids, lane="deadline")
        routine = fleet.submit("apac", other_ids)          # bulk lane
        print(urgent.result().latency_seconds)
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
from collections import OrderedDict
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.api import IncrementalTrainer
from ..core.maintenance import MaintenancePolicy
from ..core.provenance_store import normalize_removed_indices
from ..core.serialization import (
    CheckpointCorruptionError,
    CheckpointMetadata,
    read_checkpoint_metadata,
    save_store,
)
from .clock import MONOTONIC_CLOCK, Clock
from .errors import (
    BackpressureError,
    ModelLoadError,
    ModelQuarantinedError,
    ServerClosedError,
    ServerStateError,
    WorkerCrashedError,
)
from .policy import AdmissionPolicy, _PreemptionGuard
from .server import (
    ServedOutcome,
    _CommitTracker,
    _consistent_store_snapshot,
    _Request,
    _serve_batch,
    _validate_removed,
)
from .stats import ServingStats, StatsFrame, StatsRecorder


# ---------------------------------------------------------------- registry
@dataclass
class _ModelSpec:
    """Everything needed to (re)load one registered model."""

    model_id: str
    checkpoint: object | None  # str | Path; None for live-trainer registrations
    features: object
    labels: object
    metadata: CheckpointMetadata | None
    load_kwargs: dict = field(default_factory=dict)
    # Serializes concurrent loads of THIS model while the registry lock
    # stays free for other models' submits and hits.
    load_lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class _Resident:
    """One loaded model plus the bookkeeping that governs its eviction."""

    trainer: IncrementalTrainer
    loaded_version: int  # store version at load; a change means commits
    evictable: bool  # False for live-trainer registrations (nothing to reload)
    plan_bytes: int


def _default_loader(model_id: str, spec: _ModelSpec) -> IncrementalTrainer:
    """The stock registry loader: ``from_checkpoint`` on the spec's paths."""
    return IncrementalTrainer.from_checkpoint(
        spec.checkpoint,
        spec.features,
        spec.labels,
        **spec.load_kwargs,
    )


@dataclass
class SaveOutcome:
    """One model's result from :meth:`ModelRegistry.save_dirty`.

    ``ok`` models were re-checkpointed (``paths`` names what was written)
    and are evictable again.  Failed models keep ``error`` and stay
    *dirty*: their committed state lives only in memory, the registry
    keeps them resident (dirty models are never evicted), and they keep
    serving — degraded to resident-only until a later save succeeds.
    """

    model_id: str
    ok: bool
    paths: dict | None = None
    error: BaseException | None = None

    def __bool__(self) -> bool:
        return self.ok


@dataclass(frozen=True)
class RetryPolicy:
    """Load-failure handling knobs for :class:`FleetServer`.

    A *transient* load failure (anything but corruption or a missing
    checkpoint) is retried up to ``load_attempts`` times within one
    dispatch, sleeping ``backoff_seconds`` (growing by ``backoff_factor``,
    capped at ``max_backoff_seconds``) between attempts on the fleet's
    injectable clock.  A dispatch that exhausts its attempts counts one
    *consecutive failure* against the model; at ``quarantine_after`` of
    those the model's circuit breaker opens: submits fast-fail with
    :class:`~repro.serving.errors.ModelQuarantinedError` until
    ``probe_interval_seconds`` elapse, when a single half-open probe
    submission is let through.  Non-transient failures
    (:class:`~repro.core.serialization.CheckpointCorruptionError`,
    :class:`FileNotFoundError`) skip the retries and open the breaker
    immediately — the bytes on disk will not get better by waiting.
    """

    load_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 1.0
    quarantine_after: int = 3
    probe_interval_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.load_attempts < 1:
            raise ValueError("load_attempts must be >= 1")
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if self.probe_interval_seconds < 0:
            raise ValueError("probe_interval_seconds must be >= 0")

    def is_transient(self, exc: BaseException) -> bool:
        return not isinstance(
            exc, (CheckpointCorruptionError, FileNotFoundError)
        )


class _ModelHealth:
    """One model's circuit-breaker state (guarded by the fleet's ``_sched``).

    States: ``healthy`` (normal service), ``quarantined`` (breaker open —
    submits fast-fail until ``probe_at``), ``probing`` (half-open — one
    trial submission is queued; its dispatch decides the next state).
    """

    __slots__ = (
        "state", "consecutive_failures", "probe_at", "last_error",
        "quarantines", "load_retries",
    )

    def __init__(self) -> None:
        self.state = "healthy"
        self.consecutive_failures = 0
        self.probe_at: float | None = None
        self.last_error: str | None = None
        self.quarantines = 0  # lifetime count of breaker openings
        self.load_retries = 0  # lifetime count of within-dispatch retries

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "probe_at": self.probe_at,
            "last_error": self.last_error,
            "quarantines": self.quarantines,
            "load_retries": self.load_retries,
        }


class ModelRegistry:
    """Loads and evicts servable checkpoints by model id.

    Parameters
    ----------
    max_resident:
        Upper bound on simultaneously loaded models (None = unbounded).
    max_plan_bytes:
        Upper bound on the summed compiled-plan footprint
        (:meth:`~repro.core.api.IncrementalTrainer.plan_nbytes`) of the
        resident set (None = unbounded).  Both caps are *soft* against
        pinned, dirty and live-registered models: the registry never
        evicts a model whose eviction would lose state or break an
        in-flight dispatch, even if that leaves it over cap.

    A model is **dirty** once its store version moved past the version it
    was loaded with — i.e. deletions were committed in this process.  Its
    on-disk checkpoint no longer describes it, so evicting and reloading
    would silently resurrect the pre-commit model; the registry refuses,
    and :meth:`save_dirty` (or the caller checkpointing explicitly) is the
    way to make it evictable again.
    """

    def __init__(
        self,
        max_resident: int | None = None,
        max_plan_bytes: int | None = None,
        loader=None,
    ) -> None:
        if max_resident is not None and max_resident < 1:
            raise ValueError("max_resident must be >= 1 (or None)")
        if max_plan_bytes is not None and max_plan_bytes < 0:
            raise ValueError("max_plan_bytes must be >= 0 (or None)")
        self.max_resident = max_resident
        self.max_plan_bytes = max_plan_bytes
        # Injectable ``(model_id, spec) -> IncrementalTrainer``; the fault
        # harness substitutes a flaky one to exercise retry/quarantine.
        self._loader = loader if loader is not None else _default_loader
        self._lock = threading.RLock()
        self._specs: dict[str, _ModelSpec] = {}  # guarded-by: _lock
        # Insertion order = recency: least-recently-used first.
        self._resident: "OrderedDict[str, _Resident]" = (  # guarded-by: _lock
            OrderedDict()
        )
        self._pins: dict[str, int] = {}  # guarded-by: _lock
        # Admission history: per-model submit_view() count, the hotness
        # ranking warm_start() pre-loads by.
        self._admissions: dict[str, int] = {}  # guarded-by: _lock
        # Checkpoint epoch: how many times save_dirty() rewrote each
        # model's archive.  Commit-queue translation keys on it — a
        # request validated against an epoch-e checkpoint must not be
        # replayed through commits that checkpoint already contains.
        self._epochs: dict[str, int] = {}  # guarded-by: _lock
        self._loads = 0  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    # ------------------------------------------------------------- membership
    def register(
        self,
        model_id: str,
        checkpoint=None,
        features=None,
        labels=None,
        trainer: IncrementalTrainer | None = None,
        **load_kwargs,
    ) -> CheckpointMetadata | None:
        """Name a servable model.

        Either ``checkpoint`` (a ``save_checkpoint`` directory or store
        archive — loaded lazily, plus the ``features``/``labels`` that
        :meth:`~repro.core.api.IncrementalTrainer.from_checkpoint` needs
        back) or a live fitted ``trainer`` (resident immediately, never
        evictable: there is nothing to reload it from).  Returns the
        checkpoint's metadata (None for live registrations) after
        validating it cheaply — a bad path or corrupt archive fails here,
        not at first traffic.  ``load_kwargs`` are forwarded to
        ``from_checkpoint`` (e.g. ``method=``, ``mmap=``).
        """
        if (checkpoint is None) == (trainer is None):
            raise ValueError(
                "register() needs exactly one of checkpoint= or trainer="
            )
        metadata = None
        if checkpoint is not None:
            if features is None or labels is None:
                raise ValueError(
                    "checkpoint registrations need features= and labels= "
                    "(training data is never persisted in a checkpoint)"
                )
            metadata = read_checkpoint_metadata(checkpoint)
        else:
            trainer._require_fit()
        with self._lock:
            if model_id in self._specs:
                raise ValueError(f"model id already registered: {model_id!r}")
            self._specs[model_id] = _ModelSpec(
                model_id=model_id,
                checkpoint=checkpoint,
                features=features,
                labels=labels,
                metadata=metadata,
                load_kwargs=dict(load_kwargs),
            )
            self._epochs[model_id] = 0
            if trainer is not None:
                self._resident[model_id] = _Resident(
                    trainer=trainer,
                    loaded_version=trainer.store._version,
                    evictable=False,
                    plan_bytes=trainer.plan_nbytes(),
                )
                self._enforce_caps()
        return metadata

    def __contains__(self, model_id: str) -> bool:
        with self._lock:
            return model_id in self._specs

    @property
    def model_ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._specs)

    @property
    def resident_ids(self) -> tuple[str, ...]:
        """Loaded models, least-recently-used first."""
        with self._lock:
            return tuple(self._resident)

    # ------------------------------------------------------------------ load
    def _spec(self, model_id: str) -> _ModelSpec:  # caller-holds: _lock
        try:
            return self._specs[model_id]
        except KeyError:
            raise ValueError(
                f"unknown model id {model_id!r} "
                f"(registered: {sorted(self._specs)})"
            ) from None

    def get(self, model_id: str) -> IncrementalTrainer:
        """The model's trainer, loading the checkpoint on a capacity miss.

        Touches the LRU order and enforces the caps *after* loading, so
        the model just requested is never its own eviction victim.  The
        expensive ``from_checkpoint`` work runs *outside* the registry
        lock (serialized per model by the spec's load latch), so a slow
        cold-start never stalls submits or hits on other models — a
        deadline-lane request to a resident model must not queue behind an
        unrelated model's load.
        """
        with self._lock:
            spec = self._spec(model_id)
            entry = self._resident.get(model_id)
            if entry is not None:
                self._resident.move_to_end(model_id)
                self._hits += 1
                return entry.trainer
        with spec.load_lock:
            # Double-check: a concurrent getter may have finished the load
            # while this thread waited on the latch.
            with self._lock:
                entry = self._resident.get(model_id)
                if entry is not None:
                    self._resident.move_to_end(model_id)
                    self._hits += 1
                    return entry.trainer
            trainer = self._loader(model_id, spec)
            with self._lock:
                self._loads += 1
                self._resident[model_id] = _Resident(
                    trainer=trainer,
                    loaded_version=trainer.store._version,
                    evictable=True,
                    plan_bytes=trainer.plan_nbytes(),
                )
                self._enforce_caps(protect=model_id)
                return trainer

    def n_samples(self, model_id: str) -> int:
        """The model's live id-space bound without forcing a load.

        Resident models answer from their (possibly committed) store;
        non-resident models from checkpoint metadata — exact, because a
        model that committed in this process is dirty and therefore still
        resident.
        """
        with self._lock:
            spec = self._spec(model_id)
            entry = self._resident.get(model_id)
            if entry is not None:
                return int(entry.trainer.store.n_samples)
            return spec.metadata.n_samples

    def resident_trainer(self, model_id: str) -> IncrementalTrainer | None:
        """The loaded trainer if resident (no load, no LRU touch), else None."""
        with self._lock:
            self._spec(model_id)
            entry = self._resident.get(model_id)
            return None if entry is None else entry.trainer

    def epoch(self, model_id: str) -> int:
        """How many times :meth:`save_dirty` rewrote this model's checkpoint."""
        with self._lock:
            self._spec(model_id)
            return self._epochs[model_id]

    def submit_view(
        self, model_id: str
    ) -> tuple[IncrementalTrainer | None, int, int | None, int | None]:
        """One consistent ``(trainer, epoch, archive n_samples, loaded version)``.

        What :meth:`FleetServer.submit` needs for validation and
        commit-translation tagging, read under a single lock hold: the
        resident trainer (or None), the checkpoint epoch, the archive's
        sample count for the non-resident case (None when resident: the
        caller reads the live count through the store seqlock instead),
        and — for the resident case — the store version the trainer was
        loaded or last saved at, so the caller can tell a clean model
        (id space equals the epoch archive's) from a dirty one.
        """
        with self._lock:
            spec = self._spec(model_id)
            self._admissions[model_id] = self._admissions.get(model_id, 0) + 1
            entry = self._resident.get(model_id)
            if entry is not None:
                return (
                    entry.trainer,
                    self._epochs[model_id],
                    None,
                    entry.loaded_version,
                )
            return None, self._epochs[model_id], spec.metadata.n_samples, None

    def warm_start(
        self, n: int, hotness: dict[str, int] | None = None
    ) -> tuple[str, ...]:
        """Pre-load the hottest ``n`` non-resident models by admission history.

        A freshly (re)started fleet pays each model's ``from_checkpoint``
        load on its first request; ``warm_start`` pays it up front for the
        models most likely to be hit, ranked by ``hotness`` (a
        ``model_id -> count`` map; default: this registry's per-model
        admission counts, which every :meth:`FleetServer.submit`
        increments through :meth:`submit_view`).  Only checkpoint-backed,
        never-admitted-zero models are considered, and warming stops as
        soon as it would start thrashing the models already serving: at
        ``max_resident``, once the resident footprint reaches
        ``max_plan_bytes``, or immediately after a warm load forces any
        eviction (a model's plan size is unknowable before loading it, so
        the byte cap can only be detected one load late).  Returns the
        ids actually loaded, hottest first.
        """
        if n < 0:
            raise ValueError("warm_start(n) needs n >= 0")
        with self._lock:
            if hotness is None:
                hotness = dict(self._admissions)
            order = {mid: i for i, mid in enumerate(self._specs)}
            candidates = [
                model_id
                for model_id, spec in self._specs.items()
                if spec.checkpoint is not None
                and model_id not in self._resident
                and hotness.get(model_id, 0) > 0
            ]
            candidates.sort(key=lambda mid: (-hotness.get(mid, 0), order[mid]))
        loaded: list[str] = []
        for model_id in candidates[:n]:
            with self._lock:
                if (
                    self.max_resident is not None
                    and len(self._resident) >= self.max_resident
                ):
                    break
                if self.max_plan_bytes is not None and (
                    sum(e.plan_bytes for e in self._resident.values())
                    >= self.max_plan_bytes
                ):
                    break
                if model_id in self._resident:
                    continue
                evictions_before = self._evictions
            # The expensive load runs outside the registry lock, exactly
            # like a traffic-driven load (serialized per model).
            self.get(model_id)
            loaded.append(model_id)
            with self._lock:
                if self._evictions > evictions_before:
                    break  # the caps are saturated; stop warming
        return tuple(loaded)

    def note_plan_bytes(self, model_id: str) -> None:
        """Re-measure a resident model's compiled-plan footprint.

        Maintenance (plan re-pack, SVD re-truncation) shrinks the
        resident footprint; the eviction caps should see the new number.
        """
        with self._lock:
            entry = self._resident.get(model_id)
            if entry is not None:
                entry.plan_bytes = entry.trainer.plan_nbytes()

    def pin(self, model_id: str) -> None:
        """Protect a model from eviction until :meth:`unpin` (recursive).

        Pinning does *not* load: the fleet pins before its (retried) load
        attempts so the model cannot be evicted between a load finishing
        and the batch that needed it dispatching.
        """
        with self._lock:
            self._pins[model_id] = self._pins.get(model_id, 0) + 1

    def unpin(self, model_id: str) -> None:
        """Release one :meth:`pin`; settles any eviction debt it deferred."""
        with self._lock:
            remaining = self._pins.get(model_id, 0) - 1
            if remaining > 0:
                self._pins[model_id] = remaining
            else:
                self._pins.pop(model_id, None)
            # A pin may have been the only thing holding the resident
            # set over cap; settle the debt now that it is released.
            self._enforce_caps()

    @contextmanager
    def pinned(self, model_id: str):
        """Context manager: the trainer, protected from eviction while held."""
        self.pin(model_id)
        try:
            yield self.get(model_id)
        finally:
            self.unpin(model_id)

    # -------------------------------------------------------------- eviction
    def _is_dirty(self, entry: _Resident) -> bool:
        return entry.trainer.store._version != entry.loaded_version

    # caller-holds: _lock
    def _evictable(self, model_id: str, entry: _Resident) -> bool:
        return (
            entry.evictable
            and self._pins.get(model_id, 0) == 0
            and not self._is_dirty(entry)
        )

    # caller-holds: _lock
    def _over_cap(self) -> bool:
        if self.max_resident is not None and len(self._resident) > self.max_resident:
            return True
        if self.max_plan_bytes is not None:
            total = sum(e.plan_bytes for e in self._resident.values())
            if total > self.max_plan_bytes:
                return True
        return False

    # caller-holds: _lock
    def _enforce_caps(self, protect: str | None = None) -> None:
        """Evict LRU-first until under both caps (caller holds the lock).

        ``protect`` names a model that must survive this pass — the one
        whose load triggered it, so a cap smaller than a single plan
        degrades to "hold exactly the requested model" instead of
        thrashing it straight back out.
        """
        while self._over_cap():
            victim = next(
                (
                    model_id
                    for model_id, entry in self._resident.items()
                    if model_id != protect
                    and self._evictable(model_id, entry)
                ),
                None,
            )
            if victim is None:
                return  # everything left is pinned/dirty/live: soft cap
            del self._resident[victim]
            self._evictions += 1

    def evict(self, model_id: str) -> bool:
        """Explicitly drop one resident model; False if held (pinned/dirty)."""
        with self._lock:
            self._spec(model_id)
            entry = self._resident.get(model_id)
            if entry is None:
                return False
            if not self._evictable(model_id, entry):
                return False
            del self._resident[model_id]
            self._evictions += 1
            return True

    def dirty_ids(self) -> tuple[str, ...]:
        """Models whose in-process commits outran their on-disk checkpoint."""
        with self._lock:
            return tuple(
                model_id
                for model_id, entry in self._resident.items()
                if self._is_dirty(entry)
            )

    def save_dirty(self) -> dict[str, SaveOutcome]:
        """Re-checkpoint every dirty model in place, making it evictable again.

        Only meaningful for checkpoint-backed registrations; live-trainer
        models have nowhere to save to and are skipped, as are pinned
        models (a pin means a dispatch — possibly a commit — is mid-flight
        on that trainer; saving would snapshot a moving target).  Each
        write goes back to the *exact* registered path — a directory
        registration rewrites its ``store.npz``/``plan.npz``, a bare
        store-archive registration rewrites that one file (the plan is
        recompiled at the next load, and a now-stale ``plan_path`` load
        override is dropped) — so a later evict + reload always sees the
        committed state.  Each write bumps the model's checkpoint
        *epoch*, fencing the fleet's commit-translation history: requests
        validated against the new archive are never replayed through
        commits it already contains.

        Saves are independent: one model's write failing does not stop
        the sweep.  Returns ``{model_id: SaveOutcome}`` for every model
        attempted; a failed model's epoch, metadata and loaded version
        are left untouched, so it stays dirty — unevictable, still
        serving from its resident (committed) state — and the next
        ``save_dirty`` retries it.  The write itself is crash-atomic
        (temp + fsync + rename, journaled for directory checkpoints), so
        a failure never leaves a half-written archive behind.

        The registry lock is held across the checkpoint writes (the
        epoch/metadata/version updates must be atomic with them), so run
        this from a maintenance path, not from under live submit traffic.
        """
        written: dict[str, SaveOutcome] = {}
        with self._lock:
            for model_id in self.dirty_ids():
                if self._pins.get(model_id, 0) > 0:
                    continue
                outcome = self._save_resident(model_id)
                if outcome is not None:
                    written[model_id] = outcome
        return written

    # caller-holds: _lock
    def _save_resident(self, model_id: str) -> SaveOutcome | None:
        """Re-checkpoint one dirty resident model (caller holds the lock).

        The per-model body of :meth:`save_dirty`, shared with
        :meth:`retire`; see there for the write semantics.  Returns
        ``None`` for live-trainer registrations (nowhere to save to).
        """
        spec = self._specs[model_id]
        entry = self._resident[model_id]
        if spec.checkpoint is None:
            return None
        target = Path(spec.checkpoint)
        try:
            if target.is_dir():
                paths = entry.trainer.save_checkpoint(target)
            else:
                # A bare archive registration: overwrite it in
                # place.  Writing a directory-style checkpoint
                # next to it would leave spec.checkpoint pointing
                # at the stale pre-commit file (and collide with
                # sibling registrations sharing the parent
                # directory).
                paths = {
                    "store": save_store(entry.trainer.store, target)
                }
            # Any plan_path load override names the *pre-commit*
            # plan; reloads must use the freshly written plan.npz
            # (directory registrations) or recompile (bare
            # archives).
            spec.load_kwargs.pop("plan_path", None)
            spec.metadata = read_checkpoint_metadata(target)
        except Exception as exc:
            return SaveOutcome(model_id=model_id, ok=False, error=exc)
        entry.loaded_version = entry.trainer.store._version
        self._epochs[model_id] += 1
        return SaveOutcome(model_id=model_id, ok=True, paths=paths)

    def retire(self, model_id: str, policy=None) -> bool:
        """Maintenance-aware eviction: reclaim debt, checkpoint, then drop.

        Where :meth:`evict` refuses dirty models outright, ``retire``
        does the work that makes a high-debt model droppable: when
        ``policy`` (a :class:`~repro.core.maintenance.MaintenancePolicy`
        or a :class:`~repro.core.costmodel.CostModel`-derived one) marks
        the model's maintenance debt as due, ``maintain()`` reclaims it
        first — so the checkpoint written is the compact post-reclamation
        state, not a garbage-carrying snapshot that the next load pays
        for — then any dirty state is saved back to the registered
        checkpoint (the :meth:`save_dirty` protocol: epoch bump, stale
        ``plan_path`` override dropped) and the model is evicted.

        Returns ``False`` without touching anything droppable for models
        that are not resident, pinned, registered non-evictable (live
        trainers), dirty-with-nowhere-to-save, or whose checkpoint write
        fails (the model stays resident and dirty; retry later).  Like
        ``save_dirty``, call from a maintenance path — the reclamation
        runs on the live trainer, so no dispatch may be in flight on
        this model (the fleet's chaos harness flushes first).
        """
        with self._lock:
            spec = self._spec(model_id)
            entry = self._resident.get(model_id)
            if entry is None:
                return False
            if self._pins.get(model_id, 0) > 0 or not entry.evictable:
                return False
            if self._is_dirty(entry) and spec.checkpoint is None:
                return False
            trainer = entry.trainer
        # Reclamation runs outside the registry lock (O(records) work
        # must not stall concurrent submits on other models); residency
        # is re-checked below in case the caps raced an eviction.
        if policy is not None:
            cost = trainer.maintenance_cost(include_bytes=False)
            if policy.due(cost):
                trainer.maintain(policy)
                self.note_plan_bytes(model_id)
        with self._lock:
            entry = self._resident.get(model_id)
            if entry is None or entry.trainer is not trainer:
                return False
            if self._pins.get(model_id, 0) > 0:
                return False
            if self._is_dirty(entry):
                outcome = self._save_resident(model_id)
                if outcome is None or not outcome.ok:
                    return False
            del self._resident[model_id]
            self._evictions += 1
            return True

    # ------------------------------------------------------------- observers
    def describe(self, model_id: str) -> dict:
        """One model's registration, residency, dirtiness and maintenance
        debt, as plain data.

        ``maintenance_cost`` is an *advisory snapshot*: it is measured
        outside the registry lock (the ``O(records)`` traversal must not
        stall every concurrent submit on one monitoring call) and without
        synchronizing against an in-flight dispatch on that model, so a
        commit racing the read can smear the numbers.  ``None`` while the
        model is not resident — measuring would force a load.
        """
        with self._lock:
            spec = self._spec(model_id)
            entry = self._resident.get(model_id)
            trainer = None if entry is None else entry.trainer
            info = {
                "model_id": model_id,
                "checkpoint": (
                    None if spec.checkpoint is None else str(spec.checkpoint)
                ),
                "resident": entry is not None,
                "dirty": entry is not None and self._is_dirty(entry),
                "pinned": self._pins.get(model_id, 0) > 0,
                "plan_bytes": None if entry is None else entry.plan_bytes,
                "admissions": self._admissions.get(model_id, 0),
                "metadata": (
                    None if spec.metadata is None else spec.metadata.as_dict()
                ),
            }
        info["maintenance_cost"] = (
            None if trainer is None else trainer.maintenance_cost().as_dict()
        )
        return info

    def stats(self) -> dict:
        """Lifetime load/hit/eviction counters and the resident footprint."""
        with self._lock:
            return {
                "registered": len(self._specs),
                "resident": len(self._resident),
                "loads": self._loads,
                "hits": self._hits,
                "evictions": self._evictions,
                "resident_plan_bytes": sum(
                    entry.plan_bytes for entry in self._resident.values()
                ),
                "dirty": len(self.dirty_ids()),
            }


# ------------------------------------------------------------------ fleet
class _MaintenanceTicket:
    """One scheduled background ``maintain()`` run for one model.

    Tickets ride the stock lowest-priority ``maintenance`` lane: they
    live outside the request heap and the scheduler only picks them up
    when no model has queued deletion traffic at all, so background
    reclamation never pushes a queued deadline or bulk dispatch back
    (same-model traffic arriving *mid-run* waits for the run to finish,
    like behind any in-flight batch).
    """

    __slots__ = ("future", "enqueued_at", "policy", "auto")

    def __init__(
        self,
        future: Future,
        enqueued_at: float,
        policy: MaintenancePolicy | None,
        auto: bool,
    ) -> None:
        self.future = future
        self.enqueued_at = enqueued_at
        self.policy = policy
        self.auto = auto


class _ModelQueue:
    """One model's admission state inside the fleet (guarded by the
    fleet's scheduler condition unless noted)."""

    __slots__ = (
        "model_id", "heap", "busy", "slots", "tracker",
        "stats", "batch_seq", "method", "commit_mode",
        "guard", "maintenance", "maintenance_runs", "last_maintenance",
        "health",
    )

    def __init__(
        self,
        model_id: str,
        max_pending: int,
        method: str | None,
        commit_mode: bool,
    ) -> None:
        self.model_id = model_id
        self.heap: list[tuple] = []
        self.busy = False
        # Backpressure semaphore: acquired outside any lock (blocking
        # submits must not stall the scheduler), released as requests are
        # popped into a batch.
        self.slots = threading.BoundedSemaphore(max_pending)
        self.tracker = _CommitTracker()
        self.stats = StatsRecorder()
        self.batch_seq = itertools.count()
        self.method = method
        self.commit_mode = commit_mode
        # Starvation guard (AdmissionPolicy.max_preemption_ratio) and the
        # background-maintenance backlog (lowest-priority lane).
        self.guard = _PreemptionGuard()
        self.maintenance: list[_MaintenanceTicket] = []
        self.maintenance_runs = 0
        self.last_maintenance: dict | None = None
        self.health = _ModelHealth()

    def earliest_deadline(self) -> float | None:
        """When the most impatient queued request's lane budget expires."""
        if not self.heap:
            return None
        return min(
            request.enqueued_at + request.lane_delay
            for _, _, request in self.heap
        )

    def cost_ready(self, policy: AdmissionPolicy, now: float) -> bool:
        """Cost-aware early close for this queue (``policy.cost_model`` set).

        Routes the queued batch through ``policy.should_dispatch`` with
        the oldest member's wait and the batch's minimum lane delay —
        the same inputs the single-model server's collect loop feeds it
        — so the cost model's early-close rule applies fleet-side too.
        Strictly one-directional (the fixed budget and full-batch checks
        already dispatched above), and needs no extra wake-up timer: the
        remaining budget only shrinks as time passes, so a queue that is
        not cost-ready at ``now`` stays not-ready until its deadline.
        """
        if not self.heap:
            return False
        enqueued = min(r.enqueued_at for _, _, r in self.heap)
        delay = min(r.lane_delay for _, _, r in self.heap)
        return policy.should_dispatch(len(self.heap), now - enqueued, delay)

    def pop_batch(
        self, max_batch: int, policy: AdmissionPolicy | None = None
    ) -> list[_Request]:
        """Up to ``max_batch`` requests in (lane priority, submission) order.

        When ``policy`` carries a ``max_preemption_ratio`` and the guard's
        debt is due, the oldest queued lower-priority request is *yielded*
        into the batch ahead of the priority order (it then rides the
        batch's minimum delay and is served with it) — the deadline-flood
        starvation guard.
        """
        batch: list[_Request] = []
        yielded = False
        if (
            policy is not None
            and self.heap
            and self.guard.must_yield()
            # Only a guarded lane's dispatch yields; an unguarded-led one
            # repays debt in observe_dispatch without stealing.
            and policy.preemption_ratio_for(self.heap[0][2].lane) is not None
        ):
            bound = min(entry[0] for entry in self.heap)
            lower = [entry for entry in self.heap if entry[0] > bound]
            if lower:
                entry = min(lower, key=lambda e: e[1])
                self.heap.remove(entry)
                heapq.heapify(self.heap)
                self.slots.release()
                batch.append(entry[2])
                yielded = True
        while self.heap and len(batch) < max_batch:
            _, _, request = heapq.heappop(self.heap)
            self.slots.release()
            batch.append(request)
        if policy is not None and batch:

            def oldest_lower_seq(bound_priority: int) -> int | None:
                seqs = [
                    entry[1]
                    for entry in self.heap
                    if entry[0] > bound_priority
                ]
                return min(seqs) if seqs else None

            self.guard.observe_dispatch(
                batch, oldest_lower_seq, policy, yielded
            )
        return batch


class _TeeStats:
    """Forward every recording to several :class:`StatsRecorder` sinks.

    Lets one dispatch feed both the per-model recorder and the fleet-wide
    aggregate without the batch logic knowing about the split.
    """

    def __init__(self, *sinks: StatsRecorder) -> None:
        self._sinks = sinks

    def __getattr__(self, name: str):
        if not name.startswith("record_"):
            raise AttributeError(name)
        methods = [getattr(sink, name) for sink in self._sinks]

        def forward(*args, **kwargs) -> None:
            for method in methods:
                method(*args, **kwargs)

        return forward


class FleetServer:
    """Route deletion traffic for many models through one bounded pool.

    Parameters
    ----------
    registry:
        The :class:`ModelRegistry` naming the servable models.  Models may
        be registered before or after the fleet starts; a model's queue is
        created at its first submission.
    policy:
        Shared :class:`~repro.serving.policy.AdmissionPolicy` (coalescing
        budget, ``max_batch``, per-model ``max_pending``, SLA lanes).
    method / commit_mode:
        Fleet-wide defaults, overridable per model via
        :meth:`configure_model` before that model's first submission.
    n_workers:
        Size of the shared dispatch pool.  Each worker serves at most one
        model at a time and each model has at most one batch in flight, so
        effective parallelism is ``min(n_workers, busy models)``.
    clock:
        Injectable time source shared with the per-model deadline math.
    retry:
        The :class:`RetryPolicy` governing checkpoint-load failures:
        within-dispatch retries with capped exponential backoff for
        transient errors, then a per-model circuit breaker — after
        ``quarantine_after`` consecutive failed dispatches the model is
        *quarantined* and submits fast-fail with
        :class:`~repro.serving.errors.ModelQuarantinedError` until a
        half-open probe succeeds.  Defaults to ``RetryPolicy()``.
    maintenance:
        A :class:`~repro.core.maintenance.MaintenancePolicy` enabling
        background plan maintenance: after every committed batch the
        model's :meth:`~repro.core.api.IncrementalTrainer.\
maintenance_cost` is checked against the policy's thresholds and, when
        due, a ``maintain()`` run is scheduled on the shared pool behind
        the lowest-priority ``maintenance`` lane — it never *starts*
        while any model has queued deletion traffic, and at most one
        runs fleet-wide at a time so the pool keeps workers free.  (A
        request arriving for the same model mid-run waits for it to
        finish, exactly as it would behind any in-flight batch; other
        models are unaffected.)  ``None`` (default) disables
        auto-scheduling; :meth:`maintain` still works explicitly.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        policy: AdmissionPolicy | None = None,
        method: str | None = None,
        n_workers: int = 2,
        commit_mode: bool = False,
        clock: Clock | None = None,
        retry: "RetryPolicy | None" = None,
        maintenance: MaintenancePolicy | None = None,
        autostart: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if method not in (None, "priu", "priu-opt", "priu-seq"):
            raise ValueError(
                "method must be None, 'priu', 'priu-opt' or 'priu-seq'"
            )
        self.registry = registry
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.method = method
        self.commit_mode = bool(commit_mode)
        self.n_workers = n_workers
        self.retry = retry if retry is not None else RetryPolicy()
        self.maintenance = maintenance
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        # Backoff sleeps between load retries run on this private
        # condition so they ride the injectable clock (a fake clock
        # advances instantly) without ever holding the scheduler lock.
        self._backoff_cond = threading.Condition()
        self._crashed: BaseException | None = None  # guarded-by: _sched
        # At most one background maintain() in flight fleet-wide, so the
        # pool always keeps workers free for deletion traffic.
        self._maintenance_busy = False  # guarded-by: _sched
        self._sched = threading.Condition()
        self._queues: dict[str, _ModelQueue] = {}  # guarded-by: _sched
        self._overrides: dict[str, dict] = {}  # guarded-by: _sched
        # Round-robin rotation of model ids.
        self._rr_order: list[str] = []  # guarded-by: _sched
        self._seq = itertools.count()
        self._stats = StatsRecorder()  # fleet-wide aggregate
        self._pending = 0  # guarded-by: _sched
        self._closed = False  # guarded-by: _sched
        self._started = False  # guarded-by: _sched
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"fleet-server-{i}",
                daemon=True,
            )
            for i in range(n_workers)
        ]
        if autostart:
            self.start()

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "FleetServer":
        """Start the worker pool (idempotent)."""
        with self._sched:
            if not self._started:
                self._started = True
                for worker in self._workers:
                    worker.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain every queue, then stop the pool."""
        with self._sched:
            already_closed = self._closed
            self._closed = True
            self._sched.notify_all()
        if not already_closed:
            # Ensure queued work drains even if the caller never start()ed.
            self.start()
        if wait:
            for worker in self._workers:
                if worker.is_alive():
                    worker.join()

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # Mirror DeletionServer: drain on a clean exit, but never block
        # while an exception is unwinding past the with-block.
        self.close(wait=exc_type is None)

    # -------------------------------------------------------- configuration
    def configure_model(
        self,
        model_id: str,
        method: str | None = None,
        commit_mode: bool | None = None,
    ) -> None:
        """Per-model serving overrides; must precede the model's first submit."""
        if method not in (None, "priu", "priu-opt", "priu-seq"):
            raise ValueError(
                "method must be None, 'priu', 'priu-opt' or 'priu-seq'"
            )
        if model_id not in self.registry:
            raise ValueError(f"unknown model id {model_id!r}")
        with self._sched:
            if model_id in self._queues:
                raise ServerStateError(
                    f"model {model_id!r} already has traffic; configure it "
                    "before its first submission"
                )
            overrides = self._overrides.setdefault(model_id, {})
            if method is not None:
                overrides["method"] = method
            if commit_mode is not None:
                overrides["commit_mode"] = bool(commit_mode)

    # caller-holds: _sched
    def _queue_for(self, model_id: str) -> _ModelQueue:
        """The model's admission queue (caller holds ``_sched``)."""
        state = self._queues.get(model_id)
        if state is None:
            overrides = self._overrides.get(model_id, {})
            state = _ModelQueue(
                model_id,
                max_pending=self.policy.max_pending,
                method=overrides.get("method", self.method),
                commit_mode=overrides.get("commit_mode", self.commit_mode),
            )
            self._queues[model_id] = state
            self._rr_order.append(model_id)
        return state

    # ---------------------------------------------------------- submission
    def submit(
        self,
        model_id: str,
        indices,
        lane: str | None = None,
        block: bool = True,
        timeout: float | None = None,
    ) -> Future:
        """Enqueue one removal set for one model; future of :class:`ServedOutcome`.

        Validation is synchronous, against the model's *live* id space
        when it is resident (consistent under concurrent commits via the
        store seqlock) and against its checkpoint metadata otherwise —
        exact either way, because a model with in-process commits is dirty
        and therefore always resident.  Backpressure is per model:
        ``block=False`` raises :class:`BackpressureError` when that
        model's queue is at ``max_pending``.  A quarantined model
        fast-fails with
        :class:`~repro.serving.errors.ModelQuarantinedError` — except
        once per ``retry.probe_interval_seconds``, when one submission is
        admitted as the breaker's half-open probe.
        """
        lane_obj = self.policy.lane(lane)
        removed = normalize_removed_indices(indices)
        # Unknown model ids fail here, synchronously, before queueing.
        trainer, epoch, archive_n, loaded_version = self.registry.submit_view(
            model_id
        )
        if removed.size == 0:
            return self._resolve_empty(model_id, lane_obj.name)

        def key_for(store_version: int | None) -> tuple:
            # The id space this request addresses, as a commit-translation
            # tag.  Not resident, or resident and *clean* => the epoch's
            # archive is the id space (store version numbers restart when
            # a checkpoint reloads — load_store rebuilds records via
            # add() — so a clean model's in-memory version is meaningless
            # across an evict/reload).  Every same-epoch commit
            # necessarily postdates that archive (commits require
            # residency, and the archive was written by the load/save
            # that opened the epoch), so the tag sorts below them all:
            # ``(epoch, -inf)`` — commits from this epoch and later apply
            # at dispatch, commits already folded into an earlier epoch's
            # archive never do.  Only a *dirty* model tags with its live
            # version, which is stable: dirty models are never evicted.
            if store_version is not None and store_version != loaded_version:
                return (epoch, store_version)
            return (epoch, -math.inf)

        with self._sched:
            if self._crashed is not None:
                raise WorkerCrashedError(
                    "cannot submit: a fleet worker thread died"
                ) from self._crashed
            state = self._queue_for(model_id)
            # Circuit breaker: fast-fail while quarantined; once the
            # probe interval elapses, this submission becomes the
            # breaker's single half-open probe.
            probing = self._admit_health(state, lane_obj.name)
        # Register the pruning key BEFORE anything can block: concurrent
        # dispatches prune commit history down to the oldest *registered*
        # in-flight key, so a submitter parked on the backpressure
        # semaphore must already be counted or the history it needs can
        # vanish while it waits.  The request is tagged with a second
        # snapshot taken after registration — it can only move the tag
        # forward, never below the registered key, so the retained
        # history always covers the tag.
        if trainer is not None:
            admitted_key = key_for(
                _consistent_store_snapshot(trainer.store)[0]
            )
        else:
            admitted_key = (epoch, -math.inf)
        state.tracker.note_submitted(admitted_key)
        try:
            if trainer is not None:
                store_version, n_samples = _consistent_store_snapshot(
                    trainer.store
                )
                store_key = key_for(store_version)
            else:
                store_key = (epoch, -math.inf)
                n_samples = archive_n
            _validate_removed(removed, n_samples)
            request = _Request(
                indices=removed,
                future=Future(),
                enqueued_at=self._clock.now(),
                lane=lane_obj.name,
                lane_delay=self.policy.delay_for(lane_obj.name),
                lane_priority=lane_obj.priority,
                store_key=store_key,
                admitted_key=admitted_key,
            )
            # Per-model backpressure, waited out without holding the
            # scheduler lock so a blocked submitter never stalls
            # dispatch or close().
            if block:
                got_slot = state.slots.acquire(timeout=timeout)
            else:
                got_slot = state.slots.acquire(blocking=False)
            if not got_slot:
                _TeeStats(state.stats, self._stats).record_rejected(
                    lane_obj.name
                )
                raise BackpressureError(
                    f"model {model_id!r} admission queue is full "
                    f"({self.policy.max_pending} pending)"
                )
            with self._sched:
                if self._closed:
                    state.slots.release()
                    raise ServerClosedError(
                        "cannot submit to a closed FleetServer"
                    )
                request.seq = next(self._seq)
                _TeeStats(state.stats, self._stats).record_submitted(
                    lane_obj.name
                )
                heapq.heappush(state.heap, request.entry())
                self._pending += 1
                self._sched.notify_all()
        except BaseException:
            # One unwind point for every pre-enqueue failure — validation,
            # rejection, closed server, or an interrupt while parked on
            # the semaphore.  A leaked key would pin commit history (the
            # min() prune could never pass it) for the server's lifetime.
            state.tracker.forget(admitted_key)
            if probing:
                # The half-open probe never enqueued; re-open the breaker
                # with an immediate probe window so the next submission
                # gets the trial instead of a wedged "probing" state.
                with self._sched:
                    if state.health.state == "probing":
                        state.health.state = "quarantined"
                        state.health.probe_at = self._clock.now()
            raise
        return request.future

    def _resolve_empty(self, model_id: str, lane: str) -> Future:
        """Empty removal sets resolve inline, exactly like DeletionServer."""
        if self.policy.on_empty == "reject":
            raise ValueError(
                "empty removal set (AdmissionPolicy(on_empty='resolve') "
                "answers these with a no-op instead)"
            )
        with self._sched:
            if self._crashed is not None:
                raise WorkerCrashedError(
                    "cannot submit: a fleet worker thread died"
                ) from self._crashed
            if self._closed:
                raise ServerClosedError(
                    "cannot submit to a closed FleetServer"
                )
            state = self._queue_for(model_id)
            if state.health.state != "healthy":
                # Answering needs the trainer's weights, i.e. a load the
                # breaker says will fail; and a no-op proves nothing as a
                # probe.  Fast-fail without consuming the probe window.
                _TeeStats(state.stats, self._stats).record_quarantined(lane)
                raise ModelQuarantinedError(
                    model_id,
                    state.health.consecutive_failures,
                    state.health.probe_at or self._clock.now(),
                )
        # A no-op must not reshuffle the resident set: answer from the
        # loaded trainer without an LRU touch when possible, and only pay
        # the (cached) load for a genuinely cold model.
        trainer = self.registry.resident_trainer(model_id)
        if trainer is not None:
            weights = trainer.weights_.copy()
        else:
            with self.registry.pinned(model_id) as loaded:
                weights = loaded.weights_.copy()
        _TeeStats(state.stats, self._stats).record_noop(lane)
        future: Future = Future()
        future.set_result(
            ServedOutcome(
                weights=weights,
                method="noop",
                removed=np.empty(0, dtype=np.int64),
                seconds=0.0,
                wait_seconds=0.0,
                latency_seconds=0.0,
                batch_size=0,
                committed=False,
                lane=lane,
                model_id=model_id,
            )
        )
        return future

    def submit_many(self, model_id: str, index_sets, **kwargs) -> list[Future]:
        """Enqueue several removal sets for one model (one future each)."""
        return [
            self.submit(model_id, indices, **kwargs) for indices in index_sets
        ]

    def resolve(
        self, model_id: str, indices, timeout: float | None = None, **kwargs
    ) -> ServedOutcome:
        """Blocking convenience: submit one request and wait for its answer."""
        return self.submit(model_id, indices, **kwargs).result(timeout=timeout)

    # ----------------------------------------------------------- observers
    def flush(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has been answered or failed."""
        with self._sched:
            if self._pending and not self._started:
                raise ServerStateError(
                    "flush() would wait forever: requests are queued but the "
                    "worker pool was never started (autostart=False)"
                )
            return self._sched.wait_for(lambda: self._pending == 0, timeout)

    @property
    def pending(self) -> int:
        """Requests submitted but not yet answered, across all models."""
        with self._sched:
            return self._pending

    def stats(self, model_id: str | None = None) -> ServingStats:
        """Fleet-wide counters (default) or one model's, lanes included."""
        if model_id is None:
            return self._stats.snapshot()
        with self._sched:
            state = self._queues.get(model_id)
        if state is None:
            if model_id not in self.registry:
                raise ValueError(f"unknown model id {model_id!r}")
            return StatsRecorder().snapshot()  # no traffic yet: all zeros
        return state.stats.snapshot()

    def stats_frame(self) -> "StatsFrame":
        """The fleet-wide raw accounting as a mergeable, picklable frame.

        This is what a shard worker exports over its pipe: the router
        merges every shard's frame (:meth:`StatsFrame.merge`) and
        summarizes the pooled samples, so cross-shard percentiles are
        computed over the union of requests — never by averaging
        per-shard percentiles.
        """
        return self._stats.frame()

    def model_stats(self) -> dict[str, ServingStats]:
        """Per-model snapshots for every model that has seen traffic."""
        with self._sched:
            states = list(self._queues.values())
        return {state.model_id: state.stats.snapshot() for state in states}

    def describe(self, model_id: str) -> dict:
        """:meth:`ModelRegistry.describe` plus this fleet's health view.

        The added ``"health"`` entry is the model's circuit-breaker state
        (``healthy`` / ``quarantined`` / ``probing``), failure counts and
        next probe time — all zeros/healthy for a model that has seen no
        traffic through this fleet.
        """
        info = self.registry.describe(model_id)
        with self._sched:
            state = self._queues.get(model_id)
            health = _ModelHealth() if state is None else state.health
            info["health"] = health.as_dict()
        return info

    # --------------------------------------------------------- model health
    def _admit_health(self, state: _ModelQueue, lane: str) -> bool:
        """Gate one submission on the model's breaker (holding ``_sched``).

        Returns True when this submission was admitted as the breaker's
        half-open probe; raises
        :class:`~repro.serving.errors.ModelQuarantinedError` when the
        breaker is open (or a probe is already in flight).
        """
        health = state.health
        if health.state == "healthy":
            return False
        if health.state == "quarantined" and (
            health.probe_at is not None
            and self._clock.now() >= health.probe_at
        ):
            health.state = "probing"
            return True
        _TeeStats(state.stats, self._stats).record_quarantined(lane)
        raise ModelQuarantinedError(
            state.model_id,
            health.consecutive_failures,
            health.probe_at if health.probe_at is not None else self._clock.now(),
        )

    def _acquire_trainer(self, model_id: str, state: _ModelQueue):
        """Load (or hit) the model, retrying transient failures with backoff.

        Runs under the dispatch's registry pin, so a trainer returned
        here cannot be evicted before the batch it serves.  Exhausting
        the retry budget — or any non-transient failure — counts one
        consecutive failure against the model, possibly opening its
        breaker, and raises
        :class:`~repro.serving.errors.ModelLoadError` chained to the
        underlying cause.
        """
        policy = self.retry
        delay = policy.backoff_seconds
        attempts = 0
        while True:
            try:
                trainer = self.registry.get(model_id)
            except Exception as exc:
                attempts += 1
                if policy.is_transient(exc) and attempts < policy.load_attempts:
                    with self._sched:
                        state.health.load_retries += 1
                    self._backoff(delay)
                    delay = min(
                        delay * policy.backoff_factor,
                        policy.max_backoff_seconds,
                    )
                    continue
                raise self._note_load_failure(state, exc, attempts) from exc
            self._note_load_success(state)
            return trainer

    def _backoff(self, delay: float) -> None:
        if delay <= 0:
            return
        with self._backoff_cond:
            self._clock.wait(self._backoff_cond, delay)

    def _note_load_success(self, state: _ModelQueue) -> None:
        with self._sched:
            health = state.health
            health.state = "healthy"
            health.consecutive_failures = 0
            health.probe_at = None
            health.last_error = None

    def _note_load_failure(
        self, state: _ModelQueue, exc: BaseException, attempts: int
    ) -> ModelLoadError:
        """Account one failed dispatch-level load; open the breaker if due."""
        with self._sched:
            health = state.health
            health.consecutive_failures += 1
            health.last_error = repr(exc)
            open_breaker = (
                not self.retry.is_transient(exc)  # disk won't heal itself
                or health.state == "probing"  # failed probe: straight back
                or health.consecutive_failures >= self.retry.quarantine_after
            )
            if open_breaker:
                health.state = "quarantined"
                health.probe_at = (
                    self._clock.now() + self.retry.probe_interval_seconds
                )
                health.quarantines += 1
            return ModelLoadError(state.model_id, attempts, exc)

    def _settle_probe(self, state: _ModelQueue) -> None:
        """The probe batch evaporated (all cancelled): re-open the breaker.

        ``probe_at=now`` keeps the window open so the very next
        submission becomes the new probe — a cancelled probe proved
        nothing in either direction.
        """
        with self._sched:
            if state.health.state == "probing":
                state.health.state = "quarantined"
                state.health.probe_at = self._clock.now()

    # -------------------------------------------------------------- workers
    def _next_job(self) -> tuple[str, str, object] | None:
        """Block until there is work; ``(kind, model_id, payload)`` or None.

        ``kind`` is ``"batch"`` (payload: the popped request list) or
        ``"maintain"`` (payload: a :class:`_MaintenanceTicket`).  Requests
        always win: maintenance is considered only when *no* model has any
        queued deletion traffic at all — the literal semantics of its
        lowest-priority lane — and at most one maintenance run is in
        flight fleet-wide, so the pool keeps workers free for traffic
        that arrives mid-run.

        Fairness: models are scanned in round-robin order starting past
        the last dispatched one, so a model with a permanently full queue
        cannot starve the others.  A model already mid-dispatch is skipped
        (one in-flight batch per model) and excluded from the deadline
        computation — its completion notifies the condition.
        """
        with self._sched:
            while True:
                now = self._clock.now()
                next_deadline: float | None = None
                order = self._rr_order
                n = len(order)
                any_queued = False
                for offset in range(n):
                    model_id = order[offset]
                    state = self._queues[model_id]
                    if not state.heap:
                        continue
                    any_queued = True
                    if state.busy:
                        continue
                    # One O(queue) min-scan per model per wake; reused for
                    # both the readiness check and the sleep computation.
                    deadline = state.earliest_deadline()
                    ready = (
                        self._closed
                        or len(state.heap) >= self.policy.max_batch
                        or (deadline is not None and now >= deadline)
                        or (
                            self.policy.cost_model is not None
                            and state.cost_ready(self.policy, now)
                        )
                    )
                    if ready:
                        batch = state.pop_batch(
                            self.policy.max_batch, self.policy
                        )
                        state.busy = True
                        # Rotate: this model goes to the back of the scan.
                        self._rr_order = order[offset + 1:] + order[: offset + 1]
                        return "batch", model_id, batch
                    if deadline is not None and (
                        next_deadline is None or deadline < next_deadline
                    ):
                        next_deadline = deadline
                if not any_queued and not self._maintenance_busy:
                    for model_id in order:
                        state = self._queues[model_id]
                        if state.busy or not state.maintenance:
                            continue
                        ticket = state.maintenance.pop(0)
                        state.busy = True
                        self._maintenance_busy = True
                        return "maintain", model_id, ticket
                if self._closed and all(
                    not state.heap and not state.maintenance
                    for state in self._queues.values()
                ):
                    self._sched.notify_all()  # let sibling workers exit too
                    return None
                wait = (
                    None
                    if next_deadline is None
                    else max(0.0, next_deadline - now)
                )
                self._clock.wait(self._sched, wait)

    def _worker_loop(self) -> None:
        job: tuple[str, str, object] | None = None
        try:
            while True:
                job = self._next_job()
                if job is None:
                    return
                kind, model_id, payload = job
                try:
                    if kind == "batch":
                        self._dispatch(model_id, payload)
                    else:
                        self._dispatch_maintenance(model_id, payload)
                finally:
                    with self._sched:
                        self._queues[model_id].busy = False
                        if kind == "maintain":
                            self._maintenance_busy = False
                        self._sched.notify_all()
                job = None
        except BaseException as exc:
            # This worker is dying with work possibly in hand.  Fail
            # everything unresolved — the job being dispatched and every
            # queued request fleet-wide — with a typed error; a wedged
            # flush() or a silently leaked future is strictly worse.
            self._abort(exc, job)

    def _abort(
        self, cause: BaseException, job: tuple[str, str, object] | None
    ) -> None:
        error = WorkerCrashedError("a fleet worker thread died")
        error.__cause__ = cause
        doomed: list[tuple[_ModelQueue, _Request]] = []
        tickets: list[tuple[_ModelQueue, _MaintenanceTicket]] = []
        with self._sched:
            if self._crashed is None:
                self._crashed = error
            for state in self._queues.values():
                while state.heap:
                    _, _, request = heapq.heappop(state.heap)
                    state.slots.release()
                    doomed.append((state, request))
                for ticket in state.maintenance:
                    tickets.append((state, ticket))
                state.maintenance.clear()
            if job is not None:
                state = self._queues[job[1]]
                if job[0] == "batch":
                    for request in job[2]:
                        doomed.append((state, request))
                else:
                    tickets.append((state, job[2]))
            self._pending = 0
            self._sched.notify_all()
        for state, request in doomed:
            future = request.future
            stats = _TeeStats(state.stats, self._stats)
            if future.cancelled():
                stats.record_cancelled(1, [request.lane])
                state.tracker.note_finished([request])
                continue
            if future.done():
                continue
            try:
                future.set_exception(error)
            except Exception:
                continue  # lost a cancel race; the caller has an answer
            stats.record_failed(1, [request.lane])
            state.tracker.note_finished([request])
        for state, ticket in tickets:
            if ticket.future.done():
                continue
            try:
                ticket.future.set_exception(error)
            except Exception:
                continue
            _TeeStats(state.stats, self._stats).record_failed(
                1, ["maintenance"]
            )

    def _finish(self, state: _ModelQueue, requests: list[_Request]) -> None:
        state.tracker.note_finished(requests)
        with self._sched:
            # max() guards the post-abort window: _abort zeroes the count
            # while a sibling worker may still be finishing its batch.
            self._pending = max(0, self._pending - len(requests))
            self._sched.notify_all()

    def _dispatch(self, model_id: str, batch: list[_Request]) -> None:
        with self._sched:
            state = self._queues[model_id]
        stats = _TeeStats(state.stats, self._stats)
        live: list[_Request] = []
        cancelled: list[_Request] = []
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                live.append(request)
            else:
                cancelled.append(request)
        if cancelled:
            stats.record_cancelled(len(cancelled), [r.lane for r in cancelled])
            self._finish(state, cancelled)
        # Keep the popped list tracking exactly the still-unsettled
        # requests, so a worker crash below aborts precisely those.
        batch[:] = live
        if not live:
            # If this was the breaker's half-open probe, it just
            # evaporated without testing anything; re-open the window.
            self._settle_probe(state)
            return
        # Pin around the *retried* load, not just the serve: the trainer
        # must not be evicted between a load attempt succeeding and the
        # batch running.  (The pin also freezes the checkpoint epoch:
        # save_dirty skips pinned models, so the key recorded for a
        # commit is consistent with the id space the batch executed in.)
        self.registry.pin(model_id)
        try:
            try:
                trainer = self._acquire_trainer(model_id, state)
                if state.commit_mode and trainer.clock is None:
                    # The serving clock also stamps the commit audit
                    # receipts: an injected clock (fake clock in tests,
                    # or a custom time source) keeps them deterministic,
                    # and the stock monotonic clock answers receipt
                    # stamps through Clock.timestamp() — wall time,
                    # since receipts persist across restarts and
                    # perf_counter seconds are process-relative.
                    trainer.clock = self._clock
                _serve_batch(
                    trainer,
                    live,
                    method=state.method,
                    commit_mode=state.commit_mode,
                    tracker=state.tracker,
                    clock=self._clock,
                    stats=stats,
                    batch_seq=next(state.batch_seq),
                    model_id=model_id,
                    epoch=self.registry.epoch(model_id),
                )
                if state.commit_mode and self.maintenance is not None:
                    # Background maintenance: a committed batch may have
                    # pushed this model past the policy's garbage
                    # thresholds; schedule a lowest-priority maintain().
                    # Counters only — due() never reads the byte fields,
                    # and this runs on the dispatch hot path.
                    cost = trainer.maintenance_cost(include_bytes=False)
                    if self.maintenance.due(cost):
                        self._schedule_maintenance(model_id, auto=True)
            except Exception as exc:
                # A checkpoint that fails to *load* (after its retry
                # budget) fails the batch the same way a failed dispatch
                # does — every future, never a leak.
                failed = [r for r in live if not r.future.done()]
                for request in failed:
                    request.future.set_exception(exc)
                stats.record_failed(len(failed), [r.lane for r in failed])
        finally:
            self.registry.unpin(model_id)
        self._finish(state, live)
        del batch[:]

    # ---------------------------------------------------------- maintenance
    def maintain(
        self, model_id: str, policy: MaintenancePolicy | None = None
    ) -> Future:
        """Schedule a background ``maintain()`` for one model.

        Returns a future of the
        :class:`~repro.core.maintenance.MaintenanceReport`.  The run rides
        the lowest-priority ``maintenance`` lane: it dispatches only once
        no model has queued deletion traffic, so queued deadline or bulk
        requests always go first (same-model traffic arriving mid-run
        waits like behind any in-flight batch).  ``policy=None`` reclaims
        everything due under the fleet's configured policy (or, with no
        fleet policy, all garbage).
        """
        if model_id not in self.registry:
            raise ValueError(f"unknown model id {model_id!r}")
        return self._schedule_maintenance(model_id, policy=policy, auto=False)

    def _schedule_maintenance(
        self,
        model_id: str,
        policy: MaintenancePolicy | None = None,
        auto: bool = False,
    ) -> Future | None:
        with self._sched:
            if self._closed:
                if auto:
                    return None
                raise ServerClosedError(
                    "cannot schedule maintenance on a closed FleetServer"
                )
            state = self._queue_for(model_id)
            if auto and state.maintenance:
                return None  # one pending background ticket is enough
            ticket = _MaintenanceTicket(
                future=Future(),
                enqueued_at=self._clock.now(),
                policy=policy,
                auto=auto,
            )
            state.maintenance.append(ticket)
            _TeeStats(state.stats, self._stats).record_submitted("maintenance")
            self._sched.notify_all()
        return ticket.future

    def _dispatch_maintenance(
        self, model_id: str, ticket: _MaintenanceTicket
    ) -> None:
        with self._sched:
            state = self._queues[model_id]
        stats = _TeeStats(state.stats, self._stats)
        if not ticket.future.set_running_or_notify_cancel():
            stats.record_cancelled(1, ["maintenance"])
            return
        dispatched_at = self._clock.now()
        try:
            with self.registry.pinned(model_id) as trainer:
                policy = (
                    ticket.policy
                    if ticket.policy is not None
                    else self.maintenance
                )
                report = trainer.maintain(policy)
                # Re-pack / re-truncation shrank the resident footprint;
                # let the eviction caps see it.
                self.registry.note_plan_bytes(model_id)
        except Exception as exc:
            ticket.future.set_exception(exc)
            with self._sched:
                state.last_maintenance = {"error": repr(exc)}
            stats.record_failed(1, ["maintenance"])
            return
        answered_at = self._clock.now()
        with self._sched:
            state.maintenance_runs += 1
            state.last_maintenance = report.as_dict()
        ticket.future.set_result(report)
        stats.record_batch(
            [dispatched_at - ticket.enqueued_at],
            [answered_at - dispatched_at],
            [answered_at - ticket.enqueued_at],
            ["maintenance"],
        )

    def maintenance_stats(self, model_id: str | None = None) -> dict:
        """Per-model background-maintenance accounting.

        For one model: ``{"runs", "pending", "last"}`` where ``last`` is
        the most recent run's
        :meth:`~repro.core.maintenance.MaintenanceReport.as_dict` (or an
        ``{"error": ...}`` marker).  With ``model_id=None``: that mapping
        for every model that has seen traffic or maintenance.  Lane-level
        timing of maintenance runs lives in the ordinary
        :meth:`stats` under the ``maintenance`` lane.
        """
        def summarize(state: _ModelQueue) -> dict:
            return {
                "runs": state.maintenance_runs,
                "pending": len(state.maintenance),
                "last": state.last_maintenance,
            }

        with self._sched:
            if model_id is not None:
                state = self._queues.get(model_id)
                if state is None:
                    if model_id not in self.registry:
                        raise ValueError(f"unknown model id {model_id!r}")
                    return {"runs": 0, "pending": 0, "last": None}
                return summarize(state)
            return {
                mid: summarize(state) for mid, state in self._queues.items()
            }

    def warm_start(self, n: int) -> tuple[str, ...]:
        """Pre-load the hottest ``n`` models by admission history.

        Delegates to :meth:`ModelRegistry.warm_start` with the registry's
        own per-model admission counts (every :meth:`submit` increments
        them); returns the model ids actually loaded.
        """
        return self.registry.warm_start(n)
