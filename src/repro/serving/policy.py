"""Admission control: when does a queued deletion request get dispatched?

The batched replay engine (:meth:`repro.IncrementalTrainer.remove_many`)
amortizes each iteration's GEMM over K concurrent requests, but real
deletion traffic arrives one request at a time.  An
:class:`AdmissionPolicy` trades per-request latency for batching
efficiency the way serving systems do:

* **coalesce** — hold the oldest waiting request for at most
  ``max_delay_seconds`` while later arrivals join its batch;
* **cap** — dispatch immediately once ``max_batch`` requests are
  collected (one ``remove_many`` call never exceeds it);
* **bound** — reject new submissions once ``max_pending`` requests are
  queued (backpressure instead of unbounded memory growth).

With ``max_delay_seconds=0`` the server degenerates to sequential
single-request service; with a generous delay and a large ``max_batch``
it approaches the throughput of one ``remove_many(K)`` call.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionPolicy:
    """Batching/backpressure knobs for :class:`~repro.serving.DeletionServer`.

    ``on_empty`` decides what :meth:`~repro.serving.DeletionServer.submit`
    does with an empty removal set: ``"resolve"`` (default) answers it
    immediately with a no-op outcome — it never occupies a batch slot or a
    queue slot — while ``"reject"`` raises ``ValueError`` at submit time.
    Empty sets must never reach a batch: they used to dilute the admission
    cap and, in commit mode, would count as a (vacuous) committed request.
    """

    max_batch: int = 16
    max_delay_seconds: float = 0.02
    max_pending: int = 1024
    on_empty: str = "resolve"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay_seconds < 0.0:
            raise ValueError("max_delay_seconds must be >= 0")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.on_empty not in ("resolve", "reject"):
            raise ValueError("on_empty must be 'resolve' or 'reject'")

    def remaining_budget(self, oldest_wait: float) -> float:
        """Seconds the current batch may still wait for more arrivals."""
        return max(0.0, self.max_delay_seconds - oldest_wait)

    def should_dispatch(self, n_collected: int, oldest_wait: float) -> bool:
        """True once the batch is full or its oldest request is out of budget."""
        return (
            n_collected >= self.max_batch
            or oldest_wait >= self.max_delay_seconds
        )
