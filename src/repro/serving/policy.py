"""Admission control: when does a queued deletion request get dispatched?

The batched replay engine (:meth:`repro.IncrementalTrainer.remove_many`)
amortizes each iteration's GEMM over K concurrent requests, but real
deletion traffic arrives one request at a time.  An
:class:`AdmissionPolicy` trades per-request latency for batching
efficiency the way serving systems do:

* **coalesce** — hold the oldest waiting request for at most
  ``max_delay_seconds`` while later arrivals join its batch;
* **cap** — dispatch immediately once ``max_batch`` requests are
  collected (one ``remove_many`` call never exceeds it);
* **bound** — reject new submissions once ``max_pending`` requests are
  queued (backpressure instead of unbounded memory growth).

With ``max_delay_seconds=0`` the server degenerates to sequential
single-request service; with a generous delay and a large ``max_batch``
it approaches the throughput of one ``remove_many(K)`` call.

SLA lanes
---------
Not all deletion traffic tolerates coalescing delay equally: a GDPR
deadline request must go out *now*, while a bulk data-cleaning sweep is
happy to wait for a full batch.  A policy therefore carries a set of
:class:`Lane` classes; every submission names one (default
``default_lane``).  Lanes shape admission in two ways:

* **ordering** — queued requests dispatch in ``(lane.priority,
  submission order)`` order, so a deadline request never sits behind a
  full bulk backlog: it is always in the *next* dispatched batch;
* **budget** — the coalescing delay of a batch is the *minimum* of its
  members' lane delays.  A lane with ``max_delay_seconds=0`` (the
  default ``"deadline"`` lane) therefore forces immediate dispatch of
  whatever batch it joins — later bulk arrivals may still ride along for
  free, but nobody waits on their account.

Within a lane, admission order is always submission order.

Starvation guard
----------------
Priority ordering alone lets a pathological flood of high-priority
traffic pin lower lanes at their full coalescing budget forever.
``max_preemption_ratio`` (per :class:`Lane`, with an
:class:`AdmissionPolicy`-level default) bounds that: among dispatches in
which a guarded lane's requests overtake older lower-priority traffic,
at most that fraction may preempt; once the running debt exceeds the
ratio, the server *yields* — the oldest waiting lower-priority request
is pulled into the next dispatched batch regardless of lane order (and,
because a batch's delay is the min of its members', it is served
immediately with it).  ``None`` (the default) keeps the unlimited
pre-PR-5 behaviour; ``0.0`` degenerates to "every dispatch carries the
oldest waiting lower-priority request".

The fleet additionally ships a stock lowest-priority ``maintenance``
lane: background :meth:`~repro.core.api.IncrementalTrainer.maintain`
work dispatches under its priority, i.e. only when a model has no
queued deletion traffic at all (see :mod:`repro.serving.fleet`).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Lane:
    """One SLA class of deletion traffic.

    ``max_delay_seconds=None`` inherits the policy's default coalescing
    budget; ``0.0`` means "dispatch the batch I join immediately".
    Lower ``priority`` values dispatch first.  ``max_preemption_ratio``
    bounds how often this lane may overtake older lower-priority traffic
    (module docstring); ``None`` defers to the policy-level default.
    """

    name: str
    max_delay_seconds: float | None = None
    priority: int = 0
    max_preemption_ratio: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("lane name must be non-empty")
        if self.max_delay_seconds is not None and self.max_delay_seconds < 0.0:
            raise ValueError("lane max_delay_seconds must be >= 0 (or None)")
        if self.max_preemption_ratio is not None and not (
            0.0 <= self.max_preemption_ratio <= 1.0
        ):
            raise ValueError(
                "lane max_preemption_ratio must be in [0, 1] (or None)"
            )


#: Priority of the stock background-maintenance lane: sorts behind every
#: plausible traffic lane, so maintenance work dispatches only when a
#: model's queue is otherwise empty.
MAINTENANCE_PRIORITY = 1_000_000

#: The default SLA classes: ``deadline`` pre-empts coalescing entirely
#: (GDPR-style traffic), ``bulk`` inherits the policy's delay budget, and
#: ``maintenance`` is the lowest-priority background lane the fleet
#: schedules :meth:`~repro.core.api.IncrementalTrainer.maintain` work on.
DEFAULT_LANES = (
    Lane("deadline", max_delay_seconds=0.0, priority=0),
    Lane("bulk", max_delay_seconds=None, priority=10),
    # Inherits the policy's coalescing budget: a user-submitted request on
    # this lane must never *shorten* a batch's delay the way the
    # zero-delay deadline lane does — background traffic rides along, it
    # does not force dispatch.  (Fleet maintenance tickets live outside
    # the request heap entirely and ignore the delay.)
    Lane("maintenance", max_delay_seconds=None, priority=MAINTENANCE_PRIORITY),
)


class _PreemptionGuard:
    """Debt counter enforcing ``max_preemption_ratio`` (one per queue).

    Every dispatch notes whether a guarded lane overtook older
    lower-priority traffic: a preemption adds ``1 - ratio`` debt, any
    other dispatch repays ``ratio`` (floored at zero).  Once the debt
    reaches 1 the next dispatch must *yield* — include the oldest waiting
    lower-priority request — which guarantees the starved lane at least a
    ``1 - ratio`` share of dispatches during a flood.
    """

    __slots__ = ("_debt", "_repay_ratio")

    def __init__(self) -> None:
        self._debt = 0.0
        # Ratio of the last preempting dispatch: debt accrued at ratio r
        # is repaid at r even by dispatches whose own lead lane carries
        # no ratio (a bulk-led batch after a deadline flood still proves
        # lower-priority traffic is flowing again).
        self._repay_ratio: float | None = None

    def note(self, preempted: bool, ratio: float | None) -> None:
        if ratio is None:
            ratio = self._repay_ratio
            if ratio is None:
                return
        elif preempted:
            self._repay_ratio = ratio
        if preempted:
            self._debt += 1.0 - ratio
        else:
            self._debt = max(0.0, self._debt - ratio)

    def must_yield(self) -> bool:
        return self._debt >= 1.0 - 1e-9

    def observe_dispatch(
        self, batch, oldest_lower_seq, policy, yielded: bool
    ) -> None:
        """Account one dispatched batch (shared by both servers).

        ``batch`` holds the dispatched requests (``lane``/``lane_priority``
        /``seq`` attributes) and ``yielded`` whether this batch already
        carried a yielded request.  ``oldest_lower_seq`` is a callable
        ``priority -> seq | None`` returning the smallest submission seq
        still queued *below* that priority — a callable, not a value,
        because computing it means scanning the pending queue under its
        lock: with no ratio configured (the default) it is never invoked
        and the guard stays genuinely free.  A dispatch preempts when a
        guarded lane's member overtook an older lower-priority request;
        the debt update then follows :meth:`note`.
        """
        lead = min(batch, key=lambda r: r.lane_priority)
        ratio = policy.preemption_ratio_for(lead.lane)
        if ratio is None:
            # A dispatch led by an unguarded lane serves traffic in plain
            # priority order: it repays outstanding debt (at the ratio
            # that accrued it) like any non-preempting dispatch, so a
            # past flood cannot leave the guard force-yielding forever.
            self.note(False, None)
            return
        preempted = False
        if not yielded:
            oldest = oldest_lower_seq(lead.lane_priority)
            if oldest is not None:
                newest_lead = max(
                    r.seq
                    for r in batch
                    if r.lane_priority == lead.lane_priority
                )
                preempted = oldest < newest_lead
        self.note(preempted, ratio)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Batching/backpressure knobs for :class:`~repro.serving.DeletionServer`.

    ``on_empty`` decides what :meth:`~repro.serving.DeletionServer.submit`
    does with an empty removal set: ``"resolve"`` (default) answers it
    immediately with a no-op outcome — it never occupies a batch slot or a
    queue slot — while ``"reject"`` raises ``ValueError`` at submit time.
    Empty sets must never reach a batch: they used to dilute the admission
    cap and, in commit mode, would count as a (vacuous) committed request.

    ``lanes`` / ``default_lane`` configure the SLA classes (module
    docstring).  The stock policy ships a zero-delay ``"deadline"`` lane,
    a ``"bulk"`` lane inheriting ``max_delay_seconds``, and the
    lowest-priority background ``"maintenance"`` lane; submissions that
    don't name a lane ride in ``default_lane``.

    ``max_preemption_ratio`` is the policy-level starvation-guard default
    applied to any lane whose own ratio is ``None`` (module docstring);
    ``None`` disables the guard entirely.

    ``cost_model`` (a :class:`~repro.core.costmodel.CostModel`) makes
    batch closing cost-aware: a batch is dispatched *early* once the
    remaining coalescing budget exceeds the model's predicted marginal
    batching saving.  The hook is strictly one-directional — it can only
    turn "keep waiting" into "dispatch now", never extend a wait — so
    lane budgets stay hard upper bounds (a zero-delay ``deadline`` member
    still forces immediate dispatch regardless of predictions) and the
    re-partitioned batches are answer-preserving.  ``None`` (default)
    keeps the fixed-budget behaviour, as does an uncalibrated model.
    """

    max_batch: int = 16
    max_delay_seconds: float = 0.02
    max_pending: int = 1024
    on_empty: str = "resolve"
    lanes: tuple[Lane, ...] = DEFAULT_LANES
    default_lane: str = "bulk"
    max_preemption_ratio: float | None = None
    cost_model: object | None = field(
        default=None, repr=False, compare=False
    )
    # Derived name -> Lane map (not part of the public constructor).
    _lane_map: dict = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_delay_seconds < 0.0:
            raise ValueError("max_delay_seconds must be >= 0")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.on_empty not in ("resolve", "reject"):
            raise ValueError("on_empty must be 'resolve' or 'reject'")
        if self.max_preemption_ratio is not None and not (
            0.0 <= self.max_preemption_ratio <= 1.0
        ):
            raise ValueError(
                "max_preemption_ratio must be in [0, 1] (or None)"
            )
        if not self.lanes:
            raise ValueError("at least one lane is required")
        lane_map = {}
        for lane in self.lanes:
            if not isinstance(lane, Lane):
                raise TypeError(f"lanes must be Lane instances, got {lane!r}")
            if lane.name in lane_map:
                raise ValueError(f"duplicate lane name: {lane.name!r}")
            lane_map[lane.name] = lane
        if self.default_lane not in lane_map:
            raise ValueError(
                f"default_lane {self.default_lane!r} is not a configured lane "
                f"(have: {sorted(lane_map)})"
            )
        object.__setattr__(self, "_lane_map", lane_map)

    # ---------------------------------------------------------------- lanes
    @property
    def lane_names(self) -> tuple[str, ...]:
        """Configured lane names, in declaration order."""
        return tuple(lane.name for lane in self.lanes)

    def lane(self, name: str | None) -> Lane:
        """Resolve a lane by name (``None`` -> the default lane)."""
        if name is None:
            name = self.default_lane
        try:
            return self._lane_map[name]
        except KeyError:
            raise ValueError(
                f"unknown lane {name!r} (have: {sorted(self._lane_map)})"
            ) from None

    def delay_for(self, name: str | None) -> float:
        """The coalescing budget of one lane (``None`` delay -> policy default)."""
        lane = self.lane(name)
        if lane.max_delay_seconds is None:
            return self.max_delay_seconds
        return lane.max_delay_seconds

    def preemption_ratio_for(self, name: str | None) -> float | None:
        """One lane's effective starvation-guard ratio (module docstring)."""
        lane = self.lane(name)
        if lane.max_preemption_ratio is not None:
            return lane.max_preemption_ratio
        return self.max_preemption_ratio

    # ------------------------------------------------------------- dispatch
    def remaining_budget(
        self, oldest_wait: float, delay: float | None = None
    ) -> float:
        """Seconds the current batch may still wait for more arrivals.

        ``delay`` is the batch's effective coalescing budget — the minimum
        of its members' lane delays; ``None`` falls back to the policy
        default (the single-lane behaviour).
        """
        if delay is None:
            delay = self.max_delay_seconds
        return max(0.0, delay - oldest_wait)

    def should_dispatch(
        self, n_collected: int, oldest_wait: float, delay: float | None = None
    ) -> bool:
        """True once the batch is full or its oldest request is out of budget.

        With a ``cost_model`` attached, also True once waiting out the
        remaining budget is predicted to cost the queued members more
        latency than one more straggler could save by coalescing
        (:meth:`CostModel.should_close`) — early close only, never a
        longer wait.
        """
        if delay is None:
            delay = self.max_delay_seconds
        if n_collected >= self.max_batch or oldest_wait >= delay:
            return True
        if self.cost_model is not None and n_collected >= 1:
            return bool(
                self.cost_model.should_close(
                    n_collected, max(0.0, delay - oldest_wait)
                )
            )
        return False
