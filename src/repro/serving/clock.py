"""Injectable time for the serving layer.

Every deadline decision the serving layer makes — how long a batch may
coalesce, when an SLA lane's budget expires, what a request's measured
wait/latency was — goes through a :class:`Clock` instead of calling
:func:`time.perf_counter` directly.  Production servers use the default
:class:`MonotonicClock`; tests inject a fake (``tests/serving/harness.py``)
whose time only moves when the test advances it, so latency assertions are
*exact* and no test ever sleeps.

The clock owns the two operations where time and waiting interact:

* :meth:`Clock.now` — the current monotonic timestamp (seconds);
* :meth:`Clock.get` — "wait up to ``timeout`` *clock* seconds for an item
  on this queue".  A fake clock consumes the budget in zero wall time;
  the real clock maps it onto :meth:`queue.Queue.get`.
* :meth:`Clock.wait` — the condition-variable analogue, used by the
  fleet scheduler to sleep until the earliest lane deadline.

Timestamps are arbitrary-origin monotonic seconds: only differences are
meaningful, matching ``time.perf_counter`` semantics.
"""

from __future__ import annotations

import queue
import threading
import time


class Clock:
    """Interface the serving layer's deadline math is written against."""

    def now(self) -> float:
        """Current monotonic time in seconds (arbitrary origin)."""
        raise NotImplementedError

    def get(self, q: queue.Queue, timeout: float):
        """Pop an item, waiting at most ``timeout`` clock seconds.

        Raises :class:`queue.Empty` once the budget elapses with nothing
        to pop; implementations guarantee ``now()`` has advanced by (at
        least) ``timeout`` when they do.
        """
        raise NotImplementedError

    def wait(self, condition: threading.Condition, timeout: float | None) -> bool:
        """Wait on ``condition`` (held by the caller) up to ``timeout``.

        ``timeout=None`` means "until notified" — idle waiting, which is
        real even under a fake clock.  Returns the underlying wait's
        verdict (False on timeout), though callers are expected to
        re-check their predicate either way.
        """
        raise NotImplementedError

    def timestamp(self) -> float:
        """An *epoch-meaningful* stamp for audit receipts.

        Unlike :meth:`now` this is allowed to mean something outside the
        process (commit receipts are compared across runs).  The default
        reuses :meth:`now` so fake clocks stay deterministic; the real
        clock answers with wall time.  This method is the sanctioned
        wall-clock seam — everything else routes through ``now()``.
        """
        return self.now()


class MonotonicClock(Clock):
    """Real wall time: ``time.perf_counter`` + genuinely blocking waits."""

    def now(self) -> float:
        return time.perf_counter()

    def timestamp(self) -> float:
        return time.time()

    def get(self, q: queue.Queue, timeout: float):
        return q.get(timeout=timeout)

    def wait(self, condition: threading.Condition, timeout: float | None) -> bool:
        return condition.wait(timeout)


#: Shared default instance — the clock is stateless.
MONOTONIC_CLOCK = MonotonicClock()
