"""Typed errors for the serving layer.

Callers distinguish three failure families:

* **Admission** — :class:`BackpressureError`: the request never entered
  the queue; retry later or submit with ``block=True``.
* **Infrastructure** — :class:`WorkerCrashedError`: the server's worker
  thread died; every queued future fails with this and further submits
  are refused.  The process-wide invariant is that ``flush()`` never
  wedges: a dead worker fails pending work loudly instead of leaving
  callers blocked on futures nobody will complete.
* **Model health** — :class:`ModelLoadError` (a load ultimately failed
  after the retry budget) and :class:`ModelQuarantinedError` (the model's
  circuit breaker is open; submits fast-fail until the next half-open
  probe at ``retry_at``).

:class:`CheckpointCorruptionError` is re-exported from the core so
serving callers can catch "the bytes on disk are bad" without importing
the serialization module; it is a *non-transient* load failure — the
fleet quarantines immediately rather than retrying.
"""

from __future__ import annotations

from typing import Optional

from ..core.serialization import CheckpointCorruptionError

__all__ = [
    "ServingError",
    "BackpressureError",
    "ServerClosedError",
    "ServerStateError",
    "WorkerCrashedError",
    "ModelLoadError",
    "ModelQuarantinedError",
    "ShardUnavailableError",
    "CheckpointCorruptionError",
]


class ServingError(RuntimeError):
    """Base class for typed serving-layer failures."""


class BackpressureError(ServingError):
    """The server's admission queue is full; retry later or block."""


class ServerClosedError(ServingError):
    """The server was closed; no further submits are accepted."""


class ServerStateError(ServingError):
    """A lifecycle-order violation: e.g. flush/configure on a server in
    the wrong state (never started, already carrying traffic)."""


class WorkerCrashedError(ServingError):
    """The worker thread died; queued futures fail, submits are refused."""


class ModelLoadError(ServingError):
    """Loading a model's checkpoint failed after exhausting retries."""

    def __init__(self, model_id: str, attempts: int, cause: Optional[BaseException] = None):
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"failed to load model {model_id!r} after {attempts} attempt(s){detail}"
        )
        self.model_id = model_id
        self.attempts = attempts

    def __reduce__(self):
        # Rebuild from the structured fields (the default exception
        # reduce replays ``args``, which is the formatted message) so the
        # router can ship instances across process pipes.
        return (type(self), (self.model_id, self.attempts))


class ModelQuarantinedError(ServingError):
    """The model's circuit breaker is open; submits fast-fail until probed."""

    def __init__(self, model_id: str, failures: int, retry_at: float):
        super().__init__(
            f"model {model_id!r} is quarantined after {failures} consecutive "
            f"load failure(s); next probe at t={retry_at:.3f}"
        )
        self.model_id = model_id
        self.failures = failures
        self.retry_at = retry_at

    def __reduce__(self):
        return (type(self), (self.model_id, self.failures, self.retry_at))


class ShardUnavailableError(ServingError):
    """A shard worker process is down (crashed, killed, or restarting).

    The cross-process analogue of :class:`WorkerCrashedError`, scoped to
    one shard of a :class:`~repro.serving.router.ShardRouter`: in-flight
    requests homed on the dead shard fail with this error, other shards
    are untouched, and subsequent submits for the dead shard's models
    either fail over to the next live shard on the hash ring or fast-fail
    here while the shard's breaker is open.  Picklable (pipes carry it
    back to callers in other processes).
    """

    def __init__(self, shard: str, reason: str = "shard process is down"):
        super().__init__(f"shard {shard!r} unavailable: {reason}")
        self.shard = shard
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.shard, self.reason))
