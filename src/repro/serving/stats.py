"""Per-request timing accounting for the deletion server.

Every answered request contributes three samples — queueing wait, service
share, and end-to-end latency — which are aggregated through
:mod:`repro.eval.timing` order statistics (:class:`LatencySummary`).  A
:class:`StatsRecorder` is the thread-safe accumulator the server's worker
and submitter threads write into; :meth:`StatsRecorder.snapshot` freezes a
consistent :class:`ServingStats` view at any moment.

Counts are *conserved*: every submission ends in exactly one of
``answered``, ``failed`` or ``cancelled`` (or is still ``pending``), and
``rejected`` counts submissions that never entered the queue at all
(backpressure).  The same accounting is kept per SLA lane
(:class:`LaneStats`), so a ``deadline``-lane p99 can be read off directly.
Snapshots are isolated: mutating the recorder after
:meth:`~StatsRecorder.snapshot` never changes an already-taken snapshot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..eval.timing import LatencySummary, summarize_latencies


@dataclass
class LaneStats:
    """One SLA lane's share of a server's lifetime counters and timings."""

    submitted: int
    answered: int
    failed: int
    cancelled: int
    rejected: int
    wait: LatencySummary | None  # enqueue -> dispatch
    service: LatencySummary | None  # dispatch -> answer
    latency: LatencySummary | None  # enqueue -> answer (end to end)
    # Submissions fast-failed because the model's circuit breaker was
    # open.  Like ``rejected``, these never entered the queue, so they
    # stay outside the pending conservation identity.
    quarantined: int = 0

    @property
    def pending(self) -> int:
        """Requests submitted but not yet answered, failed or cancelled."""
        return self.submitted - self.answered - self.failed - self.cancelled

    def as_dict(self) -> dict:
        """JSON-serializable form (for BENCH_fleet.json and friends)."""
        return {
            "submitted": self.submitted,
            "answered": self.answered,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "quarantined": self.quarantined,
            "wait": None if self.wait is None else self.wait.as_dict(),
            "service": None if self.service is None else self.service.as_dict(),
            "latency": None if self.latency is None else self.latency.as_dict(),
        }


@dataclass
class ServingStats:
    """A consistent snapshot of a server's lifetime counters and timings."""

    submitted: int
    answered: int
    failed: int
    cancelled: int
    rejected: int
    batches: int
    mean_batch_size: float
    wait: LatencySummary | None  # enqueue -> dispatch
    service: LatencySummary | None  # dispatch -> answer
    latency: LatencySummary | None  # enqueue -> answer (end to end)
    lanes: dict[str, LaneStats] = field(default_factory=dict)
    quarantined: int = 0  # fast-failed: circuit breaker open (see LaneStats)

    @property
    def pending(self) -> int:
        """Requests submitted but not yet answered, failed or cancelled."""
        return self.submitted - self.answered - self.failed - self.cancelled

    def lane(self, name: str) -> LaneStats:
        """One lane's accounting (a zeroed LaneStats if it saw no traffic)."""
        if name in self.lanes:
            return self.lanes[name]
        return LaneStats(0, 0, 0, 0, 0, None, None, None)

    def as_dict(self) -> dict:
        """JSON-serializable form (for BENCH_serving.json and friends)."""
        return {
            "submitted": self.submitted,
            "answered": self.answered,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "quarantined": self.quarantined,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "wait": None if self.wait is None else self.wait.as_dict(),
            "service": None if self.service is None else self.service.as_dict(),
            "latency": None if self.latency is None else self.latency.as_dict(),
            "lanes": {
                name: lane.as_dict() for name, lane in sorted(self.lanes.items())
            },
        }


@dataclass
class LaneFrame:
    """One lane's mergeable raw state (see :class:`StatsFrame`)."""

    submitted: int = 0
    answered: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    quarantined: int = 0
    waits: list[float] = field(default_factory=list)
    services: list[float] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)

    def merge(self, other: "LaneFrame") -> None:
        """Fold ``other`` into this frame in place."""
        self.submitted += other.submitted
        self.answered += other.answered
        self.failed += other.failed
        self.cancelled += other.cancelled
        self.rejected += other.rejected
        self.quarantined += other.quarantined
        self.waits.extend(other.waits)
        self.services.extend(other.services)
        self.latencies.extend(other.latencies)

    def summarize(self) -> LaneStats:
        return LaneStats(
            submitted=self.submitted,
            answered=self.answered,
            failed=self.failed,
            cancelled=self.cancelled,
            rejected=self.rejected,
            quarantined=self.quarantined,
            wait=summarize_latencies(self.waits),
            service=summarize_latencies(self.services),
            latency=summarize_latencies(self.latencies),
        )


@dataclass
class StatsFrame:
    """A mergeable, picklable carrier of one recorder's *raw* samples.

    Cross-process aggregation is where percentile statistics quietly go
    wrong: a p99 is an order statistic, and averaging (or even max-ing)
    per-shard p99s produces a number that is not the p99 of anything.
    A frame therefore carries the raw per-request samples plus the
    additive counters; :meth:`merge` concatenates samples and sums
    counts, and only :meth:`summarize` — called once, on the fully
    merged frame — computes order statistics, so a fleet-wide p99 is the
    true 99th percentile of the pooled requests.  Frames are plain data
    (lists and ints), so shard workers pickle them over their pipes.
    """

    submitted: int = 0
    answered: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    quarantined: int = 0
    batches: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    waits: list[float] = field(default_factory=list)
    services: list[float] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    lanes: dict[str, LaneFrame] = field(default_factory=dict)

    def merge(self, other: "StatsFrame") -> "StatsFrame":
        """Fold ``other`` into this frame in place; returns ``self``."""
        self.submitted += other.submitted
        self.answered += other.answered
        self.failed += other.failed
        self.cancelled += other.cancelled
        self.rejected += other.rejected
        self.quarantined += other.quarantined
        self.batches += other.batches
        self.batch_sizes.extend(other.batch_sizes)
        self.waits.extend(other.waits)
        self.services.extend(other.services)
        self.latencies.extend(other.latencies)
        for name, lane in other.lanes.items():
            mine = self.lanes.get(name)
            if mine is None:
                mine = self.lanes[name] = LaneFrame()
            mine.merge(lane)
        return self

    @classmethod
    def merged(cls, frames) -> "StatsFrame":
        """A fresh frame holding the union of ``frames``."""
        total = cls()
        for frame in frames:
            total.merge(frame)
        return total

    def summarize(self) -> ServingStats:
        """Order statistics over the pooled samples (merge first)."""
        sizes = self.batch_sizes
        return ServingStats(
            submitted=self.submitted,
            answered=self.answered,
            failed=self.failed,
            cancelled=self.cancelled,
            rejected=self.rejected,
            quarantined=self.quarantined,
            batches=self.batches,
            mean_batch_size=(sum(sizes) / len(sizes) if sizes else 0.0),
            wait=summarize_latencies(self.waits),
            service=summarize_latencies(self.services),
            latency=summarize_latencies(self.latencies),
            lanes={
                name: lane.summarize() for name, lane in self.lanes.items()
            },
        )


class _LaneAccumulator:
    """Mutable per-lane tallies inside a recorder (guarded by its lock)."""

    __slots__ = (
        "submitted", "answered", "failed", "cancelled", "rejected",
        "quarantined", "waits", "services", "latencies",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.answered = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0
        self.quarantined = 0
        self.waits: list[float] = []
        self.services: list[float] = []
        self.latencies: list[float] = []

    def snapshot(self) -> LaneStats:
        return LaneStats(
            submitted=self.submitted,
            answered=self.answered,
            failed=self.failed,
            cancelled=self.cancelled,
            rejected=self.rejected,
            quarantined=self.quarantined,
            wait=summarize_latencies(self.waits),
            service=summarize_latencies(self.services),
            latency=summarize_latencies(self.latencies),
        )


class StatsRecorder:
    """Thread-safe accumulator behind :meth:`DeletionServer.stats`.

    Every ``record_*`` method takes the request's lane name (``None`` for
    unlaned callers: only the aggregate counters move).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0  # guarded-by: _lock
        self._answered = 0  # guarded-by: _lock
        self._failed = 0  # guarded-by: _lock
        self._cancelled = 0  # guarded-by: _lock
        self._rejected = 0  # guarded-by: _lock
        self._quarantined = 0  # guarded-by: _lock
        self._batches = 0  # guarded-by: _lock
        self._batch_sizes: list[int] = []  # guarded-by: _lock
        self._waits: list[float] = []  # guarded-by: _lock
        self._services: list[float] = []  # guarded-by: _lock
        self._latencies: list[float] = []  # guarded-by: _lock
        self._lanes: dict[str, _LaneAccumulator] = {}  # guarded-by: _lock

    def _lane(self, lane: str | None) -> _LaneAccumulator | None:  # caller-holds: _lock
        """Resolve the per-lane accumulator (caller holds the lock)."""
        if lane is None:
            return None
        accumulator = self._lanes.get(lane)
        if accumulator is None:
            accumulator = self._lanes[lane] = _LaneAccumulator()
        return accumulator

    def record_submitted(self, lane: str | None = None) -> None:
        with self._lock:
            self._submitted += 1
            accumulator = self._lane(lane)
            if accumulator is not None:
                accumulator.submitted += 1

    def record_rejected(self, lane: str | None = None) -> None:
        with self._lock:
            self._rejected += 1
            accumulator = self._lane(lane)
            if accumulator is not None:
                accumulator.rejected += 1

    def record_quarantined(self, lane: str | None = None) -> None:
        """A submission fast-failed because the model's breaker was open."""
        with self._lock:
            self._quarantined += 1
            accumulator = self._lane(lane)
            if accumulator is not None:
                accumulator.quarantined += 1

    def record_noop(self, lane: str | None = None) -> None:
        """An empty submission answered inline (no batch dispatched)."""
        with self._lock:
            self._submitted += 1
            self._answered += 1
            accumulator = self._lane(lane)
            if accumulator is not None:
                accumulator.submitted += 1
                accumulator.answered += 1

    def record_batch(
        self,
        waits: list[float],
        services: list[float],
        latencies: list[float],
        lanes: list[str | None] | None = None,
    ) -> None:
        """One dispatched batch's per-request samples (parallel lists)."""
        if lanes is None:
            lanes = [None] * len(waits)
        with self._lock:
            self._batches += 1
            self._batch_sizes.append(len(waits))
            self._answered += len(waits)
            self._waits.extend(waits)
            self._services.extend(services)
            self._latencies.extend(latencies)
            for lane, wait, service, latency in zip(
                lanes, waits, services, latencies
            ):
                accumulator = self._lane(lane)
                if accumulator is not None:
                    accumulator.answered += 1
                    accumulator.waits.append(wait)
                    accumulator.services.append(service)
                    accumulator.latencies.append(latency)

    def record_failed(
        self, count: int, lanes: list[str | None] | None = None
    ) -> None:
        with self._lock:
            self._failed += count
            for lane in lanes or ():
                accumulator = self._lane(lane)
                if accumulator is not None:
                    accumulator.failed += 1

    def record_cancelled(
        self, count: int, lanes: list[str | None] | None = None
    ) -> None:
        with self._lock:
            self._cancelled += count
            for lane in lanes or ():
                accumulator = self._lane(lane)
                if accumulator is not None:
                    accumulator.cancelled += 1

    def frame(self) -> StatsFrame:
        """A consistent copy of the raw state, ready to merge or pickle.

        This is how a shard worker exports its share of the fleet's
        accounting: the router merges every shard's frame and summarizes
        the union, never shard-local percentiles.
        """
        with self._lock:
            return StatsFrame(
                submitted=self._submitted,
                answered=self._answered,
                failed=self._failed,
                cancelled=self._cancelled,
                rejected=self._rejected,
                quarantined=self._quarantined,
                batches=self._batches,
                batch_sizes=list(self._batch_sizes),
                waits=list(self._waits),
                services=list(self._services),
                latencies=list(self._latencies),
                lanes={
                    name: LaneFrame(
                        submitted=lane.submitted,
                        answered=lane.answered,
                        failed=lane.failed,
                        cancelled=lane.cancelled,
                        rejected=lane.rejected,
                        quarantined=lane.quarantined,
                        waits=list(lane.waits),
                        services=list(lane.services),
                        latencies=list(lane.latencies),
                    )
                    for name, lane in self._lanes.items()
                },
            )

    def snapshot(self) -> ServingStats:
        with self._lock:
            sizes = self._batch_sizes
            return ServingStats(
                submitted=self._submitted,
                answered=self._answered,
                failed=self._failed,
                cancelled=self._cancelled,
                rejected=self._rejected,
                quarantined=self._quarantined,
                batches=self._batches,
                mean_batch_size=(
                    sum(sizes) / len(sizes) if sizes else 0.0
                ),
                wait=summarize_latencies(self._waits),
                service=summarize_latencies(self._services),
                latency=summarize_latencies(self._latencies),
                lanes={
                    name: accumulator.snapshot()
                    for name, accumulator in self._lanes.items()
                },
            )
