"""Per-request timing accounting for the deletion server.

Every answered request contributes three samples — queueing wait, service
share, and end-to-end latency — which are aggregated through
:mod:`repro.eval.timing` order statistics (:class:`LatencySummary`).  A
:class:`StatsRecorder` is the thread-safe accumulator the server's worker
and submitter threads write into; :meth:`StatsRecorder.snapshot` freezes a
consistent :class:`ServingStats` view at any moment.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..eval.timing import LatencySummary, summarize_latencies


@dataclass
class ServingStats:
    """A consistent snapshot of a server's lifetime counters and timings."""

    submitted: int
    answered: int
    failed: int
    cancelled: int
    rejected: int
    batches: int
    mean_batch_size: float
    wait: LatencySummary | None  # enqueue -> dispatch
    service: LatencySummary | None  # dispatch -> answer
    latency: LatencySummary | None  # enqueue -> answer (end to end)

    @property
    def pending(self) -> int:
        """Requests submitted but not yet answered, failed or cancelled."""
        return self.submitted - self.answered - self.failed - self.cancelled

    def as_dict(self) -> dict:
        """JSON-serializable form (for BENCH_serving.json and friends)."""
        return {
            "submitted": self.submitted,
            "answered": self.answered,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": self.rejected,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "wait": None if self.wait is None else self.wait.as_dict(),
            "service": None if self.service is None else self.service.as_dict(),
            "latency": None if self.latency is None else self.latency.as_dict(),
        }


class StatsRecorder:
    """Thread-safe accumulator behind :meth:`DeletionServer.stats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0
        self._answered = 0
        self._failed = 0
        self._cancelled = 0
        self._rejected = 0
        self._batches = 0
        self._batch_sizes: list[int] = []
        self._waits: list[float] = []
        self._services: list[float] = []
        self._latencies: list[float] = []

    def record_submitted(self) -> None:
        with self._lock:
            self._submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_noop(self) -> None:
        """An empty submission answered inline (no batch dispatched)."""
        with self._lock:
            self._submitted += 1
            self._answered += 1

    def record_batch(
        self,
        waits: list[float],
        services: list[float],
        latencies: list[float],
    ) -> None:
        """One dispatched batch's per-request samples (parallel lists)."""
        with self._lock:
            self._batches += 1
            self._batch_sizes.append(len(waits))
            self._answered += len(waits)
            self._waits.extend(waits)
            self._services.extend(services)
            self._latencies.extend(latencies)

    def record_failed(self, count: int) -> None:
        with self._lock:
            self._failed += count

    def record_cancelled(self, count: int) -> None:
        with self._lock:
            self._cancelled += count

    def snapshot(self) -> ServingStats:
        with self._lock:
            sizes = self._batch_sizes
            return ServingStats(
                submitted=self._submitted,
                answered=self._answered,
                failed=self._failed,
                cancelled=self._cancelled,
                rejected=self._rejected,
                batches=self._batches,
                mean_batch_size=(
                    sum(sizes) / len(sizes) if sizes else 0.0
                ),
                wait=summarize_latencies(self._waits),
                service=summarize_latencies(self._services),
                latency=summarize_latencies(self._latencies),
            )
