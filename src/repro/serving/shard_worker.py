"""The process entrypoint one router shard runs.

A shard is an ordinary :class:`~repro.serving.FleetServer` over a
shard-local :class:`~repro.serving.ModelRegistry`, wrapped in a small
message loop speaking the router's framing over one duplex
``multiprocessing`` pipe.  The split of responsibilities:

* the **router** (parent process) owns placement — which models home on
  which shard — plus failover and the shard-granularity circuit breaker;
* the **worker** (this module) owns everything within its shard: lazy
  checkpoint loads through a process-local
  :class:`~repro.core.serialization.PlanCache` (every model loaded here
  shares the one read-only ``MAP_SHARED`` plan mapping per archive
  epoch), lane-aware admission, per-model retry/quarantine, and stats.

Framing (tuples, pickled by the pipe; ``req_id`` is router-assigned):

===========================================  =================================
router → worker                              worker → router
===========================================  =================================
``("register", id, model, ckpt, X, y, kw)``  ``("ok", id, meta)`` / ``("err", id, exc)``
``("submit", id, model, indices, lane)``     ``("ok", id, ServedOutcome)`` / ``("err", id, exc)``
``("flush", id, timeout)``                   ``("ok", id, bool)``
``("stats", id)``                            ``("ok", id, StatsFrame)``
``("warm", id, plan_path, prefault)``        ``("ok", id, bytes_mapped)``
``("ping", id)``                             ``("ok", id, pid)``
``("shutdown", id)``                         ``("ok", id, None)``, then exit
===========================================  =================================

On startup the worker announces ``("hello", shard_name, pid)``.  Replies
to submits arrive *out of order* (they ride the fleet's completion
callbacks); the ``req_id`` is the correlation key.  Stats cross the pipe
as raw-sample :class:`~repro.serving.stats.StatsFrame`\\ s so the router
can merge before summarizing — per-shard percentiles are never averaged.

The loop needs no clock of its own: ``conn.recv()`` blocks on I/O, the
fleet's deadline math runs on its injectable clock, and a router that
dies takes the pipe with it (``EOFError`` → clean worker exit).
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import CancelledError

from ..core.serialization import PlanCache
from .errors import ServingError
from .fleet import FleetServer, ModelRegistry

__all__ = ["shard_main"]


def _shippable(exc: BaseException) -> BaseException:
    """An exception that survives the pipe's pickle round trip."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ServingError(f"{type(exc).__name__}: {exc}")


class _ShardLoop:
    """One worker process's state: fleet, plan cache, framed pipe."""

    def __init__(self, conn, name: str, options: dict) -> None:
        self._conn = conn
        self._name = name
        # The whole point of the shard split: one canonical read-only
        # plan mapping per archive epoch, shared (via the page cache)
        # with every sibling shard mapping the same file.
        self._plan_cache = PlanCache()
        self._prefault = bool(options.get("prefault_plans", False))
        self._registry = ModelRegistry(
            max_resident=options.get("max_resident"),
            max_plan_bytes=options.get("max_plan_bytes"),
        )
        self._fleet = FleetServer(
            self._registry,
            options.get("policy"),
            method=options.get("method"),
            n_workers=int(options.get("n_workers", 1)),
            retry=options.get("retry"),
        )
        # Fault seam for the crash/chaos harness: process submit message
        # number K, then die hard (``os._exit``) with later submits — and
        # any still-inflight batch — unanswered, exactly like a kernel
        # OOM-kill mid-dispatch.
        self._crash_after = options.get("crash_after_submits")
        self._submits_seen = 0
        # Completion callbacks reply from fleet worker threads while the
        # message loop replies inline; one lock frames the pipe writes.
        self._send_lock = threading.Lock()

    def _send(self, message: tuple) -> None:
        with self._send_lock:  # guarded-by: _send_lock (the pipe itself)
            try:
                self._conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                # The router is gone; the loop will see EOF and exit.
                pass

    def _reply_done(self, req_id: int, future) -> None:
        try:
            exc = future.exception()
        except CancelledError as cancelled:
            exc = cancelled
        if exc is not None:
            self._send(("err", req_id, _shippable(exc)))
        else:
            self._send(("ok", req_id, future.result()))

    def _handle(self, message: tuple) -> bool:
        """Dispatch one framed request; False ends the loop."""
        kind, req_id = message[0], message[1]
        if kind == "shutdown":
            self._send(("ok", req_id, None))
            return False
        if kind == "submit":
            _, _, model_id, indices, lane = message
            self._submits_seen += 1
            if (
                self._crash_after is not None
                and self._submits_seen >= self._crash_after
            ):
                os._exit(13)
            future = self._fleet.submit(model_id, indices, lane=lane)
            future.add_done_callback(
                lambda fut, req_id=req_id: self._reply_done(req_id, fut)
            )
            return True
        if kind == "register":
            _, _, model_id, checkpoint, features, labels, kwargs = message
            if model_id in self._registry:
                # Re-homing after a failover bounce: already ours.
                self._send(("ok", req_id, None))
                return True
            metadata = self._registry.register(
                model_id,
                checkpoint=checkpoint,
                features=features,
                labels=labels,
                plan_cache=self._plan_cache,
                **kwargs,
            )
            if self._prefault and metadata is not None and metadata.plan_path:
                self._plan_cache.warm(metadata.plan_path, prefault=True)
            self._send(
                ("ok", req_id, None if metadata is None else metadata.as_dict())
            )
            return True
        if kind == "flush":
            self._send(("ok", req_id, self._fleet.flush(timeout=message[2])))
            return True
        if kind == "stats":
            self._send(("ok", req_id, self._fleet.stats_frame()))
            return True
        if kind == "warm":
            _, _, plan_path, prefault = message
            mapped = self._plan_cache.warm(plan_path, prefault=prefault)
            self._send(("ok", req_id, mapped))
            return True
        if kind == "ping":
            self._send(("ok", req_id, os.getpid()))
            return True
        raise ServingError(f"unknown shard message kind {kind!r}")

    def run(self) -> None:
        self._send(("hello", self._name, os.getpid()))
        try:
            while True:
                try:
                    message = self._conn.recv()
                except (EOFError, OSError):
                    break
                try:
                    if not self._handle(message):
                        break
                except Exception as exc:
                    self._send(("err", message[1], _shippable(exc)))
        finally:
            self._fleet.close(wait=False)


def shard_main(conn, name: str, options: dict) -> None:
    """Run one shard until shutdown/EOF (the ``Process`` target).

    Top-level (hence picklable under every multiprocessing start method);
    ``options`` carries the fleet knobs — ``policy``, ``method``,
    ``n_workers``, ``retry``, ``max_resident``, ``max_plan_bytes``,
    ``prefault_plans`` — plus the ``crash_after_submits`` fault seam.
    """
    _ShardLoop(conn, name, options).run()
