"""Deletion serving: the online half of the capture → compile → serve stack.

PrIU's premise is that deletion requests arrive *after* training, in a
long-lived serving process.  This package supplies that process:

* :class:`DeletionServer` — ``submit(ids) -> Future``; a worker thread
  coalesces queued requests and answers them through one batched
  :meth:`~repro.core.api.IncrementalTrainer.remove_many` call per batch.
  With ``commit_mode=True`` each batch is *applied* in admission order
  (store compaction + incremental plan refresh) instead of answered as a
  stateless counterfactual;
* :class:`ModelRegistry` / :class:`FleetServer` — the multi-model tier:
  checkpoints registered by model id, loaded lazily and LRU-evicted
  under a memory cap, served through per-model lane-aware queues by a
  shared bounded worker pool (:mod:`repro.serving.fleet`);
* :class:`ShardRouter` — the cross-process tier: model ids consistent-
  hashed across N shard worker processes (each running its own fleet
  over a shard-local registry, all sharing one read-only plan mapping
  via :class:`~repro.core.serialization.PlanCache`), with shard-
  granularity retry/failover (:class:`ShardUnavailableError`), an
  optional warm standby, and cross-shard stats merged from raw-sample
  :class:`StatsFrame`\\ s — percentiles are computed over the pooled
  requests, never averaged (:mod:`repro.serving.router`);
* :class:`AdmissionPolicy` / :class:`Lane` — the latency-budget /
  max-batch / backpressure knobs governing coalescing, plus the SLA
  lanes (a zero-delay ``deadline`` lane pre-empts coalescing; ``bulk``
  traffic rides the batching budget; a lowest-priority ``maintenance``
  lane carries background plan maintenance) and the
  ``max_preemption_ratio`` starvation guard bounding deadline floods;
* :class:`ServedOutcome` — updated weights plus per-request
  wait/service/latency timings and batch coordinates;
* :class:`ServingStats` / :class:`LaneStats` — lifetime counters and
  latency distributions, fleet-wide, per model and per lane (via
  :mod:`repro.eval.timing`);
* :class:`Clock` / :class:`MonotonicClock` — the injectable time source
  every deadline decision runs on, so tests can drive the whole serving
  layer with a fake clock and zero real sleeps;
* :mod:`~repro.serving.errors` — the typed failure taxonomy:
  :class:`BackpressureError` (queue full), :class:`WorkerCrashedError`
  (a worker thread died; queued futures fail instead of wedging),
  :class:`ModelLoadError` / :class:`ModelQuarantinedError` (the fleet's
  per-model retry + circuit-breaker state, tuned via
  :class:`RetryPolicy`) and the re-exported
  :class:`~repro.core.serialization.CheckpointCorruptionError`.

Pair with :meth:`~repro.core.api.IncrementalTrainer.from_checkpoint` to
stand a server up from a saved store + compiled plan without re-running
capture (see ``examples/deletion_server.py`` and
``examples/fleet_server.py``).
"""

from .clock import Clock, MonotonicClock
from .errors import (
    BackpressureError,
    CheckpointCorruptionError,
    ModelLoadError,
    ModelQuarantinedError,
    ServerClosedError,
    ServerStateError,
    ServingError,
    ShardUnavailableError,
    WorkerCrashedError,
)
from .fleet import FleetServer, ModelRegistry, RetryPolicy, SaveOutcome
from .policy import (
    DEFAULT_LANES,
    MAINTENANCE_PRIORITY,
    AdmissionPolicy,
    Lane,
)
from .router import ShardRouter
from .server import DeletionServer, ServedOutcome
from .stats import (
    LaneFrame,
    LaneStats,
    ServingStats,
    StatsFrame,
    StatsRecorder,
)

__all__ = [
    "AdmissionPolicy",
    "BackpressureError",
    "CheckpointCorruptionError",
    "Clock",
    "DEFAULT_LANES",
    "MAINTENANCE_PRIORITY",
    "DeletionServer",
    "FleetServer",
    "Lane",
    "LaneFrame",
    "LaneStats",
    "ModelLoadError",
    "ModelQuarantinedError",
    "ServerClosedError",
    "ServerStateError",
    "ModelRegistry",
    "MonotonicClock",
    "RetryPolicy",
    "SaveOutcome",
    "ServedOutcome",
    "ServingError",
    "ServingStats",
    "ShardRouter",
    "ShardUnavailableError",
    "StatsFrame",
    "StatsRecorder",
    "WorkerCrashedError",
]
