"""Deletion serving: the online half of the capture → compile → serve stack.

PrIU's premise is that deletion requests arrive *after* training, in a
long-lived serving process.  This package supplies that process:

* :class:`DeletionServer` — ``submit(ids) -> Future``; a worker thread
  coalesces queued requests and answers them through one batched
  :meth:`~repro.core.api.IncrementalTrainer.remove_many` call per batch.
  With ``commit_mode=True`` each batch is *applied* in admission order
  (store compaction + incremental plan refresh) instead of answered as a
  stateless counterfactual;
* :class:`AdmissionPolicy` — the latency-budget / max-batch /
  backpressure knobs governing coalescing;
* :class:`ServedOutcome` — updated weights plus per-request
  wait/service/latency timings;
* :class:`ServingStats` — lifetime counters and latency distributions
  (via :mod:`repro.eval.timing`);
* :class:`BackpressureError` — raised when the bounded queue is full.

Pair with :meth:`~repro.core.api.IncrementalTrainer.from_checkpoint` to
stand a server up from a saved store + compiled plan without re-running
capture (see ``examples/deletion_server.py``).
"""

from .policy import AdmissionPolicy
from .server import BackpressureError, DeletionServer, ServedOutcome
from .stats import ServingStats, StatsRecorder

__all__ = [
    "AdmissionPolicy",
    "BackpressureError",
    "DeletionServer",
    "ServedOutcome",
    "ServingStats",
    "StatsRecorder",
]
