"""Cross-process sharded serving: consistent-hash routing over shard fleets.

One process's BLAS pool is the throughput ceiling of a single
:class:`~repro.serving.FleetServer`.  The compiled
:class:`~repro.core.replay_plan.ReplayPlan` is read-only at serving time
and memory-mapped straight out of its archive, so the natural scale-out
is *processes*: N shard workers each run their own fleet over a
shard-local registry, all mapping the same plan bytes (``MAP_SHARED``
read-only — one physical copy fleet-wide), and a front-end routes each
model id to its home shard.

:class:`ShardRouter` is that front-end:

* **placement** — model ids are consistent-hashed (md5 ring with virtual
  nodes) across shard *slots*, so adding or losing a shard re-homes only
  ``~1/N`` of the models and two routers with the same slot count agree
  on placement without coordination;
* **framing** — requests travel a duplex pipe per shard
  (:mod:`repro.serving.shard_worker` documents the protocol); replies
  resolve :class:`concurrent.futures.Future`\\ s by request id, out of
  order;
* **failover** — a dead shard fails *only its own* in-flight futures
  (typed :class:`~repro.serving.errors.ShardUnavailableError`); later
  submits walk the ring past the dead slot to the next live shard, which
  lazily re-registers the re-homed models.  The PR-6
  :class:`~repro.serving.RetryPolicy` machinery is reused at shard
  granularity: ``quarantine_after`` consecutive deaths open the slot's
  breaker, ``probe_interval_seconds`` paces half-open restart probes,
  and (with ``auto_restart=True``) earlier deaths restart immediately;
* **warm standby** — an optional spare worker outside the ring pre-maps
  every registered plan through its own
  :class:`~repro.core.serialization.PlanCache`; when a slot dies the
  standby is *promoted* into it, inheriting hot mappings instead of
  cold-starting;
* **stats** — shard fleets export raw-sample
  :class:`~repro.serving.stats.StatsFrame`\\ s which the router merges
  *before* summarizing, so a fleet-wide p99 is the true order statistic
  of the pooled requests, never an average of per-shard percentiles.

The router serves stateless counterfactual traffic only (no
``commit_mode``): answers depend on nothing but the checkpoint epoch, so
re-homing a model across shards can never change its answers.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import threading
from bisect import bisect_right
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..core.serialization import read_checkpoint_metadata
from .clock import MONOTONIC_CLOCK, Clock
from .errors import ServerClosedError, ShardUnavailableError
from .fleet import RetryPolicy
from .policy import AdmissionPolicy
from .shard_worker import shard_main
from .stats import ServingStats, StatsFrame

__all__ = ["ShardRouter", "hash_ring"]

_RING_REPLICAS = 64


def hash_ring(slots: list[str], replicas: int = _RING_REPLICAS):
    """The sorted (point, slot) ring for consistent hashing.

    md5 keeps placement stable across processes and Python versions
    (``hash()`` is salted per process); ``replicas`` virtual nodes per
    slot smooth the load split to within a few percent.
    """
    points = []
    for slot in slots:
        for replica in range(replicas):
            digest = hashlib.md5(f"{slot}#{replica}".encode()).digest()
            points.append((int.from_bytes(digest[:8], "big"), slot))
    points.sort()
    return points


def _ring_walk(ring, model_id: str):
    """Slots in preference order for ``model_id`` (home first)."""
    point = int.from_bytes(
        hashlib.md5(model_id.encode()).digest()[:8], "big"
    )
    start = bisect_right(ring, (point, ""))
    seen: list[str] = []
    for index in range(len(ring)):
        slot = ring[(start + index) % len(ring)][1]
        if slot not in seen:
            seen.append(slot)
    return seen


@dataclass
class _Registration:
    """Everything a shard needs to host one model."""

    model_id: str
    checkpoint: str
    features: object
    labels: object
    load_kwargs: dict
    plan_path: str | None


@dataclass
class _Slot:
    """One ring position and the worker process currently behind it."""

    name: str
    process: object = None
    conn: object = None
    send_lock: threading.Lock = field(default_factory=threading.Lock)
    alive: bool = False
    registered: set = field(default_factory=set)  # guarded-by: router _lock
    inflight: set = field(default_factory=set)  # guarded-by: router _lock
    # Shard-granularity circuit breaker (the PR-6 RetryPolicy semantics):
    failures: int = 0  # guarded-by: router _lock
    retry_at: float | None = None  # guarded-by: router _lock


class ShardRouter:
    """Consistent-hash front-end over N shard worker processes.

    Parameters
    ----------
    n_shards:
        Ring slot count.  Each slot runs one worker process hosting a
        shard-local :class:`~repro.serving.FleetServer`.
    policy / method / n_workers / retry:
        Forwarded to every shard's fleet (``retry`` also supplies the
        *shard*-granularity breaker thresholds: ``quarantine_after``
        deaths open a slot's breaker, ``probe_interval_seconds`` paces
        restart probes).
    auto_restart:
        Restart a dead shard immediately while its breaker is closed
        (manual :meth:`restart_shard` always works).
    standby:
        Keep one warm spare worker outside the ring, pre-mapping every
        registered plan; a dying slot promotes it instead of cold-
        starting a replacement.
    prefault_plans:
        Ask workers to touch every mapped plan byte at registration so
        first requests fault nothing in.
    mp_context:
        A ``multiprocessing`` context or start-method name.  Defaults to
        ``fork`` where available (cheap spawns; the plan mapping is
        re-established per process either way).
    clock:
        Injectable time source for breaker deadlines (tests drive it).
    """

    def __init__(
        self,
        n_shards: int = 2,
        policy: AdmissionPolicy | None = None,
        method: str | None = "priu",
        n_workers: int = 1,
        retry: RetryPolicy | None = None,
        auto_restart: bool = False,
        standby: bool = False,
        prefault_plans: bool = False,
        max_resident: int | None = None,
        max_plan_bytes: int | None = None,
        mp_context=None,
        clock: Clock | None = None,
        _shard_options: dict | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards
        self.retry = retry if retry is not None else RetryPolicy()
        self.auto_restart = bool(auto_restart)
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else None
        self._mp = (
            multiprocessing.get_context(mp_context)
            if isinstance(mp_context, (str, type(None)))
            else mp_context
        )
        self._options = {
            "policy": policy,
            "method": method,
            "n_workers": n_workers,
            "retry": retry,
            "max_resident": max_resident,
            "max_plan_bytes": max_plan_bytes,
            "prefault_plans": prefault_plans,
        }
        self._options.update(_shard_options or {})
        self._prefault = bool(prefault_plans)
        self._lock = threading.RLock()
        self._req_ids = itertools.count(1)
        self._pending: dict[int, Future] = {}  # guarded-by: _lock
        self._registrations: dict[str, _Registration] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._slots = [_Slot(name=f"shard-{i}") for i in range(n_shards)]
        self._ring = hash_ring([slot.name for slot in self._slots])
        self._by_name = {slot.name: slot for slot in self._slots}
        self._standby: _Slot | None = (
            _Slot(name="standby") if standby else None
        )
        for slot in self._slots:
            self._spawn(slot)
        if self._standby is not None:
            self._spawn(self._standby)

    # ------------------------------------------------------------ lifecycle
    def _spawn(self, slot: _Slot) -> None:
        """Start (or replace) the worker process behind ``slot``."""
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=shard_main,
            args=(child_conn, slot.name, self._options),
            name=f"repro-{slot.name}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        with self._lock:
            slot.process = process
            slot.conn = parent_conn
            slot.alive = True
            slot.registered = set()
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(slot, parent_conn),
            name=f"router-recv-{slot.name}",
            daemon=True,
        )
        receiver.start()

    def close(self, wait: bool = True) -> None:
        """Shut every worker down; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slots = list(self._slots)
            if self._standby is not None:
                slots.append(self._standby)
        for slot in slots:
            if slot.alive and slot.conn is not None:
                try:
                    self._post(slot, ("shutdown", next(self._req_ids)))
                except (OSError, ValueError, BrokenPipeError, AttributeError):
                    pass
        for slot in slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=10 if wait else 0.1)
            if process.is_alive():
                process.kill()
                process.join(timeout=5)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------- plumbing
    def _post(self, slot: _Slot, message: tuple) -> None:
        """Frame one message onto a slot's pipe (never under ``_lock``:
        a full pipe blocks until the worker drains, and the worker can
        only drain if our receiver thread — which needs the lock — keeps
        consuming replies)."""
        with slot.send_lock:
            slot.conn.send(message)

    def _call(self, slot: _Slot, kind: str, *payload) -> Future:
        """Post a request expecting exactly one correlated reply."""
        req_id = next(self._req_ids)
        future: Future = Future()
        with self._lock:
            if not slot.alive or slot.conn is None:
                raise ShardUnavailableError(slot.name)
            conn = slot.conn
            self._pending[req_id] = future
            slot.inflight.add(req_id)
        try:
            with slot.send_lock:
                conn.send((kind, req_id, *payload))
        except (OSError, ValueError, BrokenPipeError):
            with self._lock:
                self._pending.pop(req_id, None)
                slot.inflight.discard(req_id)
            self._conn_down(slot, conn)
            raise ShardUnavailableError(slot.name, "pipe write failed")
        return future

    def _receive_loop(self, slot: _Slot, conn) -> None:
        """Drain one worker connection until EOF; resolve futures by id."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "hello":
                continue
            req_id, payload = message[1], message[2]
            with self._lock:
                future = self._pending.pop(req_id, None)
                owner = self._owner_of(conn)
                if owner is not None:
                    owner.inflight.discard(req_id)
                    if kind == "ok":
                        # A served reply is the breaker's health
                        # evidence (a crash-looping shard that only ever
                        # says hello keeps its failure streak and
                        # quarantines).
                        owner.failures = 0
                        owner.retry_at = None
            if future is None:
                continue
            if kind == "ok":
                future.set_result(payload)
            else:
                future.set_exception(payload)
        self._conn_down(slot, conn)

    def _owner_of(self, conn) -> _Slot | None:  # caller-holds: _lock
        if conn is None:
            return None
        for slot in self._slots:
            if slot.conn is conn:
                return slot
        if self._standby is not None and self._standby.conn is conn:
            return self._standby
        return None

    # ------------------------------------------------------------- failover
    def _conn_down(self, slot: _Slot, conn) -> None:
        """One worker connection died; fail its futures, maybe recover.

        Idempotent per connection generation: the first caller (receiver
        EOF, failed send, or an explicit restart) nulls ``owner.conn``,
        so later callers for the same dead pipe find no owner and
        return.  Promotion means ``slot`` and the connection's *owner*
        can differ — resolution always goes through :meth:`_owner_of`.
        """
        with self._lock:
            owner = self._owner_of(conn)
            if owner is None:
                return  # a stale generation; the slot already moved on
            owner.alive = False
            owner.conn = None
            owner.registered = set()
            failed = [
                self._pending.pop(req_id)
                for req_id in sorted(owner.inflight)
                if req_id in self._pending
            ]
            owner.inflight = set()
            closing = self._closed
            if not closing:
                owner.failures += 1
                if owner.failures >= self.retry.quarantine_after:
                    owner.retry_at = (
                        self._clock.now() + self.retry.probe_interval_seconds
                    )
        error = ShardUnavailableError(owner.name, "shard process died")
        for future in failed:
            future.set_exception(error)
        if closing or owner is self._standby:
            return
        if self._promote_standby(owner):
            return
        if self.auto_restart and owner.failures < self.retry.quarantine_after:
            self._spawn(owner)

    def _promote_standby(self, slot: _Slot) -> bool:
        """Move the warm standby's process into a dead slot."""
        with self._lock:
            standby = self._standby
            if standby is None or not standby.alive:
                return False
            self._standby = None
            slot.process = standby.process
            slot.conn = standby.conn
            slot.send_lock = standby.send_lock
            slot.alive = True
            slot.registered = set()
            slot.failures = 0
            slot.retry_at = None
        return True

    def restart_shard(self, name: str) -> None:
        """Respawn one slot's worker (re-homed models re-register lazily)."""
        slot = self._by_name.get(name)
        if slot is None:
            raise ValueError(f"unknown shard {name!r}")
        with self._lock:
            if self._closed:
                raise ServerClosedError("router is closed")
            old_conn = slot.conn
        old = slot.process
        if old is not None and old.is_alive():
            old.kill()
            old.join(timeout=5)
        # Settle the dead generation synchronously (the receiver's EOF
        # path races us; _conn_down is idempotent per connection) — it
        # may itself recover the slot via promotion or auto-restart.
        self._conn_down(slot, old_conn)
        with self._lock:
            slot.failures = 0
            slot.retry_at = None
            needs_spawn = not slot.alive
        if needs_spawn:
            self._spawn(slot)

    def kill_shard(self, name: str) -> None:
        """Hard-kill one slot's worker (SIGKILL) — the chaos-suite fault."""
        slot = self._by_name.get(name)
        if slot is None:
            raise ValueError(f"unknown shard {name!r}")
        process = slot.process
        if process is not None and process.is_alive():
            process.kill()
            process.join(timeout=5)

    # -------------------------------------------------------------- routing
    def shard_for(self, model_id: str) -> str:
        """The slot currently answering for ``model_id`` (live walk)."""
        return self._route(model_id).name

    def _route(self, model_id: str) -> _Slot:
        now = self._clock.now()
        probe: _Slot | None = None
        with self._lock:
            for name in _ring_walk(self._ring, model_id):
                slot = self._by_name[name]
                if slot.alive:
                    return slot
                if (
                    slot.retry_at is not None
                    and slot.retry_at <= now
                    and probe is None
                ):
                    probe = slot
        if probe is not None and self.auto_restart:
            # Half-open probe: one restart attempt per probe interval.
            with self._lock:
                probe.retry_at = now + self.retry.probe_interval_seconds
            self._spawn(probe)
            return probe
        raise ShardUnavailableError(
            "all", f"no live shard for model {model_id!r}"
        )

    # ---------------------------------------------------------- public API
    def register(
        self,
        model_id: str,
        checkpoint,
        features,
        labels,
        **load_kwargs,
    ):
        """Name a servable checkpoint; returns its metadata.

        Validation (path exists, archive readable) happens here in the
        router, synchronously; the actual load happens lazily on the
        model's home shard at first traffic.  Live-trainer registrations
        are not supported — a trainer cannot cross a process boundary —
        and neither is ``commit_mode`` (stateless counterfactual answers
        are what make shard re-homing safe).
        """
        if "commit_mode" in load_kwargs:
            raise ValueError(
                "ShardRouter serves stateless counterfactuals only; "
                "commit_mode is not supported across shards"
            )
        metadata = read_checkpoint_metadata(checkpoint)
        registration = _Registration(
            model_id=model_id,
            checkpoint=str(checkpoint),
            features=features,
            labels=labels,
            load_kwargs=dict(load_kwargs),
            plan_path=(
                None if metadata.plan_path is None else str(metadata.plan_path)
            ),
        )
        with self._lock:
            if self._closed:
                raise ServerClosedError("router is closed")
            if model_id in self._registrations:
                raise ValueError(f"model id already registered: {model_id!r}")
            self._registrations[model_id] = registration
            standby = self._standby
        if standby is not None and registration.plan_path is not None:
            # The warm spare pre-maps every plan it might inherit.
            try:
                self._call(
                    standby, "warm", registration.plan_path, self._prefault
                )
            except ShardUnavailableError:
                pass
        return metadata

    def model_ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._registrations))

    def submit(self, model_id: str, indices, lane: str | None = None) -> Future:
        """Route one removal set to its home shard; future of
        :class:`~repro.serving.ServedOutcome`.

        Unknown model ids fail synchronously.  Everything else resolves
        through the returned future: the shard fleet's own typed errors
        pass through verbatim, and a shard dying with this request in
        flight fails it with
        :class:`~repro.serving.errors.ShardUnavailableError` (only that
        shard's futures — survivors elsewhere are untouched).
        """
        with self._lock:
            if self._closed:
                raise ServerClosedError("router is closed")
            registration = self._registrations.get(model_id)
        if registration is None:
            raise ValueError(f"unknown model id {model_id!r}")
        indices = np.asarray(indices, dtype=np.int64)
        slot = self._route(model_id)
        with self._lock:
            needs_register = model_id not in slot.registered
            if needs_register:
                slot.registered.add(model_id)
        if needs_register:
            # Fire-and-track: pipe FIFO ordering lands the registration
            # before the submit; a failed registration surfaces on the
            # submit future (unknown model on that shard).
            try:
                self._call(
                    slot,
                    "register",
                    registration.model_id,
                    registration.checkpoint,
                    registration.features,
                    registration.labels,
                    registration.load_kwargs,
                )
            except ShardUnavailableError:
                with self._lock:
                    slot.registered.discard(model_id)
                raise
        return self._call(slot, "submit", model_id, indices, lane)

    def submit_many(self, model_id: str, index_sets, **kwargs) -> list[Future]:
        return [self.submit(model_id, ids, **kwargs) for ids in index_sets]

    def flush(self, timeout: float | None = 60.0) -> bool:
        """Wait until every live shard has drained its queues."""
        with self._lock:
            slots = [slot for slot in self._slots if slot.alive]
        futures = []
        for slot in slots:
            try:
                futures.append(self._call(slot, "flush", timeout))
            except ShardUnavailableError:
                continue
        done = True
        for future in futures:
            try:
                done = bool(future.result(timeout=timeout)) and done
            except Exception:
                done = False
        return done

    def stats_frame(self, timeout: float = 30.0) -> StatsFrame:
        """The merged raw accounting of every live shard."""
        with self._lock:
            slots = [slot for slot in self._slots if slot.alive]
        futures = []
        for slot in slots:
            try:
                futures.append(self._call(slot, "stats"))
            except ShardUnavailableError:
                continue
        frames = []
        for future in futures:
            try:
                frames.append(future.result(timeout=timeout))
            except Exception:
                continue
        return StatsFrame.merged(frames)

    def stats(self, timeout: float = 30.0) -> ServingStats:
        """Fleet-wide counters/percentiles over the *pooled* samples."""
        return self.stats_frame(timeout=timeout).summarize()

    def describe(self) -> dict:
        """Placement and health of every slot (plus the standby)."""
        now = self._clock.now()
        with self._lock:
            slots = {
                slot.name: {
                    "alive": slot.alive,
                    "pid": None if slot.process is None else slot.process.pid,
                    "models": sorted(slot.registered),
                    "failures": slot.failures,
                    "quarantined": (
                        slot.retry_at is not None and now < slot.retry_at
                    ),
                }
                for slot in self._slots
            }
            placement = {
                model_id: None for model_id in sorted(self._registrations)
            }
            standby = self._standby
        for model_id in placement:
            try:
                placement[model_id] = self.shard_for(model_id)
            except ShardUnavailableError:
                placement[model_id] = None
        return {
            "shards": slots,
            "placement": placement,
            "standby": None if standby is None else standby.name,
        }
