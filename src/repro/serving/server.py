"""The deletion server: a request queue over the batched update engine.

:class:`DeletionServer` turns :meth:`repro.IncrementalTrainer.remove_many`
— a K-requests-in-hand batch API — into something deletion traffic can
actually hit: callers :meth:`~DeletionServer.submit` one removal set at a
time and get a :class:`concurrent.futures.Future` back immediately.  A
single worker thread coalesces queued requests under the
:class:`~repro.serving.policy.AdmissionPolicy` (latency budget ×
max-batch-size), dispatches each batch through one ``remove_many`` call,
and resolves every future with a :class:`ServedOutcome` carrying the
updated weights plus that request's queueing/service timings.

Backpressure is a bounded queue: once ``max_pending`` requests wait,
further submissions raise :class:`BackpressureError` (or block, caller's
choice) instead of growing memory without bound.  Request validation
happens at submit time, so a malformed removal set fails its own caller
and never poisons a batch; empty sets resolve inline as no-ops (or are
rejected, per :class:`~repro.serving.policy.AdmissionPolicy.on_empty`).

By default every answer is a stateless counterfactual against the
original training set.  ``commit_mode=True`` turns the server into a
deletion *pipeline*: each batch runs ``remove_many(..., commit=True)``,
so admitted requests are applied cumulatively in admission order and
the trainer's store, compiled plan and baseline weights adopt the
post-batch state (see ``docs/architecture.md``, "The commit path").

Typical use::

    with DeletionServer(trainer, AdmissionPolicy(max_batch=32)) as server:
        futures = [server.submit(ids) for ids in request_stream]
        outcomes = [f.result() for f in futures]

The server is deliberately single-worker: one batched replay already
saturates the BLAS threads, so a second concurrent ``remove_many`` would
fight it for cores rather than add throughput.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..core.provenance_store import (
    normalize_removed_indices,
    remap_surviving_ids,
)
from .policy import AdmissionPolicy
from .stats import ServingStats, StatsRecorder

_SHUTDOWN = object()


class BackpressureError(RuntimeError):
    """The server's admission queue is full; retry later or block."""


@dataclass
class ServedOutcome:
    """One answered deletion request, with its queueing economics.

    ``seconds`` is the request's amortized share of its batch's
    ``remove_many`` wall-clock (matching
    :class:`~repro.core.api.UpdateOutcome`); ``latency_seconds`` is what
    the caller actually experienced, enqueue to answer.
    """

    weights: np.ndarray
    method: str
    removed: np.ndarray
    seconds: float
    wait_seconds: float
    latency_seconds: float
    batch_size: int
    # True when the server runs in commit mode and this answer's removals
    # (plus everything admitted before it) are now folded into the model.
    committed: bool = False


@dataclass
class _Request:
    indices: np.ndarray
    future: Future
    enqueued_at: float
    # Commit mode: the store version whose id space the submitted ids are
    # expressed in — requests are translated forward through every commit
    # with version_before >= this value at dispatch time.  ``store_version``
    # advances as the request is remapped; ``admitted_version`` stays fixed
    # for in-flight accounting (commit-history pruning).
    store_version: int = -1
    admitted_version: int = -1


class DeletionServer:
    """Admission-batched facade serving deletion requests from a queue.

    Parameters
    ----------
    trainer:
        A fitted :class:`~repro.core.api.IncrementalTrainer` (via
        :meth:`~repro.core.api.IncrementalTrainer.fit` or
        :meth:`~repro.core.api.IncrementalTrainer.from_checkpoint`).
    policy:
        Coalescing/backpressure knobs; defaults to
        :class:`~repro.serving.policy.AdmissionPolicy()`.
    method:
        Forwarded to ``remove_many`` (``None`` = the trainer's default,
        ``"priu"``, ``"priu-opt"`` or ``"priu-seq"``).
    autostart:
        Start the worker thread immediately.  Benchmarks pass ``False``,
        pre-load the queue, then call :meth:`start` for a deterministic
        single-batch dispatch.
    commit_mode:
        Serve *committed* deletions: each dispatched batch runs
        ``remove_many(..., commit=True)``, so requests are applied
        cumulatively in admission order (a request's answer excludes its
        own samples plus everything admitted before it) and the model,
        store and plan adopt the post-batch state.  Removal ids submitted
        after a commit are interpreted — and validated — in the
        *post-commit* id space, which shrinks with every committed batch
        (``trainer.n_samples`` is the live bound).  Requests still queued
        when an earlier batch commits are translated forward through that
        commit automatically: ids it already removed drop out (those
        samples are gone) and survivors shift down, so an id always
        denotes the sample the submitter addressed; ``ServedOutcome.\
removed`` reports the translated set, in the id space its batch executed
        in.  The trainer must not be queried concurrently from outside
        the server while commits are in flight.
    """

    def __init__(
        self,
        trainer,
        policy: AdmissionPolicy | None = None,
        method: str | None = None,
        autostart: bool = True,
        commit_mode: bool = False,
    ) -> None:
        trainer._require_fit()
        if method not in (None, "priu", "priu-opt", "priu-seq"):
            raise ValueError(
                "method must be None, 'priu', 'priu-opt' or 'priu-seq'"
            )
        self.trainer = trainer
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.method = method
        self.commit_mode = bool(commit_mode)
        # One (version_before, removed union) entry per committed batch,
        # the union in the id space the batch executed in.  A queued
        # request tagged with store version v is remapped through every
        # entry with version_before >= v before dispatch, so an id always
        # denotes the sample the submitter saw, not whatever later shifted
        # into that slot.  Entries older than every in-flight request's
        # admitted version are pruned at dispatch (tracked in
        # ``_inflight_versions`` — queue order alone is not enough, since a
        # submitter can block on backpressure and enqueue late).
        self._commit_history: list[tuple[int, np.ndarray]] = []
        self._inflight_versions: dict[int, int] = {}
        # Capacity is enforced by the semaphore, not the queue: submitters
        # block on a slot *outside* any lock, the enqueue itself is always
        # non-blocking, and close() can always append its sentinel.  The
        # worker releases a slot for every request it takes off the queue.
        self._queue: queue.Queue = queue.Queue()
        self._slots = threading.BoundedSemaphore(self.policy.max_pending)
        self._stats = StatsRecorder()
        self._state_lock = threading.Condition()
        # Serializes enqueueing against shutdown: every accepted request is
        # enqueued while holding this lock, and close() flips _closed under
        # it before appending the sentinel — so the sentinel is provably
        # the last item and no request can slip in behind it and hang.
        self._submit_lock = threading.Lock()
        self._inflight = 0
        self._closed = False
        self._started = False
        self._worker = threading.Thread(
            target=self._serve_loop, name="deletion-server", daemon=True
        )
        if autostart:
            self.start()

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "DeletionServer":
        """Start the worker thread (idempotent)."""
        with self._state_lock:
            if not self._started:
                self._started = True
                self._worker.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain the queue, then stop the worker."""
        with self._submit_lock:
            already_closed = self._closed
            self._closed = True
        if already_closed:
            if wait and self._worker.is_alive():
                self._worker.join()
            return
        # Ensure queued work drains even if the caller never start()ed.
        self.start()
        self._queue.put(_SHUTDOWN)
        if wait:
            self._worker.join()

    def __enter__(self) -> "DeletionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # On a clean exit, drain the queue and join the worker.  While an
        # exception is unwinding, don't block on outstanding work (the
        # futures' owners may be the very frames being torn down): stop
        # accepting and let the daemon worker finish in the background.
        self.close(wait=exc_type is None)

    # ---------------------------------------------------------- submission
    def submit(
        self, indices, block: bool = True, timeout: float | None = None
    ) -> Future:
        """Enqueue one removal set; returns a future of :class:`ServedOutcome`.

        Validation (bounds, not-everything) happens here, synchronously, so
        a bad request raises in its caller instead of failing a batch.
        When the queue is at ``max_pending``: ``block=True`` waits (up to
        ``timeout``), ``block=False`` raises :class:`BackpressureError`
        immediately.
        """
        removed = normalize_removed_indices(indices)
        # Consistent (version, n_samples) snapshot via the store's commit
        # seqlock: odd means a compact() is mutating mid-read, and a seq
        # change across the reads means one completed — retry either way.
        # The ids are then validated against exactly the id space they are
        # tagged with, even if the worker commits a batch mid-submit.
        store = self.trainer.store
        while True:
            seq = store._commit_seq
            if seq % 2 == 0:
                store_version = store._version
                n_samples = store.n_samples
                if store._commit_seq == seq:
                    break
        if removed.size == 0:
            return self._resolve_empty()
        if removed[0] < 0 or removed[-1] >= n_samples:
            raise ValueError(
                f"removal ids must lie in [0, {n_samples}); "
                f"got range [{removed[0]}, {removed[-1]}]"
            )
        if removed.size >= n_samples:
            raise ValueError("cannot delete every training sample")
        request = _Request(
            indices=removed,
            future=Future(),
            enqueued_at=time.perf_counter(),
            store_version=store_version,
            admitted_version=store_version,
        )
        # Backpressure: wait for a slot without holding any lock, so a
        # blocked submitter can never stall close() or other submitters.
        if block:
            got_slot = self._slots.acquire(timeout=timeout)
        else:
            got_slot = self._slots.acquire(blocking=False)
        if not got_slot:
            self._stats.record_rejected()
            raise BackpressureError(
                f"admission queue is full ({self.policy.max_pending} pending)"
            )
        # The check-then-enqueue must be atomic w.r.t. close(), else a
        # request could land behind the shutdown sentinel and never
        # resolve.  Nothing inside this lock blocks.
        with self._submit_lock:
            if self._closed:
                self._slots.release()
                raise RuntimeError(
                    "cannot submit to a closed DeletionServer"
                )
            with self._state_lock:
                self._inflight += 1
                self._inflight_versions[request.admitted_version] = (
                    self._inflight_versions.get(request.admitted_version, 0)
                    + 1
                )
            self._stats.record_submitted()
            self._queue.put_nowait(request)
        return request.future

    def _resolve_empty(self) -> Future:
        """Answer an empty removal set inline: a no-op that joins no batch.

        An empty set used to pass validation and ride a batch through
        ``remove_many`` — wasting an admission slot and, in commit mode,
        committing nothing while still counting as an applied request.
        Policy ``on_empty="reject"`` turns this into a submit-time error.
        """
        if self.policy.on_empty == "reject":
            raise ValueError(
                "empty removal set (AdmissionPolicy(on_empty='resolve') "
                "answers these with a no-op instead)"
            )
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed DeletionServer")
            self._stats.record_noop()
            weights = self.trainer.weights_.copy()
        future: Future = Future()
        future.set_result(
            ServedOutcome(
                weights=weights,
                method="noop",
                removed=np.empty(0, dtype=np.int64),
                seconds=0.0,
                wait_seconds=0.0,
                latency_seconds=0.0,
                batch_size=0,
                committed=False,
            )
        )
        return future

    def submit_many(self, index_sets, **kwargs) -> list[Future]:
        """Enqueue several removal sets (one future each)."""
        return [self.submit(indices, **kwargs) for indices in index_sets]

    def resolve(self, indices, timeout: float | None = None) -> ServedOutcome:
        """Blocking convenience: submit one request and wait for its answer."""
        return self.submit(indices).result(timeout=timeout)

    # ----------------------------------------------------------- observers
    def flush(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has been answered or failed."""
        with self._state_lock:
            if self._inflight and not self._started:
                raise RuntimeError(
                    "flush() would wait forever: requests are queued but the "
                    "worker was never started (autostart=False)"
                )
            return self._state_lock.wait_for(
                lambda: self._inflight == 0, timeout
            )

    def stats(self) -> ServingStats:
        """Lifetime counters and wait/service/latency distributions."""
        return self._stats.snapshot()

    @property
    def pending(self) -> int:
        """Requests submitted but not yet answered."""
        with self._state_lock:
            return self._inflight

    # -------------------------------------------------------------- worker
    def _finish(self, requests: list[_Request]) -> None:
        with self._state_lock:
            self._inflight -= len(requests)
            for request in requests:
                version = request.admitted_version
                remaining = self._inflight_versions.get(version, 0) - 1
                if remaining > 0:
                    self._inflight_versions[version] = remaining
                else:
                    self._inflight_versions.pop(version, None)
            if self._inflight == 0:
                self._state_lock.notify_all()

    def _remap_across_commits(self, live: list[_Request]) -> None:
        """Translate queued requests into the current (post-commit) id space.

        Entries older than every in-flight request's admitted version are
        pruned first — in-flight, not just this batch, because a submitter
        blocked on backpressure can hold an old version tag and enqueue
        behind newer requests.
        """
        with self._state_lock:
            oldest = min(self._inflight_versions, default=None)
        with self._submit_lock:
            if oldest is not None:
                self._commit_history = [
                    entry
                    for entry in self._commit_history
                    if entry[0] >= oldest
                ]
            history = list(self._commit_history)
        current = self.trainer.store._version
        for request in live:
            ids = request.indices
            for version_before, committed in history:
                if version_before < request.store_version:
                    continue
                if committed.size == 0 or ids.size == 0:
                    continue
                position = np.searchsorted(committed, ids)
                position = np.minimum(position, committed.size - 1)
                already_removed = committed[position] == ids
                ids = remap_surviving_ids(ids[~already_removed], committed)
            request.indices = ids
            request.store_version = current

    def _serve_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            self._slots.release()
            batch, saw_shutdown = self._collect(item)
            if batch:
                self._dispatch(batch)
            if saw_shutdown:
                break

    def _collect(self, first: _Request) -> tuple[list[_Request], bool]:
        """Coalesce queued requests behind ``first`` under the policy."""
        batch = [first]
        while True:
            oldest_wait = time.perf_counter() - first.enqueued_at
            if self.policy.should_dispatch(len(batch), oldest_wait):
                break
            try:
                item = self._queue.get(
                    timeout=self.policy.remaining_budget(oldest_wait)
                )
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            self._slots.release()
            batch.append(item)
        # Budget spent (or batch full): still sweep up whatever is already
        # sitting in the queue, up to the cap — free batching, no waiting.
        while len(batch) < self.policy.max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            self._slots.release()
            batch.append(item)
        return batch, False

    def _dispatch(self, batch: list[_Request]) -> None:
        # Honor cancellations that happened while the request was queued.
        live: list[_Request] = []
        cancelled: list[_Request] = []
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                live.append(request)
            else:
                cancelled.append(request)
        if cancelled:
            self._stats.record_cancelled(len(cancelled))
            self._finish(cancelled)
        if not live:
            return
        if self.commit_mode:
            # Earlier batches may have committed (and re-packed the id
            # space) while these requests sat in the queue.  Translate each
            # request forward through the commits it missed: ids already
            # committed drop out (those samples are gone — which is what
            # the caller asked for), survivors shift down.  Without this, a
            # queued id would silently denote whatever sample later moved
            # into its slot.
            self._remap_across_commits(live)
        version_before = self.trainer.store._version
        dispatched_at = time.perf_counter()
        try:
            outcomes = self.trainer.remove_many(
                [r.indices for r in live],
                method=self.method,
                commit=self.commit_mode,
            )
        except Exception as exc:  # systemic: fail every request in the batch
            for request in live:
                request.future.set_exception(exc)
            self._stats.record_failed(len(live))
            self._finish(live)
            return
        if self.commit_mode:
            union = live[0].indices
            for request in live[1:]:
                union = np.union1d(union, request.indices)
            with self._submit_lock:
                self._commit_history.append((version_before, union))
        answered_at = time.perf_counter()
        service = answered_at - dispatched_at
        waits, services, latencies = [], [], []
        for request, outcome in zip(live, outcomes):
            wait = dispatched_at - request.enqueued_at
            latency = answered_at - request.enqueued_at
            request.future.set_result(
                ServedOutcome(
                    weights=outcome.weights,
                    method=outcome.method,
                    removed=outcome.removed,
                    seconds=outcome.seconds,
                    wait_seconds=wait,
                    latency_seconds=latency,
                    batch_size=len(live),
                    committed=self.commit_mode,
                )
            )
            waits.append(wait)
            # Stats record the batch's actual dispatch->answer wall-clock
            # (the same for every member); the per-request *amortized*
            # share lives on ServedOutcome.seconds.
            services.append(service)
            latencies.append(latency)
        self._stats.record_batch(waits, services, latencies)
        self._finish(live)
