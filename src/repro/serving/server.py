"""The deletion server: a request queue over the batched update engine.

:class:`DeletionServer` turns :meth:`repro.IncrementalTrainer.remove_many`
— a K-requests-in-hand batch API — into something deletion traffic can
actually hit: callers :meth:`~DeletionServer.submit` one removal set at a
time and get a :class:`concurrent.futures.Future` back immediately.  A
single worker thread coalesces queued requests under the
:class:`~repro.serving.policy.AdmissionPolicy` (latency budget ×
max-batch-size), dispatches each batch through one ``remove_many`` call,
and resolves every future with a :class:`ServedOutcome` carrying the
updated weights plus that request's queueing/service timings.

Requests carry an SLA *lane* (:class:`~repro.serving.policy.Lane`):
queued requests dispatch in ``(lane priority, submission order)`` order
and a batch's coalescing budget is the minimum of its members' lane
delays, so a zero-delay ``deadline`` request is always in the next batch
out the door and never waits on another lane's coalescing delay.

Backpressure is a bounded queue: once ``max_pending`` requests wait,
further submissions raise :class:`BackpressureError` (or block, caller's
choice) instead of growing memory without bound.  Request validation
happens at submit time, so a malformed removal set fails its own caller
and never poisons a batch; empty sets resolve inline as no-ops (or are
rejected, per :class:`~repro.serving.policy.AdmissionPolicy.on_empty`).

By default every answer is a stateless counterfactual against the
original training set.  ``commit_mode=True`` turns the server into a
deletion *pipeline*: each batch runs ``remove_many(..., commit=True)``,
so admitted requests are applied cumulatively in admission order and
the trainer's store, compiled plan and baseline weights adopt the
post-batch state (see ``docs/architecture.md``, "The commit path").

All deadline math runs on an injectable monotonic
:class:`~repro.serving.clock.Clock`; tests drive the server with a fake
clock (``tests/serving/harness.py``) so timing assertions are exact and
nothing sleeps.  Several servers can share one clock.

Typical use::

    with DeletionServer(trainer, AdmissionPolicy(max_batch=32)) as server:
        futures = [server.submit(ids) for ids in request_stream]
        outcomes = [f.result() for f in futures]

The server is deliberately single-worker: one batched replay already
saturates the BLAS threads, so a second concurrent ``remove_many`` would
fight it for cores rather than add throughput.  To front *several*
models with a shared (bounded) pool, see
:class:`~repro.serving.fleet.FleetServer`.
"""

from __future__ import annotations

import heapq
import itertools
import math
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..core.provenance_store import (
    normalize_removed_indices,
    remap_surviving_ids,
)
from ..testing.races import GuardedBy
from .clock import MONOTONIC_CLOCK, Clock
from .errors import (
    BackpressureError,
    ServerClosedError,
    ServerStateError,
    WorkerCrashedError,
)
from .policy import AdmissionPolicy, _PreemptionGuard
from .stats import ServingStats, StatsRecorder

_SHUTDOWN = object()


@dataclass
class ServedOutcome:
    """One answered deletion request, with its queueing economics.

    ``seconds`` is the request's amortized share of its batch's
    ``remove_many`` wall-clock (matching
    :class:`~repro.core.api.UpdateOutcome`); ``latency_seconds`` is what
    the caller actually experienced, enqueue to answer.  ``batch_seq`` /
    ``batch_rank`` locate the request in its server's dispatch history
    (batch number, position within the batch, both 0-based in admission
    order) — the stress harness uses them to prove ordering invariants.
    """

    weights: np.ndarray
    method: str
    removed: np.ndarray
    seconds: float
    wait_seconds: float
    latency_seconds: float
    batch_size: int
    # True when the server runs in commit mode and this answer's removals
    # (plus everything admitted before it) are now folded into the model.
    committed: bool = False
    lane: str | None = None
    model_id: str | None = None
    batch_seq: int = -1
    batch_rank: int = -1
    # The pre-dispatch CostEstimate of the whole batch's removal union
    # (``CostEstimate.as_dict()``), when the serving trainer carries a
    # cost model; every member of a batch shares one estimate.  None on
    # servers without a cost model.
    predicted: dict | None = None


@dataclass
class _Request:
    indices: np.ndarray
    future: Future
    enqueued_at: float
    lane: str
    lane_delay: float
    lane_priority: int
    seq: int = -1
    # Commit mode: the id space the submitted ids are expressed in, as a
    # ``(checkpoint epoch, store version)`` pair ordered lexicographically
    # — requests are translated forward through every commit recorded at a
    # key >= this one at dispatch time.  The epoch counts checkpoint
    # rewrites (``ModelRegistry.save_dirty``): a request validated against
    # a freshly written checkpoint must *not* be replayed through commits
    # that checkpoint already contains, even though store version numbers
    # restart when the model reloads.  Single-model servers never rewrite
    # a checkpoint mid-flight, so their epoch is always 0 and the pair
    # degenerates to the plain version comparison.  ``store_key`` advances
    # as the request is remapped; ``admitted_key`` stays fixed for
    # in-flight accounting (commit-history pruning).
    store_key: tuple = (0, -1)
    admitted_key: tuple = (0, -1)

    def entry(self) -> tuple:
        """Priority-queue entry: lanes first, submission order within."""
        return (self.lane_priority, self.seq, self)


def _consistent_store_snapshot(store) -> tuple[int, int]:
    """A consistent ``(version, n_samples)`` pair via the commit seqlock.

    Odd means a ``compact()`` is mutating mid-read, and a seq change
    across the reads means one completed — retry either way.
    """
    while True:
        seq = store._commit_seq
        if seq % 2 == 0:
            version = store._version
            n_samples = store.n_samples
            if store._commit_seq == seq:
                return version, n_samples


def _validate_removed(removed: np.ndarray, n_samples: int) -> None:
    """Submit-time bounds checks (``removed`` is normalized, sorted)."""
    if removed[0] < 0 or removed[-1] >= n_samples:
        raise ValueError(
            f"removal ids must lie in [0, {n_samples}); "
            f"got range [{removed[0]}, {removed[-1]}]"
        )
    if removed.size >= n_samples:
        raise ValueError("cannot delete every training sample")


class _CommitTracker:
    """Commit-mode id-space bookkeeping for one trainer.

    Keeps one ``(key_before, removed union)`` entry per committed batch —
    the key a ``(checkpoint epoch, store version)`` pair, the union in
    the id space the batch executed in.  A queued request tagged with
    store key k is remapped through every entry with key_before >= k
    before dispatch, so an id always denotes the sample the submitter
    saw, not whatever later shifted into that slot.  A request tagged
    ``(epoch, -inf)`` was validated against the archive that opened that
    epoch — or against a clean resident model, whose id space equals that
    archive's.  Every same-epoch commit necessarily postdates the
    archive (commits require residency, and the archive was written by
    the load or save that opened the epoch), so the tag sorts below them
    all and they all apply; commits already folded into an earlier
    epoch's archive never do.  Only a *dirty* resident model may tag
    with its in-memory store version: dirty models are unevictable, so
    that version cannot be reset by a reload while the request waits.
    Entries older than every in-flight request's admitted key are pruned
    at dispatch — in-flight, not just this batch, because a submitter
    can block on backpressure and enqueue late.

    Shared by :class:`DeletionServer` (one instance) and
    :class:`~repro.serving.fleet.FleetServer` (one per model).
    """

    # Declared via the descriptor (rather than `# guarded-by:` comments)
    # so debug mode (REPRO_DEBUG_GUARDS=1) also asserts the lock is held
    # on every access at runtime.
    _history = GuardedBy("_lock")
    _inflight_keys = GuardedBy("_lock")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._history: list[tuple[tuple, np.ndarray]] = []
        self._inflight_keys: dict[tuple, int] = {}

    def note_submitted(self, key: tuple) -> None:
        with self._lock:
            self._inflight_keys[key] = self._inflight_keys.get(key, 0) + 1

    def forget(self, key: tuple) -> None:
        """Drop one in-flight registration (a submit that never enqueued)."""
        with self._lock:
            remaining = self._inflight_keys.get(key, 0) - 1
            if remaining > 0:
                self._inflight_keys[key] = remaining
            else:
                self._inflight_keys.pop(key, None)

    def note_finished(self, requests: list[_Request]) -> None:
        for request in requests:
            self.forget(request.admitted_key)

    def note_committed(self, key_before: tuple, union: np.ndarray) -> None:
        with self._lock:
            self._history.append((key_before, union))

    def remap(self, live: list[_Request], current_key: tuple) -> None:
        """Translate queued requests into the current (post-commit) id space."""
        with self._lock:
            oldest = min(self._inflight_keys, default=None)
            if oldest is not None:
                self._history = [
                    entry for entry in self._history if entry[0] >= oldest
                ]
            history = list(self._history)
        for request in live:
            ids = request.indices
            for key_before, committed in history:
                if key_before < request.store_key:
                    continue
                if committed.size == 0 or ids.size == 0:
                    continue
                position = np.searchsorted(committed, ids)
                position = np.minimum(position, committed.size - 1)
                already_removed = committed[position] == ids
                ids = remap_surviving_ids(ids[~already_removed], committed)
            request.indices = ids
            request.store_key = current_key


def _serve_batch(
    trainer,
    live: list[_Request],
    *,
    method: str | None,
    commit_mode: bool,
    tracker: _CommitTracker,
    clock: Clock,
    stats: StatsRecorder,
    batch_seq: int,
    model_id: str | None = None,
    epoch: int = 0,
) -> None:
    """Run one admitted batch through ``remove_many`` and resolve its futures.

    ``live`` holds only requests whose futures are already in the running
    state (cancellation handled by the caller); every future is resolved
    exactly once — with a :class:`ServedOutcome` on success, with the
    dispatch exception on failure.  The caller performs its own in-flight
    accounting after this returns.  ``epoch`` is the trainer's checkpoint
    epoch (see :class:`_Request`); single-model servers pass 0.
    """
    if commit_mode:
        # Earlier batches may have committed (and re-packed the id space)
        # while these requests sat in the queue.  Translate each request
        # forward through the commits it missed: ids already committed
        # drop out (those samples are gone — which is what the caller
        # asked for), survivors shift down.  Without this, a queued id
        # would silently denote whatever sample later moved into its slot.
        tracker.remap(live, (epoch, trainer.store._version))
    key_before = (epoch, trainer.store._version)
    lanes = [request.lane for request in live]
    # Cost-model hook: estimate the batch union's footprint before the
    # replay runs (searchsorted counts — no extra replay), attach it to
    # every member's outcome, and feed the measured service time back
    # into the online calibration afterwards.
    cost_model = getattr(trainer, "cost_model", None)
    union = None
    if commit_mode or cost_model is not None:
        union = live[0].indices
        for request in live[1:]:
            union = np.union1d(union, request.indices)
    predicted = (
        cost_model.estimate(trainer, union).as_dict()
        if cost_model is not None
        else None
    )
    dispatched_at = clock.now()
    try:
        outcomes = trainer.remove_many(
            [r.indices for r in live],
            method=method,
            commit=commit_mode,
        )
    except Exception as exc:  # systemic: fail every request in the batch
        for request in live:
            request.future.set_exception(exc)
        stats.record_failed(len(live), lanes)
        return
    if commit_mode:
        tracker.note_committed(key_before, union)
    answered_at = clock.now()
    service = answered_at - dispatched_at
    if cost_model is not None:
        cost_model.observe_batch(len(live), service)
    waits, services, latencies = [], [], []
    for rank, (request, outcome) in enumerate(zip(live, outcomes)):
        wait = dispatched_at - request.enqueued_at
        latency = answered_at - request.enqueued_at
        request.future.set_result(
            ServedOutcome(
                weights=outcome.weights,
                method=outcome.method,
                removed=outcome.removed,
                seconds=outcome.seconds,
                wait_seconds=wait,
                latency_seconds=latency,
                batch_size=len(live),
                committed=commit_mode,
                lane=request.lane,
                model_id=model_id,
                batch_seq=batch_seq,
                batch_rank=rank,
                predicted=predicted,
            )
        )
        waits.append(wait)
        # Stats record the batch's actual dispatch->answer wall-clock
        # (the same for every member); the per-request *amortized*
        # share lives on ServedOutcome.seconds.
        services.append(service)
        latencies.append(latency)
    stats.record_batch(waits, services, latencies, lanes)


class DeletionServer:
    """Admission-batched facade serving deletion requests from a queue.

    Parameters
    ----------
    trainer:
        A fitted :class:`~repro.core.api.IncrementalTrainer` (via
        :meth:`~repro.core.api.IncrementalTrainer.fit` or
        :meth:`~repro.core.api.IncrementalTrainer.from_checkpoint`).
    policy:
        Coalescing/backpressure/lane knobs; defaults to
        :class:`~repro.serving.policy.AdmissionPolicy()`.
    method:
        Forwarded to ``remove_many`` (``None`` = the trainer's default,
        ``"priu"``, ``"priu-opt"`` or ``"priu-seq"``).
    autostart:
        Start the worker thread immediately.  Benchmarks pass ``False``,
        pre-load the queue, then call :meth:`start` for a deterministic
        single-batch dispatch.
    commit_mode:
        Serve *committed* deletions: each dispatched batch runs
        ``remove_many(..., commit=True)``, so requests are applied
        cumulatively in admission order (a request's answer excludes its
        own samples plus everything admitted before it) and the model,
        store and plan adopt the post-batch state.  Removal ids submitted
        after a commit are interpreted — and validated — in the
        *post-commit* id space, which shrinks with every committed batch
        (``trainer.n_samples`` is the live bound).  Requests still queued
        when an earlier batch commits are translated forward through that
        commit automatically: ids it already removed drop out (those
        samples are gone) and survivors shift down, so an id always
        denotes the sample the submitter addressed; ``ServedOutcome.\
removed`` reports the translated set, in the id space its batch executed
        in.  The trainer must not be queried concurrently from outside
        the server while commits are in flight.
    clock:
        The :class:`~repro.serving.clock.Clock` all deadline math and
        latency measurement runs on.  Defaults to real monotonic time;
        tests inject a fake.
    """

    def __init__(
        self,
        trainer,
        policy: AdmissionPolicy | None = None,
        method: str | None = None,
        autostart: bool = True,
        commit_mode: bool = False,
        clock: Clock | None = None,
    ) -> None:
        trainer._require_fit()
        if method not in (None, "priu", "priu-opt", "priu-seq"):
            raise ValueError(
                "method must be None, 'priu', 'priu-opt' or 'priu-seq'"
            )
        self.trainer = trainer
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.method = method
        self.commit_mode = bool(commit_mode)
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        if self.commit_mode and trainer.clock is None:
            # The serving clock also stamps the commit audit receipts:
            # an injected clock (fake clock in tests, or an operator's
            # custom time source) keeps them deterministic, and the
            # stock monotonic clock answers receipt stamps through
            # Clock.timestamp() — wall time, since receipts persist
            # across restarts and perf_counter seconds are
            # process-relative.
            trainer.clock = self._clock
        self._tracker = _CommitTracker()
        # Lane-priority admission: entries are (lane priority, submission
        # seq, request), so queued deadline traffic always pops before
        # queued bulk traffic while order *within* a lane stays FIFO.  The
        # shutdown sentinel carries +inf priority — it sorts behind every
        # request, preserving drain-then-stop semantics.
        self._queue: queue.PriorityQueue = queue.PriorityQueue()
        self._seq = itertools.count()
        self._batch_seq = itertools.count()
        # Capacity is enforced by the semaphore, not the queue: submitters
        # block on a slot *outside* any lock, the enqueue itself is always
        # non-blocking, and close() can always append its sentinel.  The
        # worker releases a slot for every request it takes off the queue.
        self._slots = threading.BoundedSemaphore(self.policy.max_pending)
        # Deadline-flood starvation guard (AdmissionPolicy
        # max_preemption_ratio); a no-op while no lane carries a ratio.
        self._guard = _PreemptionGuard()
        self._stats = StatsRecorder()
        self._state_lock = threading.Condition()
        # Serializes enqueueing against shutdown: every accepted request is
        # enqueued while holding this lock, and close() flips _closed under
        # it before appending the sentinel — so no request can be admitted
        # after the sentinel and hang undrained.
        self._submit_lock = threading.Lock()
        self._inflight = 0  # guarded-by: _state_lock
        self._closed = False  # guarded-by: _submit_lock
        self._crashed: BaseException | None = None  # guarded-by: _submit_lock
        self._started = False  # guarded-by: _state_lock
        self._worker = threading.Thread(
            target=self._serve_loop, name="deletion-server", daemon=True
        )
        if autostart:
            self.start()

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "DeletionServer":
        """Start the worker thread (idempotent)."""
        with self._state_lock:
            if not self._started:
                self._started = True
                self._worker.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain the queue, then stop the worker."""
        with self._submit_lock:
            already_closed = self._closed
            self._closed = True
        if already_closed:
            if wait and self._worker.is_alive():
                self._worker.join()
            return
        # Ensure queued work drains even if the caller never start()ed.
        self.start()
        self._queue.put((math.inf, math.inf, _SHUTDOWN))
        if wait:
            self._worker.join()

    def __enter__(self) -> "DeletionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        # On a clean exit, drain the queue and join the worker.  While an
        # exception is unwinding, don't block on outstanding work (the
        # futures' owners may be the very frames being torn down): stop
        # accepting and let the daemon worker finish in the background.
        self.close(wait=exc_type is None)

    # ---------------------------------------------------------- submission
    def submit(
        self,
        indices,
        block: bool = True,
        timeout: float | None = None,
        lane: str | None = None,
    ) -> Future:
        """Enqueue one removal set; returns a future of :class:`ServedOutcome`.

        Validation (bounds, not-everything, lane name) happens here,
        synchronously, so a bad request raises in its caller instead of
        failing a batch.  ``lane`` names one of the policy's SLA classes
        (default: ``policy.default_lane``).  When the queue is at
        ``max_pending``: ``block=True`` waits (up to ``timeout``),
        ``block=False`` raises :class:`BackpressureError` immediately.
        """
        lane_obj = self.policy.lane(lane)
        removed = normalize_removed_indices(indices)
        if removed.size == 0:
            return self._resolve_empty(lane_obj.name)
        # Register the pruning key BEFORE anything can block: concurrent
        # dispatches prune commit history down to the oldest *registered*
        # in-flight key, so a submitter parked on the backpressure
        # semaphore must already be counted or the history it needs can
        # vanish while it waits.  The request is tagged with a second
        # snapshot taken after registration — it can only move the tag
        # forward, never below the registered key, so the retained
        # history always covers the tag.
        admitted_key = (0, _consistent_store_snapshot(self.trainer.store)[0])
        self._tracker.note_submitted(admitted_key)
        try:
            # The ids are validated against exactly the id space they are
            # tagged with, even if the worker commits a batch mid-submit.
            store_version, n_samples = _consistent_store_snapshot(
                self.trainer.store
            )
            _validate_removed(removed, n_samples)
            request = _Request(
                indices=removed,
                future=Future(),
                enqueued_at=self._clock.now(),
                lane=lane_obj.name,
                lane_delay=self.policy.delay_for(lane_obj.name),
                lane_priority=lane_obj.priority,
                store_key=(0, store_version),
                admitted_key=admitted_key,
            )
            # Backpressure: wait for a slot without holding any lock, so
            # a blocked submitter can never stall close() or other
            # submitters.
            if block:
                got_slot = self._slots.acquire(timeout=timeout)
            else:
                got_slot = self._slots.acquire(blocking=False)
            if not got_slot:
                self._stats.record_rejected(lane_obj.name)
                raise BackpressureError(
                    f"admission queue is full "
                    f"({self.policy.max_pending} pending)"
                )
            # The check-then-enqueue must be atomic w.r.t. close(), else
            # a request could be admitted after the shutdown sentinel and
            # never resolve.  Nothing inside this lock blocks.
            with self._submit_lock:
                if self._crashed is not None:
                    self._slots.release()
                    raise WorkerCrashedError(
                        "cannot submit: the server's worker thread died"
                    ) from self._crashed
                if self._closed:
                    self._slots.release()
                    raise ServerClosedError(
                        "cannot submit to a closed DeletionServer"
                    )
                with self._state_lock:
                    self._inflight += 1
                self._stats.record_submitted(lane_obj.name)
                request.seq = next(self._seq)
                self._queue.put_nowait(request.entry())
        except BaseException:
            # One unwind point for every pre-enqueue failure — validation,
            # rejection, closed server, or an interrupt while parked on
            # the semaphore.  A leaked key would pin commit history (the
            # min() prune could never pass it) for the server's lifetime.
            self._tracker.forget(admitted_key)
            raise
        return request.future

    def _resolve_empty(self, lane: str) -> Future:
        """Answer an empty removal set inline: a no-op that joins no batch.

        An empty set used to pass validation and ride a batch through
        ``remove_many`` — wasting an admission slot and, in commit mode,
        committing nothing while still counting as an applied request.
        Policy ``on_empty="reject"`` turns this into a submit-time error.
        """
        if self.policy.on_empty == "reject":
            raise ValueError(
                "empty removal set (AdmissionPolicy(on_empty='resolve') "
                "answers these with a no-op instead)"
            )
        with self._submit_lock:
            if self._crashed is not None:
                raise WorkerCrashedError(
                    "cannot submit: the server's worker thread died"
                ) from self._crashed
            if self._closed:
                raise ServerClosedError(
                    "cannot submit to a closed DeletionServer"
                )
            self._stats.record_noop(lane)
            weights = self.trainer.weights_.copy()
        future: Future = Future()
        future.set_result(
            ServedOutcome(
                weights=weights,
                method="noop",
                removed=np.empty(0, dtype=np.int64),
                seconds=0.0,
                wait_seconds=0.0,
                latency_seconds=0.0,
                batch_size=0,
                committed=False,
                lane=lane,
            )
        )
        return future

    def submit_many(self, index_sets, **kwargs) -> list[Future]:
        """Enqueue several removal sets (one future each)."""
        return [self.submit(indices, **kwargs) for indices in index_sets]

    def resolve(self, indices, timeout: float | None = None, **kwargs) -> ServedOutcome:
        """Blocking convenience: submit one request and wait for its answer."""
        return self.submit(indices, **kwargs).result(timeout=timeout)

    # ----------------------------------------------------------- observers
    def flush(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has been answered or failed."""
        with self._state_lock:
            if self._inflight and not self._started:
                raise ServerStateError(
                    "flush() would wait forever: requests are queued but the "
                    "worker was never started (autostart=False)"
                )
            return self._state_lock.wait_for(
                lambda: self._inflight == 0, timeout
            )

    def stats(self) -> ServingStats:
        """Lifetime counters and wait/service/latency distributions."""
        return self._stats.snapshot()

    @property
    def pending(self) -> int:
        """Requests submitted but not yet answered."""
        with self._state_lock:
            return self._inflight

    # -------------------------------------------------------------- worker
    def _finish(self, requests: list[_Request]) -> None:
        self._tracker.note_finished(requests)
        with self._state_lock:
            # max() guards the post-abort window: _abort zeroes the count
            # while a dispatch may still be finishing its batch.
            self._inflight = max(0, self._inflight - len(requests))
            if self._inflight == 0:
                self._state_lock.notify_all()

    def _serve_loop(self) -> None:
        carried: _Request | None = None
        batch: list[_Request] = []
        try:
            while True:
                batch = []
                if carried is not None:
                    batch.append(carried)
                    carried = None
                else:
                    _, _, item = self._queue.get()
                    if item is _SHUTDOWN:
                        break
                    self._slots.release()
                    batch.append(item)
                saw_shutdown, yielded, carried = self._collect(batch)
                if batch:
                    self._note_preemption(batch, yielded)
                    self._dispatch(batch)
                if saw_shutdown:
                    break
        except BaseException as exc:
            # The worker is dying with requests possibly in hand (the
            # batch being coalesced or dispatched, a carried head, and
            # everything still queued).  Fail them all loudly: a wedged
            # flush() is strictly worse than a typed error.
            inflight = list(batch)
            if carried is not None:
                inflight.append(carried)
            self._abort(exc, inflight)

    def _abort(self, cause: BaseException, inflight: list[_Request]) -> None:
        """Fail every unresolved request after the worker thread dies."""
        error = WorkerCrashedError("the server's worker thread died")
        error.__cause__ = cause
        with self._submit_lock:
            self._crashed = error
        doomed = list(inflight)
        while True:
            try:
                _, _, item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            self._slots.release()
            doomed.append(item)
        failed_lanes: list[str | None] = []
        cancelled_lanes: list[str | None] = []
        settled: list[_Request] = []
        for request in doomed:
            future = request.future
            if future.cancelled():
                # Cancelled while queued; nobody will pop it now.
                cancelled_lanes.append(request.lane)
                settled.append(request)
                continue
            if future.done():
                continue
            try:
                # Works from PENDING and RUNNING alike; a concurrent
                # cancel() wins the race and is fine — the caller got an
                # answer either way.
                future.set_exception(error)
                failed_lanes.append(request.lane)
                settled.append(request)
            except Exception:
                pass
        if failed_lanes:
            self._stats.record_failed(len(failed_lanes), failed_lanes)
        if cancelled_lanes:
            self._stats.record_cancelled(len(cancelled_lanes), cancelled_lanes)
        self._tracker.note_finished(settled)
        with self._state_lock:
            self._inflight = 0
            self._state_lock.notify_all()

    # ------------------------------------------------- starvation guard
    def _steal_oldest_lower(self, bound_priority: int) -> _Request | None:
        """Pull the oldest queued request of a lane below ``bound_priority``.

        The guard's *yield* operation: direct surgery on the priority
        queue's heap (under its own mutex — only this worker thread pops,
        so removing an entry cannot race another consumer).  Returns None
        when no lower-priority request waits.
        """
        q = self._queue
        with q.mutex:
            candidates = [
                entry
                for entry in q.queue
                if entry[2] is not _SHUTDOWN and entry[0] > bound_priority
            ]
            if not candidates:
                return None
            entry = min(candidates, key=lambda e: e[1])
            q.queue.remove(entry)
            heapq.heapify(q.queue)
        self._slots.release()
        return entry[2]

    def _oldest_lower_seq(self, bound_priority: int) -> int | None:
        """Smallest seq still queued below ``bound_priority`` (None if none)."""
        q = self._queue
        with q.mutex:
            seqs = [
                entry[1]
                for entry in q.queue
                if entry[2] is not _SHUTDOWN and entry[0] > bound_priority
            ]
        return min(seqs) if seqs else None

    def _note_preemption(self, batch: list[_Request], yielded: bool) -> None:
        """Update the starvation guard for one dispatched batch."""
        self._guard.observe_dispatch(
            batch, self._oldest_lower_seq, self.policy, yielded
        )

    def _collect(
        self, batch: list[_Request]
    ) -> tuple[bool, bool, _Request | None]:
        """Coalesce queued requests behind ``batch[0]`` under the policy.

        The batch's coalescing budget is the *minimum* of its members'
        lane delays against its *oldest* member's wait — so a zero-delay
        (deadline-lane) request forces immediate dispatch of whatever
        batch it joins, and nobody's latency budget is silently blown by
        a later, more patient arrival.

        When the starvation guard's preemption debt is due (and the head
        rides a guarded lane), the oldest waiting lower-priority request
        is *yielded* into this batch first — it rides the batch's
        (possibly zero) delay and is served immediately with it.

        Grows ``batch`` (the caller's list) *in place*: every request
        popped off the queue is appended before anything else can fail,
        so a worker crash mid-coalesce still has the full set in hand to
        abort.  Returns ``(saw_shutdown, yielded, carried)``; ``carried``
        is the popped head the worker must serve next when ``max_batch``
        left no room to dispatch it alongside the yielded request.
        """
        first = batch[0]
        batch_delay = first.lane_delay
        oldest_enqueue = first.enqueued_at
        yielded = False
        if self._guard.must_yield() and (
            self.policy.preemption_ratio_for(first.lane) is not None
        ):
            stolen = self._steal_oldest_lower(first.lane_priority)
            if stolen is not None:
                if self.policy.max_batch < 2:
                    # No room to carry both under the batch cap: the
                    # yielded request takes this dispatch and the guarded
                    # head waits for the next one (matching the fleet's
                    # accounting, never exceeding max_batch).
                    batch[0] = stolen
                    return False, True, first
                batch.append(stolen)
                batch_delay = min(batch_delay, stolen.lane_delay)
                oldest_enqueue = min(oldest_enqueue, stolen.enqueued_at)
                yielded = True
        while True:
            oldest_wait = self._clock.now() - oldest_enqueue
            if self.policy.should_dispatch(len(batch), oldest_wait, batch_delay):
                break
            try:
                _, _, item = self._clock.get(
                    self._queue,
                    self.policy.remaining_budget(oldest_wait, batch_delay),
                )
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return True, yielded, None
            self._slots.release()
            batch.append(item)
            batch_delay = min(batch_delay, item.lane_delay)
            oldest_enqueue = min(oldest_enqueue, item.enqueued_at)
        # Budget spent (or batch full): still sweep up whatever is already
        # sitting in the queue, up to the cap — free batching, no waiting.
        while len(batch) < self.policy.max_batch:
            try:
                _, _, item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return True, yielded, None
            self._slots.release()
            batch.append(item)
        return False, yielded, None

    def _dispatch(self, batch: list[_Request]) -> None:
        # Honor cancellations that happened while the request was queued.
        live: list[_Request] = []
        cancelled: list[_Request] = []
        for request in batch:
            if request.future.set_running_or_notify_cancel():
                live.append(request)
            else:
                cancelled.append(request)
        if cancelled:
            self._stats.record_cancelled(
                len(cancelled), [r.lane for r in cancelled]
            )
            self._finish(cancelled)
        # Keep the caller's list tracking exactly the still-unsettled
        # requests, so a crash below aborts precisely those.
        batch[:] = live
        if not live:
            return
        _serve_batch(
            self.trainer,
            live,
            method=self.method,
            commit_mode=self.commit_mode,
            tracker=self._tracker,
            clock=self._clock,
            stats=self._stats,
            batch_seq=next(self._batch_seq),
        )
        self._finish(live)
        del batch[:]
