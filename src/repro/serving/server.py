"""The deletion server: a request queue over the batched update engine.

:class:`DeletionServer` turns :meth:`repro.IncrementalTrainer.remove_many`
— a K-requests-in-hand batch API — into something deletion traffic can
actually hit: callers :meth:`~DeletionServer.submit` one removal set at a
time and get a :class:`concurrent.futures.Future` back immediately.  A
single worker thread coalesces queued requests under the
:class:`~repro.serving.policy.AdmissionPolicy` (latency budget ×
max-batch-size), dispatches each batch through one ``remove_many`` call,
and resolves every future with a :class:`ServedOutcome` carrying the
updated weights plus that request's queueing/service timings.

Backpressure is a bounded queue: once ``max_pending`` requests wait,
further submissions raise :class:`BackpressureError` (or block, caller's
choice) instead of growing memory without bound.  Request validation
happens at submit time, so a malformed removal set fails its own caller
and never poisons a batch.

Typical use::

    with DeletionServer(trainer, AdmissionPolicy(max_batch=32)) as server:
        futures = [server.submit(ids) for ids in request_stream]
        outcomes = [f.result() for f in futures]

The server is deliberately single-worker: one batched replay already
saturates the BLAS threads, so a second concurrent ``remove_many`` would
fight it for cores rather than add throughput.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..core.provenance_store import normalize_removed_indices
from .policy import AdmissionPolicy
from .stats import ServingStats, StatsRecorder

_SHUTDOWN = object()


class BackpressureError(RuntimeError):
    """The server's admission queue is full; retry later or block."""


@dataclass
class ServedOutcome:
    """One answered deletion request, with its queueing economics.

    ``seconds`` is the request's amortized share of its batch's
    ``remove_many`` wall-clock (matching
    :class:`~repro.core.api.UpdateOutcome`); ``latency_seconds`` is what
    the caller actually experienced, enqueue to answer.
    """

    weights: np.ndarray
    method: str
    removed: np.ndarray
    seconds: float
    wait_seconds: float
    latency_seconds: float
    batch_size: int


@dataclass
class _Request:
    indices: np.ndarray
    future: Future
    enqueued_at: float


class DeletionServer:
    """Admission-batched facade serving deletion requests from a queue.

    Parameters
    ----------
    trainer:
        A fitted :class:`~repro.core.api.IncrementalTrainer` (via
        :meth:`~repro.core.api.IncrementalTrainer.fit` or
        :meth:`~repro.core.api.IncrementalTrainer.from_checkpoint`).
    policy:
        Coalescing/backpressure knobs; defaults to
        :class:`~repro.serving.policy.AdmissionPolicy()`.
    method:
        Forwarded to ``remove_many`` (``None`` = the trainer's default,
        ``"priu"``, ``"priu-opt"`` or ``"priu-seq"``).
    autostart:
        Start the worker thread immediately.  Benchmarks pass ``False``,
        pre-load the queue, then call :meth:`start` for a deterministic
        single-batch dispatch.
    """

    def __init__(
        self,
        trainer,
        policy: AdmissionPolicy | None = None,
        method: str | None = None,
        autostart: bool = True,
    ) -> None:
        trainer._require_fit()
        if method not in (None, "priu", "priu-opt", "priu-seq"):
            raise ValueError(
                "method must be None, 'priu', 'priu-opt' or 'priu-seq'"
            )
        self.trainer = trainer
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.method = method
        # Capacity is enforced by the semaphore, not the queue: submitters
        # block on a slot *outside* any lock, the enqueue itself is always
        # non-blocking, and close() can always append its sentinel.  The
        # worker releases a slot for every request it takes off the queue.
        self._queue: queue.Queue = queue.Queue()
        self._slots = threading.BoundedSemaphore(self.policy.max_pending)
        self._stats = StatsRecorder()
        self._state_lock = threading.Condition()
        # Serializes enqueueing against shutdown: every accepted request is
        # enqueued while holding this lock, and close() flips _closed under
        # it before appending the sentinel — so the sentinel is provably
        # the last item and no request can slip in behind it and hang.
        self._submit_lock = threading.Lock()
        self._inflight = 0
        self._closed = False
        self._started = False
        self._worker = threading.Thread(
            target=self._serve_loop, name="deletion-server", daemon=True
        )
        if autostart:
            self.start()

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "DeletionServer":
        """Start the worker thread (idempotent)."""
        with self._state_lock:
            if not self._started:
                self._started = True
                self._worker.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain the queue, then stop the worker."""
        with self._submit_lock:
            already_closed = self._closed
            self._closed = True
        if already_closed:
            if wait and self._worker.is_alive():
                self._worker.join()
            return
        # Ensure queued work drains even if the caller never start()ed.
        self.start()
        self._queue.put(_SHUTDOWN)
        if wait:
            self._worker.join()

    def __enter__(self) -> "DeletionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close(wait=True)

    # ---------------------------------------------------------- submission
    def submit(
        self, indices, block: bool = True, timeout: float | None = None
    ) -> Future:
        """Enqueue one removal set; returns a future of :class:`ServedOutcome`.

        Validation (bounds, not-everything) happens here, synchronously, so
        a bad request raises in its caller instead of failing a batch.
        When the queue is at ``max_pending``: ``block=True`` waits (up to
        ``timeout``), ``block=False`` raises :class:`BackpressureError`
        immediately.
        """
        removed = normalize_removed_indices(indices)
        n_samples = self.trainer.store.n_samples
        if removed.size and (removed[0] < 0 or removed[-1] >= n_samples):
            raise ValueError(
                f"removal ids must lie in [0, {n_samples}); "
                f"got range [{removed[0]}, {removed[-1]}]"
            )
        if removed.size >= n_samples:
            raise ValueError("cannot delete every training sample")
        request = _Request(
            indices=removed, future=Future(), enqueued_at=time.perf_counter()
        )
        # Backpressure: wait for a slot without holding any lock, so a
        # blocked submitter can never stall close() or other submitters.
        if block:
            got_slot = self._slots.acquire(timeout=timeout)
        else:
            got_slot = self._slots.acquire(blocking=False)
        if not got_slot:
            self._stats.record_rejected()
            raise BackpressureError(
                f"admission queue is full ({self.policy.max_pending} pending)"
            )
        # The check-then-enqueue must be atomic w.r.t. close(), else a
        # request could land behind the shutdown sentinel and never
        # resolve.  Nothing inside this lock blocks.
        with self._submit_lock:
            if self._closed:
                self._slots.release()
                raise RuntimeError(
                    "cannot submit to a closed DeletionServer"
                )
            with self._state_lock:
                self._inflight += 1
            self._stats.record_submitted()
            self._queue.put_nowait(request)
        return request.future

    def submit_many(self, index_sets, **kwargs) -> list[Future]:
        """Enqueue several removal sets (one future each)."""
        return [self.submit(indices, **kwargs) for indices in index_sets]

    def resolve(self, indices, timeout: float | None = None) -> ServedOutcome:
        """Blocking convenience: submit one request and wait for its answer."""
        return self.submit(indices).result(timeout=timeout)

    # ----------------------------------------------------------- observers
    def flush(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has been answered or failed."""
        with self._state_lock:
            if self._inflight and not self._started:
                raise RuntimeError(
                    "flush() would wait forever: requests are queued but the "
                    "worker was never started (autostart=False)"
                )
            return self._state_lock.wait_for(
                lambda: self._inflight == 0, timeout
            )

    def stats(self) -> ServingStats:
        """Lifetime counters and wait/service/latency distributions."""
        return self._stats.snapshot()

    @property
    def pending(self) -> int:
        """Requests submitted but not yet answered."""
        with self._state_lock:
            return self._inflight

    # -------------------------------------------------------------- worker
    def _finish(self, count: int) -> None:
        with self._state_lock:
            self._inflight -= count
            if self._inflight == 0:
                self._state_lock.notify_all()

    def _serve_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            self._slots.release()
            batch, saw_shutdown = self._collect(item)
            if batch:
                self._dispatch(batch)
            if saw_shutdown:
                break

    def _collect(self, first: _Request) -> tuple[list[_Request], bool]:
        """Coalesce queued requests behind ``first`` under the policy."""
        batch = [first]
        while True:
            oldest_wait = time.perf_counter() - first.enqueued_at
            if self.policy.should_dispatch(len(batch), oldest_wait):
                break
            try:
                item = self._queue.get(
                    timeout=self.policy.remaining_budget(oldest_wait)
                )
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            self._slots.release()
            batch.append(item)
        # Budget spent (or batch full): still sweep up whatever is already
        # sitting in the queue, up to the cap — free batching, no waiting.
        while len(batch) < self.policy.max_batch:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                return batch, True
            self._slots.release()
            batch.append(item)
        return batch, False

    def _dispatch(self, batch: list[_Request]) -> None:
        # Honor cancellations that happened while the request was queued.
        live = [r for r in batch if r.future.set_running_or_notify_cancel()]
        if len(live) < len(batch):
            self._stats.record_cancelled(len(batch) - len(live))
            self._finish(len(batch) - len(live))
        if not live:
            return
        dispatched_at = time.perf_counter()
        try:
            outcomes = self.trainer.remove_many(
                [r.indices for r in live], method=self.method
            )
        except Exception as exc:  # systemic: fail every request in the batch
            for request in live:
                request.future.set_exception(exc)
            self._stats.record_failed(len(live))
            self._finish(len(live))
            return
        answered_at = time.perf_counter()
        service = answered_at - dispatched_at
        waits, services, latencies = [], [], []
        for request, outcome in zip(live, outcomes):
            wait = dispatched_at - request.enqueued_at
            latency = answered_at - request.enqueued_at
            request.future.set_result(
                ServedOutcome(
                    weights=outcome.weights,
                    method=outcome.method,
                    removed=outcome.removed,
                    seconds=outcome.seconds,
                    wait_seconds=wait,
                    latency_seconds=latency,
                    batch_size=len(live),
                )
            )
            waits.append(wait)
            # Stats record the batch's actual dispatch->answer wall-clock
            # (the same for every member); the per-request *amortized*
            # share lives on ServedOutcome.seconds.
            services.append(service)
            latencies.append(latency)
        self._stats.record_batch(waits, services, latencies)
        self._finish(len(live))
