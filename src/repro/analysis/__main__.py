"""``python -m repro.analysis`` — run the project lint pass.

Scans ``src/`` and ``tests/`` (or explicit paths) with the rule catalog
in :mod:`repro.analysis.rules`, prints ``path:line: RULE message`` per
violation, and exits nonzero if any survive the waiver pragmas.  CI
uploads the ``--json`` report as an artifact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .engine import iter_python_files, load_module, run_rules
from .rules import MODULE_RULES, PROJECT_RULES


def _detect_root() -> Path:
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    return Path(__file__).resolve().parents[3]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: src/ and tests/)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root for relative paths and reporting",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the full report as JSON",
    )
    args = parser.parse_args(argv)

    root = (args.root or _detect_root()).resolve()
    scan = [
        path if path.is_absolute() else root / path
        for path in map(Path, args.paths or ["src", "tests"])
    ]

    modules = []
    for source in iter_python_files(scan):
        try:
            modules.append(load_module(source, root))
        except SyntaxError as error:
            print(f"{source}: failed to parse: {error}", file=sys.stderr)
            return 2

    report = run_rules(modules, MODULE_RULES, PROJECT_RULES)

    for violation in report.violations:
        print(violation.render())
    print(
        f"reprolint: {len(report.violations)} violation(s), "
        f"{len(report.waived)} waived, {report.files} file(s) checked"
    )
    if args.json is not None:
        args.json.write_text(report.to_json() + "\n", encoding="utf-8")
        print(f"report written to {args.json}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
