"""``reprolint``: project-invariant static analysis.

An AST-based lint pass encoding the invariants the serving stack's
correctness arguments depend on — run as a CI gate over ``src/`` and
``tests/`` via ``python -m repro.analysis`` (or ``tools/lint.py``):

==== ======================================================================
Rule Invariant
==== ======================================================================
R001 clock discipline — no wall clocks/sleeps in library code outside
     ``serving/clock.py`` and documented waivers
R002 lock discipline — attributes declared ``# guarded-by: <lock>`` (or
     via the ``GuardedBy`` descriptor) are only touched under that lock
R003 fault-point coverage — every ``_fault(...)`` seam in
     ``core/serialization.py`` is pinned by a crash-sweep test literal
R004 error taxonomy — serving code raises typed ``serving/errors.py``
     exceptions, never bare ``RuntimeError``
R005 deterministic tests — no real sleeps/wall clocks in tier-1 tests
==== ======================================================================

The runtime complement (instrumented locks, lock-order cycle detection,
debug-mode guarded-state asserts) lives in :mod:`repro.testing.races`.
"""

from .engine import Module, Report, Violation, load_module, run_rules
from .faultpoints import discover_fault_points
from .rules import MODULE_RULES, PROJECT_RULES

__all__ = [
    "MODULE_RULES",
    "Module",
    "PROJECT_RULES",
    "Report",
    "Violation",
    "discover_fault_points",
    "load_module",
    "run_rules",
]
