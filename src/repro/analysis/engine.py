"""Core machinery for the project lint pass (``reprolint``).

The engine parses every Python file in scope once (AST + comment map via
``tokenize``), hands the parsed modules to the registered rules, and
applies waiver pragmas to the raw findings.  Rules come in two shapes:

* **module rules** see one :class:`Module` at a time (R001, R002, R004,
  R005);
* **project rules** see the whole module set at once — R003 must match
  fault-point seams in ``core/serialization.py`` against string literals
  anywhere under ``tests/``.

Waiver policy: a violation is suppressed by a pragma **on the flagged
line** (or a pragma comment alone on the line directly above)::

    timestamp = time.time()  # reprolint: allow[R001] receipt fallback for
                             # clock-less standalone trainers

The rationale text after the rule tag is mandatory — a bare waiver is
itself reported (rule R000) so the whitelist stays documented.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

WAIVER_RE = re.compile(r"#\s*reprolint:\s*allow\[(R\d{3})\](?:\s+(\S.*))?")


@dataclass
class Violation:
    """One rule finding, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class Waived:
    violation: Violation
    rationale: str


class Module:
    """A parsed source file: AST, per-line comments, and its lint role."""

    def __init__(self, path: Path, rel: str, text: str, role: str):
        self.path = path
        self.rel = rel.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.role = role  # "src" or "tests"
        self.tree = ast.parse(text, filename=str(path))
        self.comments: Dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:  # pragma: no cover - parse already ok
            pass

    def comment_on(self, line: int) -> str:
        return self.comments.get(line, "")

    def waivers(self) -> Tuple[Dict[Tuple[str, int], str], List[Violation]]:
        """Map ``(rule, line) -> rationale`` plus malformed-waiver findings.

        A pragma that is the whole line extends to the next code line, so
        long statements can carry their waiver on the line above.
        """
        waived: Dict[Tuple[str, int], str] = {}
        malformed: List[Violation] = []
        for line, comment in self.comments.items():
            match = WAIVER_RE.search(comment)
            if not match:
                continue
            rule, rationale = match.group(1), (match.group(2) or "").strip()
            if not rationale:
                malformed.append(
                    Violation(
                        "R000",
                        self.rel,
                        line,
                        f"waiver for {rule} has no rationale — explain why "
                        "the exemption is safe",
                    )
                )
                continue
            waived[(rule, line)] = rationale
            if self.lines[line - 1].strip().startswith("#"):
                target = self._next_code_line(line)
                if target is not None:
                    waived[(rule, target)] = rationale
        return waived, malformed

    def _next_code_line(self, line: int) -> Optional[int]:
        for number in range(line + 1, len(self.lines) + 1):
            stripped = self.lines[number - 1].strip()
            if stripped and not stripped.startswith("#"):
                return number
        return None


ModuleRule = Callable[[Module], List[Violation]]
ProjectRule = Callable[[List[Module]], List[Violation]]


@dataclass
class Report:
    violations: List[Violation] = field(default_factory=list)
    waived: List[Waived] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files": self.files,
            "violations": [
                {
                    "rule": v.rule,
                    "path": v.path,
                    "line": v.line,
                    "message": v.message,
                }
                for v in self.violations
            ],
            "waived": [
                {
                    "rule": w.violation.rule,
                    "path": w.violation.path,
                    "line": w.violation.line,
                    "message": w.violation.message,
                    "rationale": w.rationale,
                }
                for w in self.waived
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def load_module(path: Path, root: Path) -> Module:
    try:
        rel = str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        rel = str(path)
    role = "tests" if "tests" in Path(rel).parts else "src"
    text = path.read_text(encoding="utf-8")
    return Module(path, rel, text, role)


def iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" in candidate.parts:
                    continue
                yield candidate


def run_rules(
    modules: List[Module],
    module_rules: Dict[str, ModuleRule],
    project_rules: Dict[str, ProjectRule],
) -> Report:
    """Run every rule, then fold waivers into the findings."""
    report = Report(files=len(modules))
    raw: List[Tuple[Module, Violation]] = []
    waivers: Dict[str, Dict[Tuple[str, int], str]] = {}

    for module in modules:
        waived_map, malformed = module.waivers()
        waivers[module.rel] = waived_map
        report.violations.extend(malformed)
        for rule in module_rules.values():
            for violation in rule(module):
                raw.append((module, violation))

    for rule in project_rules.values():
        for violation in rule(modules):
            module = next(
                (m for m in modules if m.rel == violation.path), None
            )
            if module is not None:
                raw.append((module, violation))
            else:
                report.violations.append(violation)

    for module, violation in raw:
        rationale = waivers.get(module.rel, {}).get(
            (violation.rule, violation.line)
        )
        if rationale is not None:
            report.waived.append(Waived(violation, rationale))
        else:
            report.violations.append(violation)

    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return report
