"""Static discovery of the durability protocol's fault-point seams.

``core/serialization.py`` threads every crash-atomic step through the
``_fault(event, path)`` hook.  This module recovers the full seam-name
set from the *source* — no execution — so rule R003 and the drift
regression test can compare it against what
:func:`repro.testing.faults.record_fault_points` observes at runtime.

Event names come in three shapes:

* plain literals (``"commit.done"``) — taken verbatim;
* f-strings over the enclosing function's ``tag`` parameter
  (``f"{tag}.renamed"``) — expanded with every constant ``tag=`` value
  found at the function's call sites (``"store"``, ``"plan"``);
* f-strings over data-dependent values (``f"commit.rename.{member}"``) —
  reduced to ``fnmatch`` wildcards (``"commit.rename.*"``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

FAULT_HOOK_NAMES = frozenset({"_fault", "_fault_point"})


def default_serialization_path() -> Path:
    """``core/serialization.py`` located relative to this package."""
    return Path(__file__).resolve().parent.parent / "core" / "serialization.py"


def discover_fault_points(path: Optional[Path] = None) -> Set[str]:
    """Seam-name patterns statically discovered in ``serialization.py``."""
    source_path = Path(path) if path is not None else (
        default_serialization_path()
    )
    tree = ast.parse(source_path.read_text(encoding="utf-8"))
    return {pattern for pattern, _line in discover_in_tree(tree)}


def discover_in_tree(tree: ast.AST) -> List[Tuple[str, int]]:
    """``(pattern, line)`` for every ``_fault(...)`` seam in ``tree``."""
    tag_values = _tag_values_by_function(tree)
    seams: List[Tuple[str, int]] = []
    for function, call in _fault_calls(tree):
        if not call.args:
            continue
        template = _event_template(call.args[0])
        if template is None:
            seams.append(("*", call.lineno))
            continue
        seams.extend(
            (pattern, call.lineno)
            for pattern in _expand(template, function, tag_values)
        )
    return seams


def _fault_calls(
    tree: ast.AST,
) -> List[Tuple[Optional[ast.FunctionDef], ast.Call]]:
    """Every fault-hook call, paired with its enclosing function."""
    found: List[Tuple[Optional[ast.FunctionDef], ast.Call]] = []

    def walk(node: ast.AST, function: Optional[ast.FunctionDef]) -> None:
        for child in ast.iter_child_nodes(node):
            enclosing = function
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                enclosing = child
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id in FAULT_HOOK_NAMES
            ):
                found.append((function, child))
            walk(child, enclosing)

    walk(tree, None)
    return found


def _event_template(node: ast.expr) -> Optional[List[Tuple[str, str]]]:
    """Normalize the event argument to ``[(kind, value), ...]`` parts.

    ``kind`` is ``"text"`` for literal fragments or ``"name"`` for an
    interpolated simple name; returns ``None`` for arguments the
    analyzer cannot decompose (a computed expression).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [("text", node.value)]
    if isinstance(node, ast.JoinedStr):
        parts: List[Tuple[str, str]] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                parts.append(("text", value.value))
            elif isinstance(value, ast.FormattedValue) and isinstance(
                value.value, ast.Name
            ):
                parts.append(("name", value.value.id))
            else:
                parts.append(("name", "?"))
        return parts
    return None


def _expand(
    template: List[Tuple[str, str]],
    function: Optional[ast.FunctionDef],
    tag_values: Dict[str, Set[str]],
) -> Set[str]:
    """Resolve a template's interpolations to concrete names or ``*``."""
    expansions: Set[str] = {""}
    parameters: Set[str] = set()
    if function is not None:
        arguments = function.args
        for arg in (
            *getattr(arguments, "posonlyargs", ()),
            *arguments.args,
            *arguments.kwonlyargs,
        ):
            parameters.add(arg.arg)
    values = tag_values.get(function.name, set()) if function else set()
    for kind, value in template:
        if kind == "text":
            choices = {value}
        elif value == "tag" and value in parameters and values:
            choices = values
        else:
            choices = {"*"}
        expansions = {
            prefix + choice for prefix in expansions for choice in choices
        }
    return expansions


def _tag_values_by_function(tree: ast.AST) -> Dict[str, Set[str]]:
    """Constant ``tag=`` arguments at each function's call sites."""
    values: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Name):
            continue
        for keyword in node.keywords:
            if keyword.arg == "tag" and isinstance(keyword.value, ast.Constant):
                if isinstance(keyword.value.value, str):
                    values.setdefault(node.func.id, set()).add(
                        keyword.value.value
                    )
    return values
