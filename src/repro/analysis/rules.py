"""The project rule catalog (R001–R006).

Each rule encodes one invariant the serving stack's correctness
arguments lean on; the catalog is documented for humans in
``docs/architecture.md``.  Module rules take a parsed
:class:`~repro.analysis.engine.Module`; the project rule R003 takes the
whole module list.
"""

from __future__ import annotations

import ast
import re
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Set, Tuple

from .engine import Module, Violation
from .faultpoints import discover_in_tree

GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*)")
CALLER_HOLDS_RE = re.compile(r"#\s*caller-holds:\s*([A-Za-z_][\w,\s]*)")

# Wall-clock/sleep calls banned outside the injectable-Clock seam.  The
# serving stack schedules purely against ``Clock.now()`` so tests and
# chaos runs replay deterministically on FakeClock; ``time.perf_counter``
# stays legal (pure duration measurement, no scheduling authority).
FORBIDDEN_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.sleep",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

CLOCK_EXEMPT_FILES = ("serving/clock.py",)

# The one blessed home for serving-layer error types.
SERVING_ERRORS_FILE = "serving/errors.py"
BANNED_RAISE_TYPES = frozenset(
    {"RuntimeError", "Exception", "BaseException", "OSError", "IOError",
     "EnvironmentError"}
)


# ---------------------------------------------------------------------------
# Shared helpers


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name → canonical dotted prefix for clock-relevant imports."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name in ("time", "datetime"):
                    aliases[name.asname or name.name] = name.name
        elif isinstance(node, ast.ImportFrom) and node.module in (
            "time",
            "datetime",
        ):
            for name in node.names:
                canonical = f"{node.module}.{name.name}"
                aliases[name.asname or name.name] = canonical
    return aliases


def _dotted_parts(node: ast.expr) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _forbidden_clock_calls(module: Module) -> List[Tuple[int, str]]:
    """``(line, canonical_name)`` for every banned wall-clock call."""
    aliases = _import_aliases(module.tree)
    hits: List[Tuple[int, str]] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted_parts(node.func)
        if not parts:
            continue
        canonical = aliases.get(parts[0])
        if canonical is None:
            continue
        full = ".".join([canonical, *parts[1:]])
        if full in FORBIDDEN_CLOCK_CALLS:
            hits.append((node.lineno, full))
    return hits


# ---------------------------------------------------------------------------
# R001 / R005 — clock discipline


def rule_r001_clock_discipline(module: Module) -> List[Violation]:
    """Library code schedules via the injectable Clock, never the OS."""
    if module.role != "src":
        return []
    if module.rel.endswith(CLOCK_EXEMPT_FILES):
        return []
    return [
        Violation(
            "R001",
            module.rel,
            line,
            f"{name}() outside serving/clock.py — route timing through the "
            "injectable Clock or waive with a documented rationale",
        )
        for line, name in _forbidden_clock_calls(module)
    ]


def rule_r005_deterministic_tests(module: Module) -> List[Violation]:
    """Tier-1 tests run on FakeClock: no real sleeps or wall clocks."""
    if module.role != "tests":
        return []
    return [
        Violation(
            "R005",
            module.rel,
            line,
            f"{name}() in tier-1 tests — drive time with FakeClock.advance "
            "so the suite stays deterministic and sleep-free",
        )
        for line, name in _forbidden_clock_calls(module)
    ]


# ---------------------------------------------------------------------------
# R002 — lock discipline


def _guarded_attributes(
    klass: ast.ClassDef, module: Module
) -> Dict[str, str]:
    """Attribute → lock name, from GuardedBy descriptors and comments."""
    guarded: Dict[str, str] = {}
    for statement in klass.body:
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
            and isinstance(statement.value, ast.Call)
        ):
            callee = statement.value.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute) else ""
            )
            if name == "GuardedBy" and statement.value.args:
                lock = statement.value.args[0]
                if isinstance(lock, ast.Constant) and isinstance(
                    lock.value, str
                ):
                    guarded[statement.targets[0].id] = lock.value
    init = _method(klass, "__init__")
    if init is not None:
        for node in ast.walk(init):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                target = node.target
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                match = GUARDED_BY_RE.search(module.comment_on(node.lineno))
                if match:
                    guarded[target.attr] = match.group(1)
    return guarded


def _method(klass: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for statement in klass.body:
        if (
            isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
            and statement.name == name
        ):
            return statement
    return None


def _caller_holds(function: ast.FunctionDef, module: Module) -> Set[str]:
    """Locks a ``# caller-holds:`` annotation says are already held.

    The annotation may trail the ``def`` line (anywhere down to the
    first body statement) or sit on comment lines directly above the
    ``def`` / its decorators.
    """
    start = function.lineno
    if function.decorator_list:
        start = min(start, *(d.lineno for d in function.decorator_list))
    end = function.body[0].lineno if function.body else function.lineno
    lines = list(range(start, end + 1))
    above = start - 1
    while above >= 1 and above in module.comments:
        lines.append(above)
        above -= 1
    held: Set[str] = set()
    for line in lines:
        match = CALLER_HOLDS_RE.search(module.comment_on(line))
        if match:
            held.update(
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            )
    return held


class _LockScopeVisitor(ast.NodeVisitor):
    """Walk a method body tracking which ``with self.<lock>`` blocks are
    lexically open, flagging guarded-attribute touches outside them."""

    def __init__(
        self,
        guarded: Dict[str, str],
        lock_names: Set[str],
        held: Set[str],
        module: Module,
    ):
        self.guarded = guarded
        self.lock_names = lock_names
        self.held = set(held)
        self.module = module
        self.violations: List[Violation] = []

    def _self_attr(self, node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node) -> None:
        granted = []
        for item in node.items:
            attr = self._self_attr(item.context_expr)
            if attr is not None and attr in self.lock_names:
                if attr not in self.held:
                    granted.append(attr)
                    self.held.add(attr)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for statement in node.body:
            self.visit(statement)
        for attr in granted:
            self.held.discard(attr)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self._self_attr(node)
        if attr is not None and attr in self.guarded:
            needed = self.guarded[attr]
            if needed not in self.held:
                self.violations.append(
                    Violation(
                        "R002",
                        self.module.rel,
                        node.lineno,
                        f"self.{attr} touched without holding {needed} "
                        f"(declared guarded-by {needed})",
                    )
                )
        self.generic_visit(node)


def rule_r002_lock_discipline(module: Module) -> List[Violation]:
    """Attributes declared guarded-by a lock are only touched under it.

    Guard declarations are lexical: a ``# guarded-by: _lock`` comment on
    the ``__init__`` assignment, or a class-level ``GuardedBy("_lock")``
    descriptor.  ``__init__`` itself is exempt (single-threaded
    construction); helpers called with the lock held declare it with
    ``# caller-holds: _lock`` on the ``def`` line.
    """
    violations: List[Violation] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guarded = _guarded_attributes(node, module)
        if not guarded:
            continue
        lock_names = set(guarded.values())
        for statement in node.body:
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if statement.name == "__init__":
                continue
            visitor = _LockScopeVisitor(
                guarded,
                lock_names,
                _caller_holds(statement, module),
                module,
            )
            for child in statement.body:
                visitor.visit(child)
            violations.extend(visitor.violations)
    return violations


# ---------------------------------------------------------------------------
# R003 — fault-point coverage (project rule)


def rule_r003_fault_point_coverage(
    modules: List[Module],
) -> List[Violation]:
    """Every ``_fault(...)`` seam is pinned by at least one test literal.

    The crash sweep enumerates seams dynamically via
    ``record_fault_points``, so drift hides easily: a new seam silently
    joins the sweep without any test asserting it exists.  This rule
    statically recovers the seam set and requires each name to be
    matched (``fnmatch`` either direction) by a string literal somewhere
    under ``tests/`` — in practice the golden set in the drift test plus
    the targeted crash-at literals.
    """
    serialization = next(
        (
            m
            for m in modules
            if m.role == "src" and m.rel.endswith("core/serialization.py")
        ),
        None,
    )
    if serialization is None:
        return []
    seams = discover_in_tree(serialization.tree)
    violations: List[Violation] = []
    if not seams:
        return [
            Violation(
                "R003",
                serialization.rel,
                1,
                "no _fault(...) seams found — the durability protocol "
                "lost its crash instrumentation",
            )
        ]
    literals: Set[str] = set()
    for module in modules:
        if module.role != "tests":
            continue
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                literals.add(node.value)
    for pattern, line in seams:
        covered = any(
            literal == pattern
            or fnmatchcase(literal, pattern)
            or fnmatchcase(pattern, literal)
            for literal in literals
        )
        if not covered:
            violations.append(
                Violation(
                    "R003",
                    serialization.rel,
                    line,
                    f"fault point {pattern!r} is not referenced by any "
                    "crash-sweep test — add it to the drift test's golden "
                    "seam set",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# R004 — serving error taxonomy


def rule_r004_error_taxonomy(module: Module) -> List[Violation]:
    """Serving code raises typed errors, not bare stdlib RuntimeErrors.

    Callers key recovery decisions off the ``serving/errors.py`` types
    (backpressure vs. crash vs. quarantine), so an untyped raise is a
    control-flow hole.  Value/Type/Key errors stay legal — misuse of an
    API is not a serving condition.
    """
    if module.role != "src" or "serving/" not in module.rel:
        return []
    if module.rel.endswith(SERVING_ERRORS_FILE):
        return []
    violations: List[Violation] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name in BANNED_RAISE_TYPES:
            violations.append(
                Violation(
                    "R004",
                    module.rel,
                    node.lineno,
                    f"raise {name} in serving code — use a typed error "
                    "from serving/errors.py so callers can key recovery "
                    "off the exception type",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# R006 — replay kernel discipline


#: Modules on the replay hot path where per-iteration loops are policed.
KERNEL_DISCIPLINE_FILES = ("core/replay_plan.py", "core/kernels.py")

#: Call names that mark a loop body as doing matrix products.
MATRIX_PRODUCT_CALLS = frozenset({"einsum", "dot", "matmul"})


def _is_range_for(node: ast.AST) -> bool:
    if not isinstance(node, ast.For):
        return False
    if not isinstance(node.iter, ast.Call):
        return False
    parts = _dotted_parts(node.iter.func)
    return parts is not None and parts[-1] == "range"


def _has_matrix_product(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.MatMult):
            return True
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            else:
                continue
            if name in MATRIX_PRODUCT_CALLS:
                return True
    return False


def rule_r006_kernel_discipline(module: Module) -> List[Violation]:
    """Replay-path iteration loops must go through the blocked kernel.

    ``kernels.run_blocked`` replays hit-free spans as a handful of large
    GEMMs; a new ``for t in range(...)`` loop doing matrix products on
    the replay path silently reverts that span to dispatch-bound skinny
    products.  The sanctioned per-iteration fallbacks (hit handling,
    sparse segments, compile-time composition) carry explicit waivers
    with their rationale; anything unwaived is a regression.

    Only the *outermost* offending loop is flagged — nested loops inside
    it are part of the same finding, not separate ones.
    """
    if module.role != "src":
        return []
    if not module.rel.endswith(KERNEL_DISCIPLINE_FILES):
        return []
    violations: List[Violation] = []

    def visit(node: ast.AST) -> None:
        if _is_range_for(node) and _has_matrix_product(node):
            violations.append(
                Violation(
                    "R006",
                    module.rel,
                    node.lineno,
                    "per-iteration range loop with matrix products on the "
                    "replay path — route hit-free spans through "
                    "kernels.run_blocked or waive as a sanctioned scalar "
                    "fallback",
                )
            )
            return
        for child in ast.iter_child_nodes(node):
            visit(child)

    visit(module.tree)
    return violations


MODULE_RULES = {
    "R001": rule_r001_clock_discipline,
    "R002": rule_r002_lock_discipline,
    "R004": rule_r004_error_taxonomy,
    "R005": rule_r005_deterministic_tests,
    "R006": rule_r006_kernel_discipline,
}

PROJECT_RULES = {
    "R003": rule_r003_fault_point_coverage,
}
