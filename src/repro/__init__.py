"""repro — a full reproduction of PrIU (Wu, Tannen & Davidson, SIGMOD 2020).

PrIU treats trained regression models as materialized views over their
training data and uses provenance-semiring machinery, extended to linear
algebra, to *incrementally delete* training samples: the post-deletion model
is produced without retraining, up to two orders of magnitude faster, while
matching the retrained model's accuracy.

Public entry points
-------------------
:class:`repro.IncrementalTrainer`
    Train once with provenance capture; delete subsets many times
    (checkpoint round-trip via ``save_checkpoint``/``from_checkpoint``).
:class:`repro.DeletionServer` / :class:`repro.AdmissionPolicy`
    The serving layer: an admission-batched request queue over the
    compiled replay engine (:mod:`repro.serving`), with SLA lanes.
:class:`repro.FleetServer` / :class:`repro.ModelRegistry`
    The multi-model tier: many checkpoints behind one shared worker
    pool, loaded lazily and LRU-evicted under a memory cap.
:class:`repro.ShardRouter`
    The cross-process tier: model ids consistent-hashed across N shard
    worker processes (each a fleet of its own), sharing one read-only
    plan mapping, with shard-granularity failover and mergeable stats.
:class:`repro.CostModel` / :class:`repro.CostEstimate`
    The calibrated per-request cost estimator: predicts a removal's
    footprint from the packed occurrence index and drives
    refresh-vs-recompile, batch closing and maintenance-aware eviction.
:mod:`repro.provenance`
    The provenance-polynomial semiring and annotated-matrix algebra.
:mod:`repro.models`
    GBM training, closed-form and influence-function baselines.
:mod:`repro.datasets`
    Synthetic analogues of the paper's six evaluation datasets.
:mod:`repro.eval`
    The paper's accuracy / distance / similarity metrics, plus timing.
"""

from .core.api import IncrementalTrainer, UpdateOutcome
from .core.costmodel import Calibration, CostEstimate, CostModel
from .core.maintenance import (
    MaintenanceCost,
    MaintenancePolicy,
    MaintenanceReport,
)
from .serving import (
    AdmissionPolicy,
    DeletionServer,
    FleetServer,
    Lane,
    ModelRegistry,
    ShardRouter,
)

__version__ = "1.5.0"

__all__ = [
    "AdmissionPolicy",
    "Calibration",
    "CostEstimate",
    "CostModel",
    "DeletionServer",
    "FleetServer",
    "IncrementalTrainer",
    "Lane",
    "MaintenanceCost",
    "MaintenancePolicy",
    "MaintenanceReport",
    "ModelRegistry",
    "ShardRouter",
    "UpdateOutcome",
    "__version__",
]
