"""Rendering and persistence of benchmark results.

Every harness invocation appends its formatted tables to
``results/<experiment>.txt`` so EXPERIMENTS.md can be assembled from real
runs; the same text is printed for interactive use.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..eval.comparison import format_table

RESULTS_DIR = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))


def render(title: str, rows: list[dict], columns: list[str] | None = None) -> str:
    body = format_table(rows, columns)
    bar = "=" * max(len(title), 8)
    return f"{bar}\n{title}\n{bar}\n{body}\n"


def save(name: str, text: str) -> Path:
    """Write (overwrite) a result artifact and return its path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    return path


def report(name: str, title: str, rows: list[dict], columns=None, echo=True) -> str:
    """Render, persist and (optionally) print one result table."""
    text = render(title, rows, columns)
    save(name, text)
    if echo:
        print(text)
    return text
