"""Benchmark harness: configs (Table 2), runner, reporting."""

from .configs import CONFIGS, DELETION_RATES, ExperimentConfig, get
from .runner import (
    FittedWorkload,
    accuracy_rows,
    available_methods,
    batched_deletion_rows,
    dataset_summary_rows,
    memory_row,
    prepare_workload,
    repeated_deletion_rows,
    run_update,
    sweep_update_times,
)

__all__ = [
    "CONFIGS",
    "DELETION_RATES",
    "ExperimentConfig",
    "FittedWorkload",
    "accuracy_rows",
    "available_methods",
    "batched_deletion_rows",
    "dataset_summary_rows",
    "get",
    "memory_row",
    "prepare_workload",
    "repeated_deletion_rows",
    "run_update",
    "sweep_update_times",
]
