"""Benchmark harness: configs (Table 2), runner, reporting.

Key entry points: :data:`CONFIGS` / :func:`get` name every experiment of
Sec. 6 as an :class:`ExperimentConfig` (dataset analogue + scaled
hyperparameters); :func:`prepare_workload` fits one into a
:class:`FittedWorkload`; the ``*_rows`` producers
(:func:`sweep_update_times`, :func:`accuracy_rows`,
:func:`repeated_deletion_rows`, :func:`batched_deletion_rows`,
:func:`serving_rows`, :func:`fleet_rows`, :func:`refresh_rows`,
:func:`maintenance_rows`, :func:`memory_row`) generate the rows behind
each figure/table and behind ``BENCH_batched.json`` /
``BENCH_serving.json`` / ``BENCH_refresh.json`` / ``BENCH_fleet.json`` /
``BENCH_maintenance.json``.
``python -m repro.bench.run_all`` regenerates everything.
"""

from .configs import CONFIGS, DELETION_RATES, ExperimentConfig, get
from .runner import (
    FittedWorkload,
    accuracy_rows,
    available_methods,
    batched_deletion_rows,
    dataset_summary_rows,
    fleet_rows,
    maintenance_rows,
    memory_row,
    prepare_workload,
    refresh_rows,
    repeated_deletion_rows,
    run_update,
    serving_rows,
    sweep_update_times,
)

__all__ = [
    "CONFIGS",
    "DELETION_RATES",
    "ExperimentConfig",
    "FittedWorkload",
    "accuracy_rows",
    "available_methods",
    "batched_deletion_rows",
    "dataset_summary_rows",
    "fleet_rows",
    "get",
    "maintenance_rows",
    "memory_row",
    "prepare_workload",
    "refresh_rows",
    "repeated_deletion_rows",
    "run_update",
    "serving_rows",
    "sweep_update_times",
]
