"""Experiment runner: produces the rows/series behind each table and figure.

The same entry points back both the pytest-benchmark targets under
``benchmarks/`` and the standalone harness (``python -m repro.bench.run_all``).

Measurement protocol (Sec. 6.2 "Incrementality"): provenance collection is
offline and excluded; *update time* is the time from receiving the removal
set to producing the updated parameter vector, for each of

    BaseL (retraining), PrIU, PrIU-opt, Closed-form (linear only), INFL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.api import IncrementalTrainer
from ..datasets.corruption import inject_dirty, random_subsets
from ..datasets.synthetic import Dataset
from ..eval.comparison import compare_updated_models
from ..eval.memory import MemoryReport, memory_report
from ..eval.timing import measure
from .configs import ExperimentConfig


@dataclass
class FittedWorkload:
    """A config + dataset + fitted trainer, ready for update measurements."""

    config: ExperimentConfig
    dataset: Dataset
    trainer: IncrementalTrainer
    dirty_indices: np.ndarray | None = None

    @property
    def n_samples(self) -> int:
        return self.dataset.features.shape[0]

    def subset(self, deletion_rate: float, seed: int = 0) -> np.ndarray:
        """A random removal set of the requested rate."""
        rng = np.random.default_rng(seed)
        size = max(1, int(round(deletion_rate * self.n_samples)))
        return np.sort(rng.choice(self.n_samples, size=size, replace=False))


def prepare_workload(
    config: ExperimentConfig,
    dirty_rate: float | None = None,
    seed: int = 0,
) -> FittedWorkload:
    """Fit the initial model (offline phase) over clean or dirtied data.

    With ``dirty_rate`` the cleaning scenario is simulated: that fraction of
    the training samples is corrupted before training, and the corrupted ids
    become the canonical removal set.
    """
    dataset = config.load()
    features, labels = dataset.features, dataset.labels
    dirty_indices = None
    if dirty_rate is not None:
        dirty = inject_dirty(features, labels, dirty_rate, seed=seed)
        features, labels = dirty.features, dirty.labels
        dirty_indices = dirty.dirty_indices
    trainer = IncrementalTrainer(seed=seed, **config.trainer_kwargs())
    trainer.fit(features, labels)
    n_params = trainer.objective.n_parameters(features.shape[1])
    if not dataset.is_sparse and n_params <= trainer.opt_feature_limit:
        trainer.prepare_baselines()
    elif config.task == "linear":
        trainer.prepare_baselines()
    return FittedWorkload(
        config=config,
        dataset=Dataset(
            dataset.name,
            features,
            labels,
            dataset.valid_features,
            dataset.valid_labels,
            dataset.task,
            dataset.n_classes,
        ),
        trainer=trainer,
        dirty_indices=dirty_indices,
    )


def available_methods(workload: FittedWorkload, include_infl: bool = True) -> list[str]:
    """Which update methods apply to this workload (mirrors Sec. 6.2)."""
    methods = ["basel", "priu"]
    if workload.trainer._opt is not None:
        methods.append("priu-opt")
    if workload.config.task == "linear":
        methods.append("closed-form")
    large = workload.trainer.objective.n_parameters(
        workload.dataset.n_features
    ) > workload.trainer.opt_feature_limit
    if include_infl and not (workload.dataset.is_sparse or large):
        methods.append("infl")
    return methods


def run_update(workload: FittedWorkload, method: str, removed: np.ndarray) -> np.ndarray:
    """Dispatch one update; returns the updated parameter vector."""
    trainer = workload.trainer
    if method == "basel":
        return trainer.retrain(removed).weights
    if method in ("priu", "priu-opt", "priu-seq"):
        return trainer.remove(removed, method=method).weights
    if method == "closed-form":
        return trainer.closed_form(removed).weights
    if method == "infl":
        return trainer.influence(removed).weights
    raise ValueError(f"unknown method: {method}")


def sweep_update_times(
    workload: FittedWorkload,
    deletion_rates,
    methods: list[str] | None = None,
    repeats: int = 1,
    seed: int = 0,
) -> list[dict]:
    """The update-time series of Figures 1-3: one row per (rate, method)."""
    if methods is None:
        methods = available_methods(workload)
    rows = []
    for rate in deletion_rates:
        removed = workload.subset(rate, seed=seed)
        times = {}
        for method in methods:
            timing = measure(lambda m=method: run_update(workload, m, removed), repeats)
            times[method] = timing.best
        basel = times.get("basel")
        for method in methods:
            rows.append(
                {
                    "experiment": workload.config.name,
                    "deletion_rate": rate,
                    "method": method,
                    "update_seconds": times[method],
                    "speedup_vs_basel": (
                        basel / times[method] if basel else float("nan")
                    ),
                }
            )
    return rows


def accuracy_rows(
    workload: FittedWorkload,
    removed: np.ndarray,
    methods: list[str] | None = None,
) -> list[dict]:
    """Table 4 rows: validation metric, distance and similarity vs BaseL."""
    if methods is None:
        methods = [m for m in available_methods(workload) if m != "basel"]
    reference = run_update(workload, "basel", removed)
    objective = workload.trainer.objective
    rows = []
    for method in methods:
        candidate = run_update(workload, method, removed)
        comparison = compare_updated_models(
            method,
            objective,
            reference,
            candidate,
            workload.dataset.valid_features,
            workload.dataset.valid_labels,
        )
        row = {"experiment": workload.config.name, **comparison.row()}
        rows.append(row)
    return rows


def repeated_deletion_rows(
    workload: FittedWorkload,
    n_subsets: int = 10,
    deletion_rate: float = 0.001,
    methods: list[str] | None = None,
    seed: int = 0,
) -> list[dict]:
    """Figure 4: total time to serve ``n_subsets`` independent removals."""
    if methods is None:
        methods = [m for m in available_methods(workload, include_infl=False)]
    subsets = random_subsets(workload.n_samples, n_subsets, deletion_rate, seed=seed)
    rows = []
    for method in methods:
        total = 0.0
        for subset in subsets:
            timing = measure(lambda: run_update(workload, method, subset), repeats=1)
            total += timing.best
        rows.append(
            {
                "experiment": workload.config.name,
                "method": method,
                "n_subsets": n_subsets,
                "deletion_rate": deletion_rate,
                "total_seconds": total,
            }
        )
    basel_total = next(
        (r["total_seconds"] for r in rows if r["method"] == "basel"), None
    )
    for row in rows:
        row["speedup_vs_basel"] = (
            basel_total / row["total_seconds"] if basel_total else float("nan")
        )
    return rows


def batched_deletion_rows(
    workload: FittedWorkload,
    n_subsets: int = 10,
    deletion_rate: float = 0.001,
    method: str = "priu",
    seed: int = 0,
    repeats: int = 1,
) -> list[dict]:
    """Concurrent unlearning requests: ``remove_many`` vs sequential paths.

    Serves the same ``n_subsets`` removal sets three ways — the uncompiled
    seed path one request at a time (``priu-seq``), the compiled ReplayPlan
    one request at a time, and all K requests through one batched
    ``remove_many`` call — and reports total wall-clock plus the max
    parameter deviation of the batched result from the sequential seed
    path (which must sit at numerical noise).
    """
    trainer = workload.trainer
    subsets = random_subsets(workload.n_samples, n_subsets, deletion_rate, seed=seed)
    # Only "priu" has a distinct uncompiled reference path; for other
    # methods the sequential baseline is the method itself, one-by-one.
    sequential_method = "priu-seq" if method == "priu" else method

    def run_sequential(m: str) -> list[np.ndarray]:
        return [trainer.remove(s, method=m).weights for s in subsets]

    seq_timing = measure(lambda: run_sequential(sequential_method), repeats)
    batched_timing = measure(
        lambda: trainer.remove_many(subsets, method=method), repeats
    )
    reference = run_sequential(sequential_method)
    batched = trainer.remove_many(subsets, method=method)
    deviation = max(
        float(np.max(np.abs(out.weights - ref))) if ref.size else 0.0
        for out, ref in zip(batched, reference)
    )
    timed = [(f"{sequential_method} (sequential seed path)", seq_timing, None)]
    if sequential_method != method:
        single_timing = measure(lambda: run_sequential(method), repeats)
        timed.append(
            (f"{method} (compiled plan, one-by-one)", single_timing, None)
        )
    timed.append((f"{method} (remove_many, batched)", batched_timing, deviation))
    rows = []
    for label, timing, row_deviation in timed:
        rows.append(
            {
                "experiment": workload.config.name,
                "method": label,
                "n_subsets": n_subsets,
                "deletion_rate": deletion_rate,
                "total_seconds": timing.best,
                "speedup_vs_sequential": seq_timing.best / timing.best,
                # Only the batched row was checked against the sequential
                # reference; the other rows carry no measured deviation.
                "max_abs_deviation": row_deviation,
            }
        )
    return rows


def refresh_rows(
    workload: FittedWorkload,
    deletion_rate: float = 0.001,
    repeats: int = 3,
    seed: int = 0,
) -> list[dict]:
    """Commit cost: incremental ``ReplayPlan.refresh`` vs full recompile.

    Both timed paths fold the same removal into a deep copy of the fitted
    store (``compact`` + survivor slicing + plan re-sync); they differ only
    in how the compiled plan catches up — patching the affected rows/slots
    in place versus rebuilding the whole SoA layout.  The two committed
    plans must then answer a fresh query identically (asserted by the
    benchmark at atol 1e-10).  The measured speedup is what
    ``plan_refresh_threshold`` trades on.
    """
    import copy

    from ..core.provenance_store import remap_surviving_ids
    from ..core.replay_plan import ReplayPlan

    trainer = workload.trainer
    features, labels = trainer.features, trainer.labels
    removed = workload.subset(deletion_rate, seed=seed)
    survivors = np.delete(np.arange(workload.n_samples), removed)
    probe_old = np.delete(survivors, slice(0, None, 2))[:8]
    probe = remap_surviving_ids(probe_old, removed)

    timings: dict[str, list[float]] = {"refresh": [], "recompile": []}
    compact_samples: list[float] = []
    plans: dict[str, object] = {}
    receipts: dict[str, dict] = {}
    # One untimed warm-up round: the first pass through freshly deep-copied
    # provenance pays page faults that a long-lived serving process never
    # sees; round -1's samples are discarded.
    for round_index in range(-1, repeats):
        # Both plans compile against the same store copy before the one
        # compaction; only the catch-up strategy differs, so only it is
        # timed per mode (the compact + survivor slicing is shared and
        # unavoidable — reported as its own column).
        store = copy.deepcopy(trainer.store)
        modes = {
            "refresh": ReplayPlan(store, features, labels),
            "recompile": ReplayPlan(store, features, labels),
        }
        start = time.perf_counter()
        stats = store.compact(removed, features, labels)
        reduced_features = features[survivors]
        reduced_labels = labels[survivors]
        compact_seconds = time.perf_counter() - start
        if round_index >= 0:
            compact_samples.append(compact_seconds)
        # threshold -1.0 (not 0.0): refresh() recompiles on fraction >
        # threshold, and a removal touching zero iterations has fraction
        # 0.0 — the recompile row must still recompile.
        for mode, threshold in (("refresh", 1.0), ("recompile", -1.0)):
            plan = modes[mode]
            start = time.perf_counter()
            receipt = plan.refresh(
                stats,
                reduced_features,
                reduced_labels,
                recompile_threshold=threshold,
            )
            if round_index >= 0:
                timings[mode].append(time.perf_counter() - start)
            plans[mode] = plan
            receipts[mode] = receipt
    deviation = float(
        np.max(
            np.abs(
                plans["refresh"].run_single(probe)
                - plans["recompile"].run_single(probe)
            )
        )
    )
    best = {mode: min(samples) for mode, samples in timings.items()}
    rows = []
    for mode in ("refresh", "recompile"):
        rows.append(
            {
                "experiment": workload.config.name,
                "mode": mode,
                "deletion_rate": deletion_rate,
                "n_removed": int(removed.size),
                "fraction_iterations_touched": receipts[mode]["fraction"],
                "plan_sync_seconds": best[mode],
                "compact_seconds": min(compact_samples),
                "speedup_vs_recompile": best["recompile"] / best[mode],
                "max_abs_deviation": deviation if mode == "refresh" else None,
            }
        )
    return rows


def serving_rows(
    workload: FittedWorkload,
    n_requests: int = 16,
    deletion_rate: float = 0.001,
    method: str = "priu",
    seed: int = 0,
    repeats: int = 3,
    max_delay_seconds: float = 0.05,
) -> tuple[list[dict], dict]:
    """Queued single-request serving vs one ``remove_many`` call in hand.

    The acceptance bar for the serving layer: submitting ``n_requests``
    removal sets one at a time through a :class:`~repro.serving
    .DeletionServer` (which must coalesce them itself) should cost close to
    the one-shot batched call a caller with all K requests in hand would
    make.  The server is started *after* the queue is pre-loaded so the
    dispatch is a deterministic single batch and the measured gap is pure
    queueing overhead.  Returns ``(rows, stats)`` where ``stats`` is the
    last served run's :meth:`~repro.serving.ServingStats.as_dict`.
    """
    from ..serving import AdmissionPolicy, DeletionServer

    trainer = workload.trainer
    subsets = random_subsets(
        workload.n_samples, n_requests, deletion_rate, seed=seed
    )
    direct_timing = measure(
        lambda: trainer.remove_many(subsets, method=method), repeats
    )
    policy = AdmissionPolicy(
        max_batch=n_requests, max_delay_seconds=max_delay_seconds
    )
    last: dict = {}

    def serve_queued() -> None:
        server = DeletionServer(
            trainer, policy, method=method, autostart=False
        )
        futures = [server.submit(subset) for subset in subsets]
        server.start()
        server.flush()
        server.close()
        last["outcomes"] = [f.result() for f in futures]
        last["stats"] = server.stats()

    served_timing = measure(serve_queued, repeats)
    reference = trainer.remove_many(subsets, method=method)
    deviation = max(
        float(np.max(np.abs(out.weights - ref.weights)))
        for out, ref in zip(last["outcomes"], reference)
    )
    rows = [
        {
            "experiment": workload.config.name,
            "method": f"{method} (remove_many, all {n_requests} in hand)",
            "n_requests": n_requests,
            "total_seconds": direct_timing.best,
            "seconds_per_request": direct_timing.best / n_requests,
            "ratio_vs_remove_many": 1.0,
            "max_abs_deviation": None,
        },
        {
            "experiment": workload.config.name,
            "method": "DeletionServer (queued single submissions)",
            "n_requests": n_requests,
            "total_seconds": served_timing.best,
            "seconds_per_request": served_timing.best / n_requests,
            "ratio_vs_remove_many": served_timing.best / direct_timing.best,
            "max_abs_deviation": deviation,
        },
    ]
    return rows, last["stats"].as_dict()


def fleet_rows(
    workloads: list[FittedWorkload],
    n_bulk_per_model: int = 8,
    n_deadline: int = 6,
    deletion_rate: float = 0.001,
    method: str = "priu",
    seed: int = 0,
    max_delay_seconds: float = 0.25,
    n_workers: int = 2,
) -> tuple[list[dict], dict]:
    """N models × mixed-lane traffic through one :class:`FleetServer`.

    The SLA acceptance bar for the fleet: with a generous bulk coalescing
    budget (``max_delay_seconds``), bulk requests wait out their batching
    delay while ``deadline``-lane requests pre-empt it — so the
    deadline lane's p99 end-to-end latency must land *below* the bulk
    lane's p50.  Bulk traffic is spread across every model; deadline
    traffic targets the first (its queued bulk rides those batches for
    free — the remaining models prove the coalescing delay is real).
    Returns ``(rows, stats)`` where ``rows`` has one entry per lane and
    ``stats`` is the fleet-wide
    :meth:`~repro.serving.ServingStats.as_dict`.
    """
    from ..serving import AdmissionPolicy, FleetServer, ModelRegistry

    registry = ModelRegistry()
    model_ids = []
    for workload in workloads:
        registry.register(workload.config.name, trainer=workload.trainer)
        model_ids.append(workload.config.name)
    policy = AdmissionPolicy(
        max_batch=max(64, n_bulk_per_model + n_deadline),
        max_delay_seconds=max_delay_seconds,
    )
    by_model = {w.config.name: w for w in workloads}
    outcomes = []
    with FleetServer(
        registry, policy, method=method, n_workers=n_workers
    ) as fleet:
        futures = []
        # Deadline traffic first: it dispatches in small immediate batches
        # (lane delay 0), so its measured tail is queue-jump + service —
        # not the cost of hauling a coalesced bulk batch along.
        urgent_subsets = random_subsets(
            by_model[model_ids[0]].n_samples,
            n_deadline,
            deletion_rate,
            seed=seed + 1000,
        )
        futures.extend(
            (model_ids[0], subset, fleet.submit(model_ids[0], subset, lane="deadline"))
            for subset in urgent_subsets
        )
        for offset, model_id in enumerate(model_ids):
            subsets = random_subsets(
                by_model[model_id].n_samples,
                n_bulk_per_model,
                deletion_rate,
                seed=seed + offset,
            )
            futures.extend(
                (model_id, subset, fleet.submit(model_id, subset))
                for subset in subsets
            )
        outcomes = [
            (model_id, subset, future.result(timeout=120))
            for model_id, subset, future in futures
        ]
        stats = fleet.stats()
    # Numerics: fleet answers must match direct single-request serving.
    deviation = max(
        float(
            np.max(
                np.abs(
                    outcome.weights
                    - by_model[model_id].trainer.remove(
                        subset, method=method
                    ).weights
                )
            )
        )
        for model_id, subset, outcome in outcomes[:: max(1, len(outcomes) // 6)]
    )
    rows = []
    for lane_name in ("deadline", "bulk"):
        lane = stats.lane(lane_name)
        if lane.latency is None:
            continue
        rows.append(
            {
                "experiment": f"fleet[{len(model_ids)} models]",
                "method": f"FleetServer {lane_name} lane",
                "lane": lane_name,
                "n_requests": lane.answered,
                "wait_p50": lane.wait.p50,
                "wait_p99": lane.wait.p99,
                "latency_p50": lane.latency.p50,
                "latency_p99": lane.latency.p99,
                "max_abs_deviation": deviation,
            }
        )
    return rows, stats.as_dict()


def maintenance_rows(
    workload: FittedWorkload,
    n_commits: int = 200,
    removals_per_commit: int = 1,
    maintain_every: int = 20,
    sample_every: int = 10,
    seed: int = 0,
    svd_epsilon: float | None = None,
) -> tuple[list[dict], dict]:
    """Commit churn with and without plan maintenance (ISSUE 5).

    Runs the *same* ``n_commits``-commit deletion stream (seeded, so both
    modes remove identical samples) against two deep copies of the fitted
    trainer: one never maintained, one calling
    :meth:`~repro.core.api.IncrementalTrainer.maintain` every
    ``maintain_every`` commits.  Records the serving-resident footprint
    (store + compiled plan bytes) over the run, per-commit service
    latency percentiles, and the final maintenance cost — the
    unmaintained footprint grows monotonically (SVD correction columns,
    slot-map garbage) while the maintained one stays bounded.

    ``svd_epsilon`` selects the re-truncation criterion: ``None`` keeps
    the operator to machine precision (answers agree at atol 1e-10, but
    the numerical rank of an exactly-corrected ε-truncated summary
    legitimately grows toward the full dimension, so bytes only plateau
    there); the store's own ε applies the paper's Theorem-6 tail-ratio
    criterion — widths return to the fresh-compile regime (bytes flat)
    at an ``O(ε)`` answer perturbation whose worst per-summary relative
    bound is surfaced in ``svd_max_relative_error``.  Returns
    ``(rows, extras)`` where ``extras`` carries the byte series and the
    measured maintained-vs-unmaintained deviation.
    """
    import copy

    from ..core.maintenance import MaintenancePolicy
    from ..eval.timing import percentile
    from ..linalg.svd import TruncatedSummary

    policy = MaintenancePolicy(svd_epsilon=svd_epsilon)
    rows: list[dict] = []
    series: dict[str, dict] = {}
    finals: dict[str, object] = {}
    for mode in ("unmaintained", "maintained"):
        trainer = copy.deepcopy(workload.trainer)
        # Keep the incremental-refresh path hot: a recompile would reclaim
        # plan garbage as a side effect and mask what maintenance does.
        trainer.plan_refresh_threshold = 1.0
        rng = np.random.default_rng(seed)
        latencies: list[float] = []
        commits_axis: list[int] = []
        bytes_series: list[int] = []
        maintain_seconds = 0.0
        maintain_runs = 0
        max_relative_error = 0.0
        committed = 0

        def run_maintenance() -> None:
            nonlocal maintain_seconds, maintain_runs, max_relative_error
            start = time.perf_counter()
            report = trainer.maintain(policy)
            maintain_seconds += time.perf_counter() - start
            maintain_runs += 1
            if report.svd is not None:
                max_relative_error = max(
                    max_relative_error, report.svd["max_relative_error"]
                )

        for i in range(n_commits):
            if trainer.n_samples <= removals_per_commit + 1:
                break
            ids = np.sort(
                rng.choice(
                    trainer.n_samples, size=removals_per_commit, replace=False
                )
            )
            start = time.perf_counter()
            trainer.remove(ids, method="priu", commit=True)
            latencies.append(time.perf_counter() - start)
            committed += 1
            if mode == "maintained" and (i + 1) % maintain_every == 0:
                run_maintenance()
            if (i + 1) % sample_every == 0 or i == n_commits - 1:
                commits_axis.append(i + 1)
                bytes_series.append(
                    int(trainer.store.nbytes() + trainer.plan_nbytes())
                )
        if mode == "maintained":
            # Settle any garbage accumulated after the last scheduled run
            # so the final figures describe the steady maintained state.
            run_maintenance()
            bytes_series[-1] = int(
                trainer.store.nbytes() + trainer.plan_nbytes()
            )
        cost = trainer.maintenance_cost()
        widths = [
            record.summary.rank
            for record in trainer.store.records
            if isinstance(record.summary, TruncatedSummary)
        ]
        rows.append(
            {
                "experiment": workload.config.name,
                "mode": mode,
                "n_commits": committed,
                "removals_per_commit": removals_per_commit,
                "maintain_every": maintain_every if mode == "maintained" else None,
                "commit_p50_seconds": percentile(latencies, 0.50),
                "commit_p99_seconds": percentile(latencies, 0.99),
                "serving_bytes_first": bytes_series[0],
                "serving_bytes_final": bytes_series[-1],
                "serving_bytes_peak": max(bytes_series),
                "plan_bytes_final": trainer.plan_nbytes(),
                "svd_max_width": max(widths) if widths else 0,
                "svd_correction_columns": cost.svd_correction_columns,
                "svd_max_relative_error": max_relative_error,
                "slot_garbage_rows": cost.slot_garbage_rows,
                "maintain_runs": maintain_runs,
                "maintain_seconds_total": maintain_seconds,
            }
        )
        series[mode] = {
            "commits": commits_axis,
            "serving_bytes": bytes_series,
        }
        finals[mode] = trainer
    maintained = finals["maintained"]
    unmaintained = finals["unmaintained"]
    probe = np.arange(min(8, maintained.n_samples - 1), dtype=np.int64)
    deviation = float(
        np.max(
            np.abs(
                maintained.remove(probe, method="priu").weights
                - unmaintained.remove(probe, method="priu").weights
            )
        )
    )
    return rows, {"series": series, "max_abs_deviation": deviation}


def memory_row(workload: FittedWorkload) -> MemoryReport:
    """Table 3 row for one configuration."""
    trainer = workload.trainer
    opt_bytes = None
    if trainer._opt is not None and hasattr(trainer._opt, "nbytes"):
        opt_bytes = trainer._opt.nbytes()
    elif trainer._opt is not None:
        opt_bytes = 0
    return memory_report(
        workload.config.name,
        workload.dataset.features,
        workload.dataset.labels,
        trainer.store,
        opt_state_bytes=opt_bytes,
        plan_bytes=trainer._plan.nbytes(),
    )


def dataset_summary_rows() -> list[dict]:
    """Table 1: characteristics of the dataset analogues."""
    from ..datasets import catalog

    rows = []
    for name in ("SGEMM", "Cov", "HIGGS", "RCV1", "Heartbeat", "cifar10"):
        data = catalog.load(name)
        rows.append(
            {
                "name": name,
                "# features": data.n_features,
                "# classes": data.n_classes if data.task != "linear" else "-",
                "# samples": data.n_samples + data.valid_features.shape[0],
                "task": data.task,
                "sparse": data.is_sparse,
            }
        )
    return rows
