"""Standalone harness: regenerate every table and figure of the paper.

Usage::

    python -m repro.bench.run_all [--scale 1.0] [--quick]

Output tables are printed and persisted under ``results/``; EXPERIMENTS.md
records the measured numbers next to the paper's.  ``--quick`` shrinks the
workloads roughly 10× for a fast smoke run.
"""

from __future__ import annotations

import argparse
import dataclasses

from .configs import CONFIGS, DELETION_RATES
from .reporting import report
from .runner import (
    accuracy_rows,
    dataset_summary_rows,
    memory_row,
    prepare_workload,
    repeated_deletion_rows,
    sweep_update_times,
)

UPDATE_TIME_EXPERIMENTS = {
    "fig1a": "SGEMM (original)",
    "fig1b": "SGEMM (extended)",
    "fig2a": "Cov (small)",
    "fig2b": "Cov (large 1)",
    "fig2c": "Cov (large 2)",
    "fig3a": "Heartbeat",
    "fig3b": "HIGGS",
    "fig3c-rcv1": "RCV1",
    "fig3c-cifar10": "cifar10",
}

REPEATED_EXPERIMENTS = {
    "fig4-cov": "Cov (extended)",
    "fig4-higgs": "HIGGS (extended)",
    "fig4-heartbeat": "Heartbeat (extended)",
}

TABLE4_EXPERIMENTS = [
    "Cov (small)",
    "Cov (large 1)",
    "Cov (large 2)",
    "HIGGS",
    "Heartbeat",
    "SGEMM (original)",
    "SGEMM (extended)",
]


def _scaled(config, scale: float):
    return dataclasses.replace(config, scale=config.scale * scale)


def run_table1() -> None:
    report("table1_datasets", "Table 1: dataset analogues", dataset_summary_rows())


def run_figures(scale: float, rates) -> None:
    for fig_id, name in UPDATE_TIME_EXPERIMENTS.items():
        workload = prepare_workload(_scaled(CONFIGS[name], scale))
        rows = sweep_update_times(workload, rates)
        report(fig_id, f"{fig_id}: update time — {name}", rows)


def run_fig4(scale: float) -> None:
    for fig_id, name in REPEATED_EXPERIMENTS.items():
        workload = prepare_workload(_scaled(CONFIGS[name], scale))
        rows = repeated_deletion_rows(workload, n_subsets=10, deletion_rate=0.001)
        report(fig_id, f"{fig_id}: 10 repeated removals — {name}", rows)


def run_table3(scale: float) -> None:
    rows = []
    for name in (
        "Cov (small)",
        "Cov (large 1)",
        "Cov (large 2)",
        "HIGGS",
        "SGEMM (original)",
        "SGEMM (extended)",
        "Heartbeat",
        "RCV1",
        "cifar10",
    ):
        workload = prepare_workload(_scaled(CONFIGS[name], scale))
        rows.append(memory_row(workload).row())
    report("table3_memory", "Table 3: memory consumption", rows)


def run_table4(scale: float, dirty_rate: float = 0.2) -> None:
    rows = []
    for name in TABLE4_EXPERIMENTS:
        workload = prepare_workload(_scaled(CONFIGS[name], scale), dirty_rate=dirty_rate)
        rows.extend(accuracy_rows(workload, workload.dirty_indices))
    report(
        "table4_accuracy",
        f"Table 4: accuracy/distance/similarity at deletion rate {dirty_rate}",
        rows,
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--quick", action="store_true", help="~10x smaller run")
    parser.add_argument(
        "--only",
        choices=["table1", "figures", "fig4", "table3", "table4"],
        default=None,
    )
    args = parser.parse_args(argv)
    scale = args.scale * (0.1 if args.quick else 1.0)
    rates = DELETION_RATES if not args.quick else (0.001, 0.01, 0.1, 0.2)
    steps = {
        "table1": run_table1,
        "figures": lambda: run_figures(scale, rates),
        "fig4": lambda: run_fig4(scale),
        "table3": lambda: run_table3(scale),
        "table4": lambda: run_table4(scale),
    }
    if args.only:
        steps[args.only]()
        return
    for step in steps.values():
        step()


if __name__ == "__main__":
    main()
