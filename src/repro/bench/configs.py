"""Experiment configurations: the scaled Table 2 of the paper.

Every experiment in Section 6 is described by an :class:`ExperimentConfig`
binding a catalog dataset to its hyperparameters ``(B, τ, η, λ)``.  The
paper's absolute sizes (Table 2) target a 64 GB Xeon server; the defaults
here are scaled so the full harness completes on a laptop while keeping each
configuration in the same *regime* (B vs m ordering, passes over the data,
convergence).  Both the paper's values and ours are recorded so
EXPERIMENTS.md can print them side by side.

Key entry points: :data:`CONFIGS` (name → :class:`ExperimentConfig`),
:func:`get` (lookup with a helpful error), and
:data:`DELETION_RATES` (the Sec. 6.2 sweep, 0.1%–20%).  An
``ExperimentConfig`` knows how to :meth:`~ExperimentConfig.load` its
dataset analogue at any scale and to produce
:meth:`~ExperimentConfig.trainer_kwargs` for
:class:`~repro.core.api.IncrementalTrainer`; benchmark modules shrink
``scale`` uniformly via the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets import catalog
from ..datasets.synthetic import Dataset


@dataclass
class PaperConfig:
    """The original Table 2 row (for reporting only)."""

    batch_size: int
    n_iterations: int
    learning_rate: float
    regularization: float


@dataclass
class ExperimentConfig:
    """One workload: dataset analogue + scaled hyperparameters."""

    name: str
    dataset_name: str
    task: str
    batch_size: int
    n_iterations: int
    learning_rate: float
    regularization: float
    n_classes: int | None = None
    scale: float = 1.0
    method: str = "auto"
    paper: PaperConfig | None = None
    notes: str = ""

    def load(self) -> Dataset:
        return catalog.load(self.dataset_name, scale=self.scale)

    def trainer_kwargs(self) -> dict:
        return {
            "task": self.task,
            "learning_rate": self.learning_rate,
            "regularization": self.regularization,
            "batch_size": self.batch_size,
            "n_iterations": self.n_iterations,
            "n_classes": self.n_classes,
            "method": self.method,
        }


CONFIGS: dict[str, ExperimentConfig] = {
    "SGEMM (original)": ExperimentConfig(
        name="SGEMM (original)",
        dataset_name="SGEMM",
        task="linear",
        batch_size=200,
        n_iterations=400,
        learning_rate=5e-3,
        regularization=0.1,
        paper=PaperConfig(200, 2000, 5e-3, 0.1),
    ),
    "SGEMM (extended)": ExperimentConfig(
        name="SGEMM (extended)",
        dataset_name="SGEMM (extended)",
        task="linear",
        batch_size=200,
        n_iterations=400,
        learning_rate=1e-3,
        regularization=0.1,
        paper=PaperConfig(200, 2000, 5e-3, 0.1),
        notes="m > B: SVD compression engages for PrIU",
    ),
    "Cov (small)": ExperimentConfig(
        name="Cov (small)",
        dataset_name="Cov",
        task="multinomial_logistic",
        n_classes=7,
        batch_size=200,
        n_iterations=300,
        learning_rate=1e-3,
        regularization=0.001,
        paper=PaperConfig(200, 10000, 1e-4, 0.001),
    ),
    "Cov (large 1)": ExperimentConfig(
        name="Cov (large 1)",
        dataset_name="Cov",
        task="multinomial_logistic",
        n_classes=7,
        batch_size=5000,
        n_iterations=60,
        learning_rate=1e-3,
        regularization=0.001,
        paper=PaperConfig(10000, 500, 1e-4, 0.001),
    ),
    "Cov (large 2)": ExperimentConfig(
        name="Cov (large 2)",
        dataset_name="Cov",
        task="multinomial_logistic",
        n_classes=7,
        batch_size=5000,
        n_iterations=240,
        learning_rate=1e-3,
        regularization=0.001,
        paper=PaperConfig(10000, 3000, 1e-4, 0.001),
    ),
    "HIGGS": ExperimentConfig(
        name="HIGGS",
        dataset_name="HIGGS",
        task="binary_logistic",
        n_classes=2,
        batch_size=2000,
        n_iterations=300,
        learning_rate=1e-3,
        regularization=0.01,
        paper=PaperConfig(2000, 20000, 1e-5, 0.01),
    ),
    "Heartbeat": ExperimentConfig(
        name="Heartbeat",
        dataset_name="Heartbeat",
        task="multinomial_logistic",
        n_classes=5,
        batch_size=300,
        n_iterations=120,
        learning_rate=1e-3,
        regularization=0.1,
        paper=PaperConfig(500, 5000, 1e-5, 0.1),
    ),
    "RCV1": ExperimentConfig(
        name="RCV1",
        dataset_name="RCV1",
        task="binary_logistic",
        n_classes=2,
        batch_size=500,
        n_iterations=150,
        learning_rate=1e-4,
        regularization=0.5,
        method="priu",
        paper=PaperConfig(500, 3000, 1e-6, 0.5),
        notes="sparse: linearized replay only (Sec. 5.3)",
    ),
    "cifar10": ExperimentConfig(
        name="cifar10",
        dataset_name="cifar10",
        task="multinomial_logistic",
        n_classes=10,
        batch_size=500,
        n_iterations=60,
        learning_rate=1e-3,
        regularization=0.1,
        method="priu",
        paper=PaperConfig(500, 1000, 1e-3, 0.1),
        notes="large dense parameter space: PrIU only (no PrIU-opt)",
    ),
    "Cov (extended)": ExperimentConfig(
        name="Cov (extended)",
        dataset_name="Cov (extended)",
        task="multinomial_logistic",
        n_classes=7,
        batch_size=1000,
        n_iterations=300,
        learning_rate=1e-3,
        regularization=0.001,
        paper=PaperConfig(1000, 40000, 1e-4, 0.001),
    ),
    "HIGGS (extended)": ExperimentConfig(
        name="HIGGS (extended)",
        dataset_name="HIGGS (extended)",
        task="binary_logistic",
        n_classes=2,
        batch_size=2000,
        n_iterations=400,
        learning_rate=1e-3,
        regularization=0.01,
        paper=PaperConfig(2000, 60000, 1e-5, 0.01),
    ),
    "Heartbeat (extended)": ExperimentConfig(
        name="Heartbeat (extended)",
        dataset_name="Heartbeat (extended)",
        task="multinomial_logistic",
        n_classes=5,
        batch_size=500,
        n_iterations=300,
        learning_rate=1e-3,
        regularization=0.1,
        paper=PaperConfig(500, 40000, 1e-5, 0.1),
    ),
}

# Deletion-rate sweep of the first experiment set (Sec. 6.2): 0.01% … 20%.
DELETION_RATES = (0.001, 0.005, 0.01, 0.05, 0.1, 0.2)


def get(name: str) -> ExperimentConfig:
    try:
        return CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(CONFIGS)}"
        ) from None
