"""Provenance tokens: the indeterminates of provenance polynomials.

In the semiring framework (Green, Karvounarakis, Tannen, PODS 2007) every
input item is annotated with a distinct *token*.  Tokens are opaque symbols;
the only structure they carry is identity and a human-readable name.  PrIU
annotates every training sample ``(x_i, y_i)`` with a token ``p_i``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Token:
    """A provenance token (an indeterminate of ``N[T]``).

    Tokens compare and hash by ``(name, uid)`` so that two registries can
    create tokens with the same display name without them colliding.
    """

    name: str
    uid: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class TokenRegistry:
    """Factory for distinct tokens.

    A registry hands out tokens with unique ``uid`` values.  The typical use
    in PrIU is one token per training sample::

        reg = TokenRegistry()
        tokens = reg.annotate_samples(n)   # p_0 ... p_{n-1}
    """

    def __init__(self, prefix: str = "p") -> None:
        self._prefix = prefix
        self._counter = itertools.count()
        self._tokens: list[Token] = []

    def fresh(self, name: str | None = None) -> Token:
        """Create a new token, optionally with an explicit display name."""
        uid = next(self._counter)
        token = Token(name if name is not None else f"{self._prefix}{uid}", uid)
        self._tokens.append(token)
        return token

    def annotate_samples(self, n: int) -> list[Token]:
        """Create one fresh token per sample index ``0..n-1``."""
        return [self.fresh(f"{self._prefix}{i}") for i in range(n)]

    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self):
        return iter(self._tokens)

    @property
    def tokens(self) -> list[Token]:
        """All tokens created so far, in creation order."""
        return list(self._tokens)
