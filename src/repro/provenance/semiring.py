"""Commutative semirings and standard provenance instances.

The provenance-polynomial semiring ``N[T]`` is universal among commutative
semirings: any token assignment into a semiring ``K`` extends uniquely to a
homomorphism ``N[T] -> K``.  We expose that homomorphism as
:func:`eval_in_semiring`, and ship the standard instances used in the
provenance literature (Green & Tannen 2017):

* :class:`NaturalsSemiring` — bag semantics / counting
* :class:`BooleanSemiring` — set semantics / presence
* :class:`TropicalSemiring` — min-cost derivations
* :class:`ViterbiSemiring` — max-probability derivations
* :class:`WhyProvenanceSemiring` — sets of witness token-sets (Why(X))

These instances are exercised by the test suite to validate that the
polynomial algebra really is the free object it claims to be; PrIU itself
only needs ``N[T]`` with 0/1 specialization (deletion propagation), but
downstream users of the library get the full framework.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from typing import Any, Generic, TypeVar

from .polynomial import Polynomial
from .tokens import Token

K = TypeVar("K")


class Semiring(ABC, Generic[K]):
    """A commutative semiring ``(K, plus, times, zero, one)``."""

    @property
    @abstractmethod
    def zero(self) -> K:
        ...

    @property
    @abstractmethod
    def one(self) -> K:
        ...

    @abstractmethod
    def plus(self, a: K, b: K) -> K:
        ...

    @abstractmethod
    def times(self, a: K, b: K) -> K:
        ...

    def power(self, a: K, exponent: int) -> K:
        """``a`` multiplied by itself ``exponent`` times (``one`` for 0)."""
        if exponent < 0:
            raise ValueError("semiring powers require non-negative exponents")
        result = self.one
        for _ in range(exponent):
            result = self.times(result, a)
        return result

    def sum(self, values) -> K:
        result = self.zero
        for value in values:
            result = self.plus(result, value)
        return result

    def product(self, values) -> K:
        result = self.one
        for value in values:
            result = self.times(result, value)
        return result

    def is_idempotent_plus(self) -> bool:
        """Whether ``a + a = a`` holds; instances may override."""
        return False


class NaturalsSemiring(Semiring[int]):
    """``(N, +, *, 0, 1)`` — how many derivations produce each output."""

    zero = 0
    one = 1

    def plus(self, a: int, b: int) -> int:
        return a + b

    def times(self, a: int, b: int) -> int:
        return a * b


class BooleanSemiring(Semiring[bool]):
    """``({F,T}, or, and, F, T)`` — set semantics / deletion propagation."""

    zero = False
    one = True

    def plus(self, a: bool, b: bool) -> bool:
        return a or b

    def times(self, a: bool, b: bool) -> bool:
        return a and b

    def is_idempotent_plus(self) -> bool:
        return True


class TropicalSemiring(Semiring[float]):
    """``(R∞, min, +, ∞, 0)`` — cost of the cheapest derivation."""

    zero = float("inf")
    one = 0.0

    def plus(self, a: float, b: float) -> float:
        return min(a, b)

    def times(self, a: float, b: float) -> float:
        return a + b

    def is_idempotent_plus(self) -> bool:
        return True


class ViterbiSemiring(Semiring[float]):
    """``([0,1], max, *, 0, 1)`` — probability of the best derivation."""

    zero = 0.0
    one = 1.0

    def plus(self, a: float, b: float) -> float:
        return max(a, b)

    def times(self, a: float, b: float) -> float:
        return a * b

    def is_idempotent_plus(self) -> bool:
        return True


class WhyProvenanceSemiring(Semiring[frozenset]):
    """``Why(X)``: sets of witnesses, each witness a set of tokens.

    ``plus`` is union of witness sets; ``times`` is pairwise union of
    witnesses.  This is the image of ``N[T]`` under "drop coefficients and
    exponents".
    """

    zero: frozenset = frozenset()
    one: frozenset = frozenset({frozenset()})

    def plus(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def times(self, a: frozenset, b: frozenset) -> frozenset:
        return frozenset(w1 | w2 for w1 in a for w2 in b)

    def is_idempotent_plus(self) -> bool:
        return True


def eval_in_semiring(
    poly: Polynomial,
    semiring: Semiring[K],
    assignment: Mapping[Token, K],
) -> K:
    """Apply the unique homomorphism ``N[T] -> K`` induced by ``assignment``.

    Natural-number coefficients are interpreted as repeated ``plus``;
    exponents as repeated ``times``.  This is the universal property that
    makes ``N[T]`` "the most informative" provenance annotation.
    """
    total = semiring.zero
    for mono, coeff in poly.terms.items():
        term = semiring.one
        for token, exp in mono.powers.items():
            term = semiring.times(term, semiring.power(assignment[token], exp))
        if isinstance(coeff, int) and coeff >= 0:
            repeated = semiring.zero
            for _ in range(coeff):
                repeated = semiring.plus(repeated, term)
            term = repeated
        else:  # non-natural coefficient: only meaningful in numeric semirings
            term = semiring.times(term, coeff)  # type: ignore[arg-type]
        total = semiring.plus(total, term)
    return total


def why_provenance(poly: Polynomial) -> frozenset:
    """Witness sets of ``poly``: its image in :class:`WhyProvenanceSemiring`."""
    semiring = WhyProvenanceSemiring()
    assignment = {t: frozenset({frozenset({t})}) for t in poly.tokens()}
    return eval_in_semiring(poly, semiring, assignment)
