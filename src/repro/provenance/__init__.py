"""Provenance semiring substrate.

Implements the ``N[T]`` provenance-polynomial semiring (Green et al., PODS
2007), its standard homomorphic images, and the extension to linear algebra
(Yan, Tannen & Ives, TaPP 2016) that PrIU builds on: matrices annotated with
provenance polynomials, with deletion propagation by zeroing out tokens.
"""

from .annotated import AnnotatedMatrix
from .polynomial import ONE, ZERO, Monomial, Polynomial
from .semiring import (
    BooleanSemiring,
    NaturalsSemiring,
    Semiring,
    TropicalSemiring,
    ViterbiSemiring,
    WhyProvenanceSemiring,
    eval_in_semiring,
    why_provenance,
)
from .tokens import Token, TokenRegistry
from .tracked_training import AnnotatedBatchSummary, ProvenanceTrackedRun

__all__ = [
    "AnnotatedBatchSummary",
    "AnnotatedMatrix",
    "BooleanSemiring",
    "Monomial",
    "NaturalsSemiring",
    "ONE",
    "Polynomial",
    "ProvenanceTrackedRun",
    "Semiring",
    "Token",
    "TokenRegistry",
    "TropicalSemiring",
    "ViterbiSemiring",
    "WhyProvenanceSemiring",
    "ZERO",
    "eval_in_semiring",
    "why_provenance",
]
