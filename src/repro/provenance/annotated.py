"""Provenance-annotated matrices (Yan, Tannen & Ives, TaPP 2016 extension).

An :class:`AnnotatedMatrix` is a formal sum ``Σ_k  m_k ∗ A_k`` where each
``m_k`` is a provenance polynomial and each ``A_k`` a numeric matrix of a
common shape.  Provenance polynomials play the role of *scalars*; ``∗`` is
scalar multiplication.  The algebra satisfies the usual matrix laws plus the
crucial joint-use property the paper highlights:

    ``(p1 ∗ A1) @ (p2 ∗ A2) == (p1 · p2) ∗ (A1 @ A2)``

Deletion propagation is :meth:`AnnotatedMatrix.zero_out`: terms whose
provenance mentions a deleted token vanish; the survivors can then be
evaluated with every remaining token set to ``1_prov``.

Terms are kept in a canonical form keyed by polynomial — matrices annotated
with equal provenance are summed together — so equality is structural.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Union

import numpy as np

from .polynomial import ONE, ZERO, Polynomial
from .tokens import Token

Number = Union[int, float]


class AnnotatedMatrix:
    """A formal sum of provenance-annotated numeric matrices."""

    __slots__ = ("_terms", "_shape", "_idempotent")

    def __init__(
        self,
        terms: Iterable[tuple[Polynomial, np.ndarray]] = (),
        shape: tuple[int, ...] | None = None,
        idempotent: bool = False,
    ) -> None:
        collected: dict[Polynomial, np.ndarray] = {}
        inferred_shape = shape
        for poly, matrix in terms:
            matrix = np.asarray(matrix, dtype=float)
            if inferred_shape is None:
                inferred_shape = matrix.shape
            elif matrix.shape != inferred_shape:
                raise ValueError(
                    f"shape mismatch: {matrix.shape} vs {inferred_shape}"
                )
            if idempotent:
                poly = poly.idempotent()
            if poly.is_zero() or not np.any(matrix):
                continue
            if poly in collected:
                collected[poly] = collected[poly] + matrix
            else:
                collected[poly] = matrix.copy()
        if inferred_shape is None:
            raise ValueError("cannot infer shape of an empty annotated matrix")
        # Drop terms that cancelled to numerically-zero matrices.
        self._terms = {
            p: m for p, m in collected.items() if np.any(m)
        }
        self._shape = tuple(inferred_shape)
        self._idempotent = idempotent

    # ----------------------------------------------------------- constructors
    @classmethod
    def pure(
        cls, matrix: np.ndarray, idempotent: bool = False
    ) -> "AnnotatedMatrix":
        """Lift a numeric matrix with annotation ``1_prov``."""
        return cls([(ONE, np.asarray(matrix, dtype=float))], idempotent=idempotent)

    @classmethod
    def annotated(
        cls, poly: Polynomial, matrix: np.ndarray, idempotent: bool = False
    ) -> "AnnotatedMatrix":
        """The single term ``poly ∗ matrix``."""
        return cls([(poly, np.asarray(matrix, dtype=float))], idempotent=idempotent)

    @classmethod
    def zeros(
        cls, shape: tuple[int, ...], idempotent: bool = False
    ) -> "AnnotatedMatrix":
        return cls([], shape=shape, idempotent=idempotent)

    @classmethod
    def from_samples(
        cls,
        rows: np.ndarray,
        tokens: list[Token],
        idempotent: bool = False,
    ) -> "AnnotatedMatrix":
        """Decompose a data matrix row-wise, one token per row (Sec. 4.1).

        Row ``i`` contributes the term ``p_i ∗ [0 ... x_i ... 0]``.
        """
        rows = np.asarray(rows, dtype=float)
        if rows.ndim == 1:
            rows = rows.reshape(-1, 1)
        if len(tokens) != rows.shape[0]:
            raise ValueError("need exactly one token per row")
        terms = []
        for i, token in enumerate(tokens):
            embedded = np.zeros_like(rows)
            embedded[i] = rows[i]
            terms.append((Polynomial.of_token(token), embedded))
        return cls(terms, shape=rows.shape, idempotent=idempotent)

    # ------------------------------------------------------------- inspection
    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def idempotent(self) -> bool:
        return self._idempotent

    @property
    def terms(self) -> list[tuple[Polynomial, np.ndarray]]:
        return [(p, m.copy()) for p, m in self._terms.items()]

    def n_terms(self) -> int:
        return len(self._terms)

    def tokens(self) -> frozenset[Token]:
        out: set[Token] = set()
        for poly in self._terms:
            out |= poly.tokens()
        return frozenset(out)

    # ------------------------------------------------------------- arithmetic
    def _check_compatible(self, other: "AnnotatedMatrix") -> None:
        if self._idempotent != other._idempotent:
            raise ValueError("cannot mix idempotent and exact annotated matrices")

    def __add__(self, other: "AnnotatedMatrix") -> "AnnotatedMatrix":
        self._check_compatible(other)
        if self._shape != other._shape:
            raise ValueError(f"shape mismatch: {self._shape} vs {other._shape}")
        return AnnotatedMatrix(
            list(self._terms.items()) + list(other._terms.items()),
            shape=self._shape,
            idempotent=self._idempotent,
        )

    def __sub__(self, other: "AnnotatedMatrix") -> "AnnotatedMatrix":
        return self + other.scale(-1.0)

    def scale(self, value: Number) -> "AnnotatedMatrix":
        """Multiply every numeric matrix by a plain scalar."""
        return AnnotatedMatrix(
            [(p, m * value) for p, m in self._terms.items()],
            shape=self._shape,
            idempotent=self._idempotent,
        )

    def annotate(self, poly: Polynomial) -> "AnnotatedMatrix":
        """Multiply every term's provenance by ``poly`` (scalar ∗ action)."""
        return AnnotatedMatrix(
            [(poly * p, m) for p, m in self._terms.items()],
            shape=self._shape,
            idempotent=self._idempotent,
        )

    def __matmul__(self, other: "AnnotatedMatrix") -> "AnnotatedMatrix":
        self._check_compatible(other)
        if len(self._shape) != 2 or len(other._shape) != 2:
            raise ValueError("matmul requires 2-D annotated matrices")
        if self._shape[1] != other._shape[0]:
            raise ValueError(f"matmul mismatch: {self._shape} @ {other._shape}")
        out_shape = (self._shape[0], other._shape[1])
        terms = []
        for p1, m1 in self._terms.items():
            for p2, m2 in other._terms.items():
                terms.append((p1 * p2, m1 @ m2))
        return AnnotatedMatrix(terms, shape=out_shape, idempotent=self._idempotent)

    @property
    def T(self) -> "AnnotatedMatrix":
        if len(self._shape) != 2:
            raise ValueError("transpose requires a 2-D annotated matrix")
        return AnnotatedMatrix(
            [(p, m.T) for p, m in self._terms.items()],
            shape=(self._shape[1], self._shape[0]),
            idempotent=self._idempotent,
        )

    # ---------------------------------------------------- deletion/evaluation
    def zero_out(self, tokens: Iterable[Token]) -> "AnnotatedMatrix":
        """Deletion propagation: drop every term mentioning a deleted token.

        Equivalent to specializing those tokens to ``0_prov``.
        """
        deleted = frozenset(tokens)
        kept = []
        for poly, matrix in self._terms.items():
            specialized = poly.specialize(zeroed=deleted)
            if not specialized.is_zero():
                kept.append((specialized, matrix))
        return AnnotatedMatrix(kept, shape=self._shape, idempotent=self._idempotent)

    def evaluate(self, assignment: Mapping[Token, Number] | None = None) -> np.ndarray:
        """Collapse to a numeric matrix.

        With no assignment, every remaining token is read as ``1_prov`` (the
        paper's "retained" reading).  With an assignment, tokens evaluate to
        the given numbers (0/1 for deletion propagation, arbitrary reals for
        sensitivity-style analyses).
        """
        result = np.zeros(self._shape)
        for poly, matrix in self._terms.items():
            if assignment is None:
                weight = sum(poly.terms.values())
            else:
                full = {t: assignment.get(t, 1) for t in poly.tokens()}
                weight = poly.evaluate(full)
            if weight:
                result = result + weight * matrix
        return result

    def delete_and_evaluate(self, tokens: Iterable[Token]) -> np.ndarray:
        """Zero out ``tokens`` then read all survivors as present."""
        return self.zero_out(tokens).evaluate()

    # ---------------------------------------------------------------- dunders
    def allclose(self, other: "AnnotatedMatrix", atol: float = 1e-10) -> bool:
        """Structural comparison term-by-term after canonicalization."""
        if self._shape != other._shape:
            return False
        keys = set(self._terms) | set(other._terms)
        for key in keys:
            a = self._terms.get(key)
            b = other._terms.get(key)
            if a is None:
                a = np.zeros(self._shape)
            if b is None:
                b = np.zeros(self._shape)
            if not np.allclose(a, b, atol=atol):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnnotatedMatrix(shape={self._shape}, terms={len(self._terms)}, "
            f"idempotent={self._idempotent})"
        )
