"""Reference semantics: gradient descent run *inside* the annotated algebra.

This module is the ground truth the compiled PrIU paths are tested against.
It literally executes the provenance-annotated update rules of Section 4
(Equations 7/8 for linear regression, 10/11 for linearized logistic
regression) using :class:`~repro.provenance.annotated.AnnotatedMatrix`:

* During "training" each mini-batch contributes the annotated summaries
  ``G^(t) = Σ p_i² ∗ x_i x_iᵀ`` and ``d^(t) = Σ p_i² ∗ x_i y_i`` (or their
  ``a/b``-weighted logistic counterparts).  These are the symbolic form of the
  intermediate results PrIU caches numerically.
* Deletion propagation zeroes out the removed tokens in every summary, then
  replays the recursion with the updated batch sizes ``B_U^(t)`` — exactly
  the paper's move of replacing the annotated count ``P^(t)`` by an integer.

Because the full symbolic unrolling of ``W^(t)`` grows exponentially in the
iteration count, :meth:`ProvenanceTrackedRun.unrolled_parameters` (used to
demonstrate Theorem 2/3 behaviour) is only intended for toy inputs; the
summary-based :meth:`updated_parameters` path scales to the sizes the test
suite uses.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from .annotated import AnnotatedMatrix
from .polynomial import Polynomial
from .tokens import Token, TokenRegistry


@dataclass
class AnnotatedBatchSummary:
    """Symbolic per-iteration provenance summaries for one mini-batch."""

    batch_indices: np.ndarray
    gram: AnnotatedMatrix  # Σ p_i² ∗ (α_i x_i x_iᵀ)
    moment: AnnotatedMatrix  # Σ p_i² ∗ (β_i x_i)  (column vector, m×1)


def _token_squared(token: Token, idempotent: bool) -> Polynomial:
    poly = Polynomial.of_token(token, exponent=2)
    return poly.idempotent() if idempotent else poly


class ProvenanceTrackedRun:
    """A GBM training run with symbolic provenance summaries.

    Parameters
    ----------
    features, labels:
        The training set ``(X, Y)``; labels are a 1-D array.
    learning_rate, regularization:
        ``η`` and ``λ`` of Equations 5/6 (constant learning rate, as required
        by the convergence conditions of Lemma 1).
    idempotent:
        Work in the multiplication-idempotent quotient (Theorem 3's
        assumption).  The numeric results are identical because deletion
        propagation only distinguishes zero from non-zero exponents.
    """

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        learning_rate: float,
        regularization: float,
        idempotent: bool = True,
    ) -> None:
        self.features = np.asarray(features, dtype=float)
        self.labels = np.asarray(labels, dtype=float).ravel()
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError("features and labels disagree on sample count")
        self.learning_rate = float(learning_rate)
        self.regularization = float(regularization)
        self.idempotent = idempotent
        self.registry = TokenRegistry()
        self.tokens = self.registry.annotate_samples(self.features.shape[0])
        self.summaries: list[AnnotatedBatchSummary] = []
        self._initial = np.zeros(self.features.shape[1])

    # ----------------------------------------------------------- training
    def record_linear(self, batches: Sequence[np.ndarray]) -> None:
        """Record the annotated summaries of a linear-regression run (Eq. 7)."""
        m = self.features.shape[1]
        for batch in batches:
            batch = np.asarray(batch, dtype=int)
            gram_terms = []
            moment_terms = []
            for i in batch:
                x = self.features[i].reshape(-1, 1)
                poly = _token_squared(self.tokens[i], self.idempotent)
                gram_terms.append((poly, x @ x.T))
                moment_terms.append((poly, x * self.labels[i]))
            self.summaries.append(
                AnnotatedBatchSummary(
                    batch_indices=batch,
                    gram=AnnotatedMatrix(
                        gram_terms, shape=(m, m), idempotent=self.idempotent
                    ),
                    moment=AnnotatedMatrix(
                        moment_terms, shape=(m, 1), idempotent=self.idempotent
                    ),
                )
            )

    def record_logistic(
        self,
        batches: Sequence[np.ndarray],
        coefficients: Sequence[tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Record summaries of a linearized logistic run (Eq. 10).

        ``coefficients[t]`` holds per-sample ``(a_{i,(t)}, b_{i,(t)})`` arrays
        aligned with ``batches[t]`` — the slopes/intercepts produced by the
        piecewise-linear interpolation during the original training.
        """
        if len(batches) != len(coefficients):
            raise ValueError("one coefficient pair per batch is required")
        m = self.features.shape[1]
        for batch, (slopes, intercepts) in zip(batches, coefficients):
            batch = np.asarray(batch, dtype=int)
            gram_terms = []
            moment_terms = []
            for pos, i in enumerate(batch):
                x = self.features[i].reshape(-1, 1)
                poly = _token_squared(self.tokens[i], self.idempotent)
                gram_terms.append((poly, slopes[pos] * (x @ x.T)))
                moment_terms.append((poly, intercepts[pos] * self.labels[i] * x))
            self.summaries.append(
                AnnotatedBatchSummary(
                    batch_indices=batch,
                    gram=AnnotatedMatrix(
                        gram_terms, shape=(m, m), idempotent=self.idempotent
                    ),
                    moment=AnnotatedMatrix(
                        moment_terms, shape=(m, 1), idempotent=self.idempotent
                    ),
                )
            )

    # ---------------------------------------------------------- evaluation
    def _removed_tokens(self, removed_indices: Iterable[int]) -> list[Token]:
        return [self.tokens[i] for i in removed_indices]

    def original_parameters(self, kind: str = "linear") -> np.ndarray:
        """Replay the recursion with every token present (all set to 1)."""
        return self.updated_parameters((), kind=kind)

    def updated_parameters(
        self, removed_indices: Iterable[int], kind: str = "linear"
    ) -> np.ndarray:
        """Deletion propagation via zero-out, then numeric replay (Eq. 8/11).

        ``kind`` selects the sign convention: linear regression subtracts the
        gram term with factor ``2η/B_U``; linearized logistic *adds* the gram
        term with factor ``η/B_U`` (the slopes are negative).
        """
        if kind not in ("linear", "logistic"):
            raise ValueError(f"unknown kind: {kind}")
        removed = set(int(i) for i in removed_indices)
        removed_tokens = self._removed_tokens(removed)
        eta = self.learning_rate
        lam = self.regularization
        w = self._initial.copy()
        for summary in self.summaries:
            surviving = [i for i in summary.batch_indices if i not in removed]
            batch_size = len(surviving)
            if batch_size == 0:
                # The whole batch was deleted: the gradient term vanishes and
                # only the shrinkage (regularization) step applies.
                w = (1.0 - eta * lam) * w
                continue
            gram = summary.gram.delete_and_evaluate(removed_tokens)
            moment = summary.moment.delete_and_evaluate(removed_tokens).ravel()
            if kind == "linear":
                w = (
                    (1.0 - eta * lam) * w
                    - (2.0 * eta / batch_size) * (gram @ w)
                    + (2.0 * eta / batch_size) * moment
                )
            else:
                w = (
                    (1.0 - eta * lam) * w
                    + (eta / batch_size) * (gram @ w)
                    + (eta / batch_size) * moment
                )
        return w

    # ------------------------------------------------- symbolic unrolling
    def unrolled_parameters(self, kind: str = "linear") -> AnnotatedMatrix:
        """Fully symbolic ``W^(t)`` for toy inputs (Equations 7/10 verbatim).

        Returns the annotated column vector ``W = Σ m_k ∗ u_k``.  Deleting
        sample set ``R`` and evaluating (``W.delete_and_evaluate(tokens)``)
        yields the same numbers as :meth:`updated_parameters` *with the
        original batch denominators* — i.e. the pure semiring reading in
        which ``P^(t)`` is not renormalized.  Intended for datasets of a
        handful of samples only; term counts grow combinatorially.
        """
        if kind not in ("linear", "logistic"):
            raise ValueError(f"unknown kind: {kind}")
        m = self.features.shape[1]
        eta = self.learning_rate
        lam = self.regularization
        w = AnnotatedMatrix.pure(
            self._initial.reshape(-1, 1), idempotent=self.idempotent
        )
        identity = AnnotatedMatrix.pure(np.eye(m), idempotent=self.idempotent)
        for summary in self.summaries:
            batch_size = len(summary.batch_indices)
            sign = -2.0 if kind == "linear" else 1.0
            step = identity.scale(1.0 - eta * lam) + summary.gram.scale(
                sign * eta / batch_size
            )
            bias_scale = 2.0 if kind == "linear" else 1.0
            w = (step @ w) + summary.moment.scale(bias_scale * eta / batch_size)
        return w
