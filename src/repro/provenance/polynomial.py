"""Provenance polynomials ``N[T]`` over a set of tokens.

A *monomial* is a multiset of tokens (token -> positive exponent); a
*polynomial* is a finite map monomial -> natural-number coefficient.  The two
semiring operations are:

* ``+``  — alternative use of information (relational union / projection)
* ``*``  — joint use of information (relational join)

``ZERO`` (the polynomial with no terms) annotates absent data; ``ONE`` (the
term of degree zero with coefficient 1) annotates data that is "always
available, no need to track".

PrIU additionally uses the *idempotent-multiplication* quotient
(``p * p = p``), under which monomials degenerate to token *sets*; Theorem 3
of the paper shows the provenance-annotated iterations converge under this
quotient.  ``Monomial.idempotent()`` maps into the quotient.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Union

from .tokens import Token

Number = Union[int, float]


class Monomial:
    """An immutable multiset of tokens, e.g. ``p^2 q``.

    The empty monomial is the multiplicative unit (degree zero).
    """

    __slots__ = ("_powers", "_hash")

    def __init__(self, powers: Mapping[Token, int] | Iterable[Token] = ()) -> None:
        if isinstance(powers, Mapping):
            items = {t: int(e) for t, e in powers.items() if e != 0}
        else:
            items = {}
            for token in powers:
                items[token] = items.get(token, 0) + 1
        for token, exp in items.items():
            if exp < 0:
                raise ValueError(f"negative exponent for {token}: {exp}")
        self._powers = dict(sorted(items.items()))
        self._hash = hash(tuple(self._powers.items()))

    @property
    def powers(self) -> dict[Token, int]:
        return dict(self._powers)

    def degree(self) -> int:
        """Total degree (sum of exponents)."""
        return sum(self._powers.values())

    def tokens(self) -> frozenset[Token]:
        """The set of tokens occurring in this monomial."""
        return frozenset(self._powers)

    def __mul__(self, other: "Monomial") -> "Monomial":
        merged = dict(self._powers)
        for token, exp in other._powers.items():
            merged[token] = merged.get(token, 0) + exp
        return Monomial(merged)

    def idempotent(self) -> "Monomial":
        """Image under the quotient ``p*p = p`` (all exponents clamped to 1)."""
        return Monomial({t: 1 for t in self._powers})

    def mentions(self, token: Token) -> bool:
        return token in self._powers

    def evaluate(self, assignment: Mapping[Token, Number]) -> Number:
        """Evaluate with a full numeric assignment of every mentioned token."""
        value: Number = 1
        for token, exp in self._powers.items():
            value *= assignment[token] ** exp
        return value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Monomial) and self._powers == other._powers

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._powers:
            return "1"
        parts = []
        for token, exp in self._powers.items():
            parts.append(token.name if exp == 1 else f"{token.name}^{exp}")
        return "·".join(parts)


ONE_MONOMIAL = Monomial()


class Polynomial:
    """A provenance polynomial: finite map ``Monomial -> coefficient``.

    Coefficients live in N for the classical semiring, but we accept floats
    so the same class can serve aggregation-style annotations; the PrIU
    pipeline only ever uses naturals.
    """

    __slots__ = ("_terms",)

    def __init__(self, terms: Mapping[Monomial, Number] | None = None) -> None:
        cleaned: dict[Monomial, Number] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff != 0:
                    cleaned[mono] = cleaned.get(mono, 0) + coeff
        self._terms = {m: c for m, c in cleaned.items() if c != 0}

    # ---------------------------------------------------------- constructors
    @classmethod
    def zero(cls) -> "Polynomial":
        """``0_prov`` — signifies absence."""
        return cls()

    @classmethod
    def one(cls) -> "Polynomial":
        """``1_prov`` — neutral presence, no need to track."""
        return cls({ONE_MONOMIAL: 1})

    @classmethod
    def of_token(cls, token: Token, exponent: int = 1) -> "Polynomial":
        return cls({Monomial({token: exponent}): 1})

    @classmethod
    def constant(cls, value: Number) -> "Polynomial":
        return cls({ONE_MONOMIAL: value}) if value else cls()

    # ------------------------------------------------------------ inspection
    @property
    def terms(self) -> dict[Monomial, Number]:
        return dict(self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def is_one(self) -> bool:
        return self._terms == {ONE_MONOMIAL: 1}

    def tokens(self) -> frozenset[Token]:
        out: set[Token] = set()
        for mono in self._terms:
            out |= mono.tokens()
        return frozenset(out)

    def degree(self) -> int:
        return max((m.degree() for m in self._terms), default=0)

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: "Polynomial") -> "Polynomial":
        merged = dict(self._terms)
        for mono, coeff in other._terms.items():
            merged[mono] = merged.get(mono, 0) + coeff
        return Polynomial(merged)

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        out: dict[Monomial, Number] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                prod = m1 * m2
                out[prod] = out.get(prod, 0) + c1 * c2
        return Polynomial(out)

    def scale(self, value: Number) -> "Polynomial":
        """Multiply every coefficient by a scalar (aggregation-style use)."""
        return Polynomial({m: c * value for m, c in self._terms.items()})

    def idempotent(self) -> "Polynomial":
        """Quotient by ``p*p = p`` and ``p+p = p``: the B[T]-style reduction.

        Under multiplication idempotence all exponents collapse to 1 and
        duplicate monomials are merged with coefficient clamped to 1, which is
        the absorptive reading used in Theorem 3 (we only care about *which*
        samples contribute, not how many times).
        """
        out: dict[Monomial, Number] = {}
        for mono in self._terms:
            out[mono.idempotent()] = 1
        return Polynomial(out)

    # ------------------------------------------------------------ evaluation
    def evaluate(self, assignment: Mapping[Token, Number]) -> Number:
        """Full numeric evaluation; every mentioned token must be assigned."""
        return sum(
            coeff * mono.evaluate(assignment) for mono, coeff in self._terms.items()
        )

    def specialize(
        self,
        zeroed: Iterable[Token] = (),
        kept: Iterable[Token] | None = None,
    ) -> "Polynomial":
        """Deletion propagation: set ``zeroed`` tokens to ``0_prov``.

        If ``kept`` is given those tokens are set to ``1_prov``; tokens in
        neither set survive symbolically.  This is the paper's "zeroing-out"
        operation.
        """
        zero_set = frozenset(zeroed)
        keep_set = frozenset(kept) if kept is not None else None
        out: dict[Monomial, Number] = {}
        for mono, coeff in self._terms.items():
            if any(t in zero_set for t in mono.tokens()):
                continue
            if keep_set is None:
                new_mono = mono
            else:
                remaining = {
                    t: e for t, e in mono.powers.items() if t not in keep_set
                }
                new_mono = Monomial(remaining)
            out[new_mono] = out.get(new_mono, 0) + coeff
        return Polynomial(out)

    # --------------------------------------------------------------- dunders
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polynomial) and self._terms == other._terms

    def __hash__(self) -> int:
        return hash(frozenset(self._terms.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._terms:
            return "0prov"
        parts = []
        for mono, coeff in sorted(
            self._terms.items(), key=lambda kv: (-kv[0].degree(), repr(kv[0]))
        ):
            if mono == ONE_MONOMIAL:
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(repr(mono))
            else:
                parts.append(f"{coeff}·{mono!r}")
        return " + ".join(parts)


ZERO = Polynomial.zero()
ONE = Polynomial.one()
