"""Dirty-sample injection (Sec. 6.2, first experiment set).

The cleaning scenario: a fraction of the training samples — the *deletion
rate* — is corrupted by rescaling to incorrect values, the initial model is
trained over the dirty set, and the dirty samples are then removed in the
model-update phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass
class DirtyDataset:
    """A corrupted training set plus the ids of the corrupted rows."""

    features: object
    labels: np.ndarray
    dirty_indices: np.ndarray

    @property
    def deletion_rate(self) -> float:
        return self.dirty_indices.size / self.features.shape[0]


def inject_dirty(
    features,
    labels: np.ndarray,
    deletion_rate: float,
    seed: int = 0,
    feature_scale: float = 10.0,
    label_scale: float = -5.0,
) -> DirtyDataset:
    """Rescale a random subset of samples to incorrect values.

    ``deletion_rate`` follows the paper's definition: the ratio of corrupted
    samples to the training-set size, from 1e-4 up to 0.2.
    """
    if not 0.0 < deletion_rate < 1.0:
        raise ValueError("deletion_rate must be in (0, 1)")
    n = features.shape[0]
    n_dirty = max(1, int(round(deletion_rate * n)))
    rng = np.random.default_rng(seed)
    dirty = np.sort(rng.choice(n, size=n_dirty, replace=False))

    labels = np.asarray(labels).copy()
    if sp.issparse(features):
        features = features.tocsr(copy=True)
        scaler = sp.eye(n, format="csr")
        diag = np.ones(n)
        diag[dirty] = feature_scale
        scaler.setdiag(diag)
        features = scaler @ features
    else:
        features = np.asarray(features, dtype=float).copy()
        features[dirty] *= feature_scale

    if np.issubdtype(labels.dtype, np.floating) and set(np.unique(labels)) != {
        -1.0,
        1.0,
    }:
        labels[dirty] = labels[dirty] * label_scale  # regression targets
    elif set(np.unique(labels)) <= {-1.0, 1.0, -1, 1}:
        labels[dirty] = -labels[dirty]  # flip binary labels
    else:
        n_classes = int(labels.max()) + 1
        labels[dirty] = (labels[dirty] + 1 + rng.integers(0, n_classes - 1,
                                                          size=n_dirty)) % n_classes
    return DirtyDataset(features=features, labels=labels, dirty_indices=dirty)


def random_subsets(
    n_samples: int,
    n_subsets: int,
    deletion_rate: float,
    seed: int = 0,
) -> list[np.ndarray]:
    """The repeated-deletion workload (Sec. 6.2, second experiment set).

    ``n_subsets`` independent random subsets, each of ``deletion_rate · n``
    samples, as removed one after another in the interpretability scenario.
    """
    rng = np.random.default_rng(seed)
    size = max(1, int(round(deletion_rate * n_samples)))
    return [
        np.sort(rng.choice(n_samples, size=size, replace=False))
        for _ in range(n_subsets)
    ]
