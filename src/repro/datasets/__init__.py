"""Dataset substrate: synthetic analogues of the paper's evaluation data."""

from .catalog import (
    CATALOG,
    cifar10,
    covtype,
    covtype_extended,
    heartbeat,
    heartbeat_extended,
    higgs,
    higgs_extended,
    load,
    rcv1,
    sgemm,
    sgemm_extended,
)
from .corruption import DirtyDataset, inject_dirty, random_subsets
from .synthetic import (
    Dataset,
    concatenate_copies,
    extend_features,
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)

__all__ = [
    "CATALOG",
    "Dataset",
    "DirtyDataset",
    "cifar10",
    "concatenate_copies",
    "covtype",
    "covtype_extended",
    "extend_features",
    "heartbeat",
    "heartbeat_extended",
    "higgs",
    "higgs_extended",
    "inject_dirty",
    "load",
    "make_binary_classification",
    "make_multiclass_classification",
    "make_regression",
    "make_sparse_binary_classification",
    "random_subsets",
    "rcv1",
    "sgemm",
    "sgemm_extended",
]
