"""Dataset substrate: synthetic analogues of the paper's evaluation data.

Key entry points: the ``make_*`` generators (:func:`make_regression`,
:func:`make_binary_classification`,
:func:`make_multiclass_classification`,
:func:`make_sparse_binary_classification`) produce seeded
:class:`~repro.datasets.synthetic.Dataset` objects with held-out
validation splits; :func:`load` / :data:`CATALOG` name the paper's six
Table-1 datasets (SGEMM, Cov, HIGGS, RCV1, Heartbeat, cifar10) at any
scale; :func:`~repro.datasets.corruption.inject_dirty` and
:func:`~repro.datasets.corruption.random_subsets` build the deletion /
data-cleaning scenarios of Sec. 6.2.
"""

from .catalog import (
    CATALOG,
    cifar10,
    covtype,
    covtype_extended,
    heartbeat,
    heartbeat_extended,
    higgs,
    higgs_extended,
    load,
    rcv1,
    sgemm,
    sgemm_extended,
)
from .corruption import DirtyDataset, inject_dirty, random_subsets
from .synthetic import (
    Dataset,
    concatenate_copies,
    extend_features,
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)

__all__ = [
    "CATALOG",
    "Dataset",
    "DirtyDataset",
    "cifar10",
    "concatenate_copies",
    "covtype",
    "covtype_extended",
    "extend_features",
    "heartbeat",
    "heartbeat_extended",
    "higgs",
    "higgs_extended",
    "inject_dirty",
    "load",
    "make_binary_classification",
    "make_multiclass_classification",
    "make_regression",
    "make_sparse_binary_classification",
    "random_subsets",
    "rcv1",
    "sgemm",
    "sgemm_extended",
]
