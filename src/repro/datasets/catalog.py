"""Named analogues of the paper's six evaluation datasets (Table 1).

Each factory returns a laptop-scale :class:`~repro.datasets.synthetic.Dataset`
whose *shape regime* matches the paper's dataset: dense-vs-sparse, small-vs-
large feature space, binary-vs-multinomial labels.  A global ``scale``
parameter shrinks sample counts uniformly; the default sizes keep every
benchmark in seconds rather than hours while preserving who-wins behaviour.

Paper shapes for reference (Table 1):

    SGEMM      18 features,            241,600 samples, regression
    Cov        54 features,  7 classes, 581,012 samples
    HIGGS      28 features,  2 classes, 11,000,000 samples
    RCV1       47,236 features, 2 classes, 23,149 samples (sparse)
    Heartbeat  188 features, 5 classes, 87,553 samples
    cifar10    3,072 features, 10 classes, 50,000 samples
"""

from __future__ import annotations

from .synthetic import (
    Dataset,
    concatenate_copies,
    extend_features,
    make_binary_classification,
    make_multiclass_classification,
    make_regression,
    make_sparse_binary_classification,
)


def sgemm(scale: float = 1.0, seed: int = 7) -> Dataset:
    """SGEMM analogue: small dense feature space, continuous labels."""
    data = make_regression(
        n_samples=max(200, int(24_000 * scale)),
        n_features=18,
        noise=0.05,
        seed=seed,
        name="SGEMM",
    )
    return data


def sgemm_extended(scale: float = 1.0, seed: int = 7, extra: int = 300) -> Dataset:
    """SGEMM with random features appended so that ``m`` exceeds ``B``."""
    return extend_features(sgemm(scale=scale, seed=seed), extra, seed=seed + 1)


def covtype(scale: float = 1.0, seed: int = 11) -> Dataset:
    """Covtype analogue: 54 dense features, 7 classes."""
    data = make_multiclass_classification(
        n_samples=max(350, int(58_000 * scale)),
        n_features=54,
        n_classes=7,
        separation=1.2,
        seed=seed,
        name="Cov",
    )
    return data


def higgs(scale: float = 1.0, seed: int = 13) -> Dataset:
    """HIGGS analogue: 28 dense features, binary, very many samples."""
    data = make_binary_classification(
        n_samples=max(400, int(110_000 * scale)),
        n_features=28,
        separation=0.6,
        seed=seed,
        name="HIGGS",
    )
    return data


def rcv1(scale: float = 1.0, seed: int = 17) -> Dataset:
    """RCV1 analogue: large sparse feature space, binary labels."""
    return make_sparse_binary_classification(
        n_samples=max(300, int(12_000 * scale)),
        n_features=max(1_000, int(8_000 * scale) if scale < 1 else 8_000),
        density=0.002,
        seed=seed,
        name="RCV1",
    )


def heartbeat(scale: float = 1.0, seed: int = 19) -> Dataset:
    """Heartbeat analogue: mid-size dense features, 5 classes (~1k params)."""
    return make_multiclass_classification(
        n_samples=max(300, int(18_000 * scale)),
        n_features=188,
        n_classes=5,
        separation=1.4,
        seed=seed,
        name="Heartbeat",
    )


def cifar10(scale: float = 1.0, seed: int = 23) -> Dataset:
    """cifar10 analogue: large dense feature space, 10 classes.

    The feature count is scaled from 3072 to 128 so that the dense
    large-parameter regime (``qm`` above the PrIU-opt limit) is exercised without hour-long benches.
    """
    return make_multiclass_classification(
        n_samples=max(400, int(10_000 * scale)),
        n_features=128,
        n_classes=10,
        separation=1.6,
        seed=seed,
        name="cifar10",
    )


def covtype_extended(scale: float = 1.0, seed: int = 11, copies: int = 4) -> Dataset:
    """Cov (extended): the Tcat tiling used in the repeated-deletion study."""
    return concatenate_copies(covtype(scale=scale, seed=seed), copies, seed=seed)


def higgs_extended(scale: float = 1.0, seed: int = 13, copies: int = 4) -> Dataset:
    return concatenate_copies(higgs(scale=scale, seed=seed), copies, seed=seed)


def heartbeat_extended(
    scale: float = 1.0, seed: int = 19, copies: int = 4
) -> Dataset:
    return concatenate_copies(heartbeat(scale=scale, seed=seed), copies, seed=seed)


CATALOG = {
    "SGEMM": sgemm,
    "SGEMM (extended)": sgemm_extended,
    "Cov": covtype,
    "HIGGS": higgs,
    "RCV1": rcv1,
    "Heartbeat": heartbeat,
    "cifar10": cifar10,
    "Cov (extended)": covtype_extended,
    "HIGGS (extended)": higgs_extended,
    "Heartbeat (extended)": heartbeat_extended,
}


def load(name: str, scale: float = 1.0) -> Dataset:
    """Load a catalog dataset by its paper name."""
    try:
        factory = CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(CATALOG)}"
        ) from None
    return factory(scale=scale)
