"""Synthetic dataset generators.

The paper evaluates on six public datasets (UCI SGEMM / Covtype / HIGGS,
RCV1, Kaggle ECG Heartbeat, CIFAR-10).  Those downloads are unavailable
offline, so :mod:`repro.datasets` builds synthetic analogues that match the
*shape* each experiment depends on — sample count, feature count, class
count, density, label type — because PrIU's behaviour is governed entirely by
``(n, m, B, τ, Δn, sparsity)`` and not by the semantic content of features.
See DESIGN.md §3 for the substitution rationale.

All generators are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass
class Dataset:
    """A train/validation bundle with paper-style metadata."""

    name: str
    features: object  # ndarray or scipy CSR
    labels: np.ndarray
    valid_features: object
    valid_labels: np.ndarray
    task: str  # "linear" | "binary_logistic" | "multinomial_logistic"
    n_classes: int = 1

    @property
    def n_samples(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        return self.features.shape[1]

    @property
    def n_parameters(self) -> int:
        if self.task == "multinomial_logistic":
            return self.n_features * self.n_classes
        return self.n_features

    @property
    def is_sparse(self) -> bool:
        return sp.issparse(self.features)


def _low_rank_mix(
    features: np.ndarray, rng, decay_exponent: float
) -> np.ndarray:
    """Give features the decaying spectrum real datasets exhibit.

    Raw gaussian features have a flat singular spectrum, which would make
    PrIU's ε-truncated SVD caching (Theorems 6/8) look uselessly pessimistic;
    real tabular/image/text data is strongly low-rank.  We mix through
    ``Q₁ diag(k^-decay) Q₂`` with Haar-random orthogonal factors so the
    feature covariance has power-law singular values.
    """
    if decay_exponent <= 0.0:
        return features
    m = features.shape[1]
    q1, _ = np.linalg.qr(rng.standard_normal((m, m)))
    q2, _ = np.linalg.qr(rng.standard_normal((m, m)))
    scales = (np.arange(1, m + 1, dtype=float)) ** (-decay_exponent)
    mixer = (q1 * scales) @ q2
    # Rescale so the average feature magnitude stays O(1).
    mixer *= np.sqrt(m / np.sum(scales**2))
    return features @ mixer


def _split(features, labels, validation_fraction: float, rng) -> tuple:
    n = features.shape[0]
    order = rng.permutation(n)
    cut = int(round(n * (1.0 - validation_fraction)))
    train_idx, valid_idx = order[:cut], order[cut:]
    return (
        features[train_idx],
        labels[train_idx],
        features[valid_idx],
        labels[valid_idx],
    )


def make_regression(
    n_samples: int,
    n_features: int,
    noise: float = 0.1,
    seed: int = 0,
    validation_fraction: float = 0.1,
    name: str = "synthetic-regression",
    spectral_decay: float = 1.0,
) -> Dataset:
    """Dense linear-regression data: ``y = x·w* + ε`` with low-rank x."""
    rng = np.random.default_rng(seed)
    features = rng.standard_normal((n_samples, n_features))
    features = _low_rank_mix(features, rng, spectral_decay)
    true_weights = rng.standard_normal(n_features) / np.sqrt(n_features)
    labels = features @ true_weights + noise * rng.standard_normal(n_samples)
    x_tr, y_tr, x_va, y_va = _split(features, labels, validation_fraction, rng)
    return Dataset(name, x_tr, y_tr, x_va, y_va, "linear")


def make_binary_classification(
    n_samples: int,
    n_features: int,
    separation: float = 1.0,
    seed: int = 0,
    validation_fraction: float = 0.1,
    name: str = "synthetic-binary",
    spectral_decay: float = 1.0,
) -> Dataset:
    """Two gaussian clouds; labels in {-1, +1} (the paper's convention)."""
    rng = np.random.default_rng(seed)
    direction = rng.standard_normal(n_features)
    direction /= np.linalg.norm(direction)
    labels = rng.choice([-1.0, 1.0], size=n_samples)
    features = rng.standard_normal((n_samples, n_features))
    features += (separation * labels)[:, None] * direction[None, :]
    features = _low_rank_mix(features, rng, spectral_decay)
    x_tr, y_tr, x_va, y_va = _split(features, labels, validation_fraction, rng)
    return Dataset(name, x_tr, y_tr, x_va, y_va, "binary_logistic", n_classes=2)


def make_multiclass_classification(
    n_samples: int,
    n_features: int,
    n_classes: int,
    separation: float = 1.5,
    seed: int = 0,
    validation_fraction: float = 0.1,
    name: str = "synthetic-multiclass",
    spectral_decay: float = 1.0,
) -> Dataset:
    """Gaussian class clusters with integer labels ``0..q-1``."""
    rng = np.random.default_rng(seed)
    centers = separation * rng.standard_normal((n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_samples)
    features = rng.standard_normal((n_samples, n_features)) + centers[labels]
    features = _low_rank_mix(features, rng, spectral_decay)
    x_tr, y_tr, x_va, y_va = _split(features, labels, validation_fraction, rng)
    return Dataset(
        name, x_tr, y_tr, x_va, y_va, "multinomial_logistic", n_classes=n_classes
    )


def make_sparse_binary_classification(
    n_samples: int,
    n_features: int,
    density: float = 0.002,
    separation: float = 2.0,
    seed: int = 0,
    validation_fraction: float = 0.1,
    name: str = "synthetic-sparse-binary",
) -> Dataset:
    """Sparse CSR features (RCV1-style bag-of-words regime), ±1 labels.

    A sparse ground-truth direction determines labels so the task is
    learnable despite the high dimensionality.
    """
    rng = np.random.default_rng(seed)
    features = sp.random(
        n_samples,
        n_features,
        density=density,
        format="csr",
        random_state=np.random.RandomState(seed),
        data_rvs=lambda size: np.abs(rng.standard_normal(size)),
    )
    support = rng.choice(n_features, size=max(4, n_features // 50), replace=False)
    true_weights = np.zeros(n_features)
    true_weights[support] = separation * rng.standard_normal(support.size)
    scores = np.asarray(features @ true_weights).ravel()
    noise = 0.1 * rng.standard_normal(n_samples)
    labels = np.where(scores + noise >= np.median(scores), 1.0, -1.0)
    order = rng.permutation(n_samples)
    cut = int(round(n_samples * (1.0 - validation_fraction)))
    tr, va = order[:cut], order[cut:]
    return Dataset(
        name,
        features[tr],
        labels[tr],
        features[va],
        labels[va],
        "binary_logistic",
        n_classes=2,
    )


def extend_features(dataset: Dataset, extra_features: int, seed: int = 0) -> Dataset:
    """Append random features (the paper's SGEMM (extended) construction)."""
    if dataset.is_sparse:
        raise ValueError("extend_features supports dense datasets only")
    rng = np.random.default_rng(seed)
    extra_tr = rng.standard_normal((dataset.features.shape[0], extra_features))
    extra_va = rng.standard_normal((dataset.valid_features.shape[0], extra_features))
    return Dataset(
        f"{dataset.name} (extended)",
        np.hstack([dataset.features, extra_tr]),
        dataset.labels.copy(),
        np.hstack([dataset.valid_features, extra_va]),
        dataset.valid_labels.copy(),
        dataset.task,
        dataset.n_classes,
    )


def concatenate_copies(dataset: Dataset, n_copies: int, seed: int = 0) -> Dataset:
    """Tile the training set (the paper's Tcat construction, Sec. 6.2).

    Small feature noise decorrelates the copies so the tiled set is not
    degenerate for eigen decompositions.
    """
    if dataset.is_sparse:
        features = sp.vstack([dataset.features] * n_copies).tocsr()
    else:
        rng = np.random.default_rng(seed)
        blocks = [
            dataset.features
            + 0.01 * rng.standard_normal(dataset.features.shape)
            for _ in range(n_copies)
        ]
        features = np.vstack(blocks)
    labels = np.tile(dataset.labels, n_copies)
    return Dataset(
        f"{dataset.name} (extended)",
        features,
        labels,
        dataset.valid_features,
        dataset.valid_labels,
        dataset.task,
        dataset.n_classes,
    )
