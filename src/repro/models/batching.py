"""Deterministic, replayable mini-batch schedules.

PrIU's incremental update must walk the *same* batch sequence as the original
training run (with the removed samples dropped from each batch), and BaseL —
retraining from scratch — does the same.  A :class:`BatchSchedule` therefore
materializes the full sequence of per-iteration index arrays once, seeded, so
every consumer replays identical batches.

``kind`` follows Section 3: ``"gd"`` uses the whole training set each
iteration, ``"sgd"`` one sample, ``"mb-sgd"`` a mini-batch of size ``B``
drawn by cycling through seeded permutations (epoch shuffling), which is the
standard mb-SGD sampling the paper's convergence lemma assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BatchSchedule:
    """A fixed sequence of mini-batches over ``n_samples`` training rows."""

    n_samples: int
    batch_size: int
    n_iterations: int
    seed: int = 0
    kind: str = "mb-sgd"
    batches: list[np.ndarray] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if not self.batches:
            self.batches = self._materialize()

    def _materialize(self) -> list[np.ndarray]:
        if self.kind == "materialized":
            # Compacted stores carry batches that no seeded generator can
            # reproduce (committed samples were dropped and ids remapped);
            # such schedules must be constructed with explicit ``batches``.
            raise ValueError(
                "a 'materialized' schedule cannot be regenerated from a "
                "seed; construct it with explicit batches"
            )
        if self.kind == "gd":
            full = np.arange(self.n_samples)
            return [full for _ in range(self.n_iterations)]
        if self.kind == "sgd":
            size = 1
        elif self.kind == "mb-sgd":
            size = min(self.batch_size, self.n_samples)
        else:
            raise ValueError(f"unknown schedule kind: {self.kind}")
        rng = np.random.default_rng(self.seed)
        batches: list[np.ndarray] = []
        pool = rng.permutation(self.n_samples)
        cursor = 0
        for _ in range(self.n_iterations):
            if cursor + size > self.n_samples:
                pool = rng.permutation(self.n_samples)
                cursor = 0
            batches.append(np.sort(pool[cursor : cursor + size]))
            cursor += size
        return batches

    # --------------------------------------------------------------- access
    def __len__(self) -> int:
        return self.n_iterations

    def __iter__(self):
        return iter(self.batches)

    def __getitem__(self, t: int) -> np.ndarray:
        return self.batches[t]

    def effective_batch_size(self, t: int, removed: set[int] | frozenset[int]) -> int:
        """``B_U^(t)``: batch size after dropping removed sample ids."""
        if not removed:
            return len(self.batches[t])
        return int(np.sum(~np.isin(self.batches[t], list(removed))))

    def surviving(self, t: int, removed: set[int] | frozenset[int]) -> np.ndarray:
        """Batch ``t`` restricted to retained samples."""
        batch = self.batches[t]
        if not removed:
            return batch
        mask = ~np.isin(batch, list(removed))
        return batch[mask]

    def removed_in_batch(
        self, t: int, removed: set[int] | frozenset[int]
    ) -> np.ndarray:
        """The removed sample ids present in batch ``t`` (``R ∩ B(t)``)."""
        if not removed:
            return np.empty(0, dtype=int)
        batch = self.batches[t]
        mask = np.isin(batch, list(removed))
        return batch[mask]


def make_schedule(
    n_samples: int,
    batch_size: int,
    n_iterations: int,
    seed: int = 0,
    kind: str = "mb-sgd",
) -> BatchSchedule:
    """Convenience constructor mirroring the paper's (B, τ) hyperparameters."""
    return BatchSchedule(
        n_samples=n_samples,
        batch_size=batch_size,
        n_iterations=n_iterations,
        seed=seed,
        kind=kind,
    )
