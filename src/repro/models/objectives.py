"""Objective functions of Section 3 (Equations 2-4), with gradients/Hessians.

All three objectives carry L2 regularization ``λ/2 ‖w‖²`` and expose the same
interface so the trainer, the influence-function baseline and the PrIU capture
hooks can treat them uniformly:

* ``value(w, X, y)`` — the (mean) regularized objective ``h(w)``
* ``gradient(w, X, y)`` — ``∇h`` averaged over the given samples
* ``hessian(w, X, y)`` — ``∇²h`` (dense; used only by INFL and tests)
* ``predict(w, X)`` / ``metric(w, X, y)`` — task-appropriate evaluation

Conventions: binary labels are ±1 (footnote 1 of the paper); multinomial
labels are integers ``0..q-1`` and the parameter vector is
``w = vec([w_1 … w_q])`` laid out class-major (``w.reshape(q, m)``).
"""

from __future__ import annotations

import numpy as np

from ..linalg.interpolation import sigmoid, sigmoid_complement
from ..linalg.matrix_utils import is_sparse, matvec


class LinearRegressionObjective:
    """Equation 2: ``h(w) = (1/n) Σ (y_i - x_iᵀw)² + λ/2 ‖w‖²``."""

    kind = "linear"

    def __init__(self, regularization: float = 0.0) -> None:
        self.regularization = float(regularization)

    def value(self, w: np.ndarray, features, labels: np.ndarray) -> float:
        residuals = matvec(features, w) - np.asarray(labels, dtype=float)
        penalty = 0.5 * self.regularization * float(w @ w)
        return float(np.mean(residuals**2) + penalty)

    def gradient(self, w: np.ndarray, features, labels: np.ndarray) -> np.ndarray:
        n = features.shape[0]
        residuals = matvec(features, w) - np.asarray(labels, dtype=float)
        grad = 2.0 * matvec(features.T, residuals) / n
        return grad + self.regularization * w

    def hessian(self, w: np.ndarray, features, labels: np.ndarray) -> np.ndarray:
        n, m = features.shape
        if is_sparse(features):
            gram = np.asarray((features.T @ features).todense())
        else:
            feats = np.asarray(features, dtype=float)
            gram = feats.T @ feats
        return 2.0 * gram / n + self.regularization * np.eye(m)

    def predict(self, w: np.ndarray, features) -> np.ndarray:
        return matvec(features, w)

    def metric(self, w: np.ndarray, features, labels: np.ndarray) -> float:
        """Validation MSE (lower is better)."""
        residuals = self.predict(w, features) - np.asarray(labels, dtype=float)
        return float(np.mean(residuals**2))

    def n_parameters(self, n_features: int) -> int:
        return n_features


class BinaryLogisticObjective:
    """Equation 3 with labels in {-1, +1}."""

    kind = "binary_logistic"

    def __init__(self, regularization: float = 0.0) -> None:
        self.regularization = float(regularization)

    def margins(self, w: np.ndarray, features, labels: np.ndarray) -> np.ndarray:
        """``y_i · w^T x_i`` — the argument of the non-linearity."""
        return np.asarray(labels, dtype=float) * matvec(features, w)

    def value(self, w: np.ndarray, features, labels: np.ndarray) -> float:
        margins = self.margins(w, features, labels)
        # ln(1 + e^{-z}) computed stably.
        losses = np.logaddexp(0.0, -margins)
        penalty = 0.5 * self.regularization * float(w @ w)
        return float(np.mean(losses) + penalty)

    def gradient(self, w: np.ndarray, features, labels: np.ndarray) -> np.ndarray:
        n = features.shape[0]
        labels = np.asarray(labels, dtype=float)
        margins = labels * matvec(features, w)
        weights = labels * sigmoid_complement(margins)  # y_i f(y_i wᵀx_i)
        grad = -matvec(features.T, weights) / n
        return grad + self.regularization * w

    def hessian(self, w: np.ndarray, features, labels: np.ndarray) -> np.ndarray:
        n, m = features.shape
        margins = self.margins(w, features, labels)
        # f'(z) = -σ(z)σ(-z); Hessian = (1/n) Σ σσ(-) x xᵀ + λI.
        curvature = sigmoid(margins) * sigmoid(-margins)
        if is_sparse(features):
            scaled = features.multiply(curvature[:, None])
            gram = np.asarray((features.T @ scaled).todense())
        else:
            feats = np.asarray(features, dtype=float)
            gram = feats.T @ (feats * curvature[:, None])
        return gram / n + self.regularization * np.eye(m)

    def predict_proba(self, w: np.ndarray, features) -> np.ndarray:
        """P(label = +1)."""
        return sigmoid(matvec(features, w))

    def predict(self, w: np.ndarray, features) -> np.ndarray:
        """Hard ±1 predictions."""
        return np.where(matvec(features, w) >= 0.0, 1.0, -1.0)

    def metric(self, w: np.ndarray, features, labels: np.ndarray) -> float:
        """Validation accuracy (higher is better)."""
        return float(
            np.mean(self.predict(w, features) == np.asarray(labels, dtype=float))
        )

    def n_parameters(self, n_features: int) -> int:
        return n_features


class MultinomialLogisticObjective:
    """Equation 4: softmax regression over ``q`` classes.

    Parameters are ``w = vec([w_1 … w_q])`` with ``w.reshape(q, m)`` giving
    one row per class.  Labels are integers in ``0..q-1``.
    """

    kind = "multinomial_logistic"

    def __init__(self, n_classes: int, regularization: float = 0.0) -> None:
        if n_classes < 2:
            raise ValueError("multinomial regression needs at least 2 classes")
        self.n_classes = int(n_classes)
        self.regularization = float(regularization)

    def _weights_matrix(self, w: np.ndarray, n_features: int) -> np.ndarray:
        return np.asarray(w, dtype=float).reshape(self.n_classes, n_features)

    def logits(self, w: np.ndarray, features) -> np.ndarray:
        """``n × q`` matrix of class scores."""
        weight_rows = self._weights_matrix(w, features.shape[1])
        scores = features @ weight_rows.T
        if is_sparse(scores):  # pragma: no cover
            scores = scores.todense()
        return np.asarray(scores)

    def probabilities(self, w: np.ndarray, features) -> np.ndarray:
        scores = self.logits(w, features)
        scores = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)

    def value(self, w: np.ndarray, features, labels: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=int)
        scores = self.logits(w, features)
        shifted = scores - scores.max(axis=1, keepdims=True)
        log_norm = np.log(np.exp(shifted).sum(axis=1)) + scores.max(axis=1)
        picked = scores[np.arange(len(labels)), labels]
        penalty = 0.5 * self.regularization * float(w @ w)
        return float(np.mean(log_norm - picked) + penalty)

    def gradient(self, w: np.ndarray, features, labels: np.ndarray) -> np.ndarray:
        n, m = features.shape
        labels = np.asarray(labels, dtype=int)
        probs = self.probabilities(w, features)
        probs[np.arange(n), labels] -= 1.0  # p - onehot
        if is_sparse(features):
            grad_rows = np.asarray((features.T @ probs).todense()).T
        else:
            grad_rows = (np.asarray(features, dtype=float).T @ probs).T  # q × m
        grad = grad_rows.ravel() / n
        return grad + self.regularization * np.asarray(w, dtype=float)

    def hessian(self, w: np.ndarray, features, labels: np.ndarray) -> np.ndarray:
        """Dense ``(qm) × (qm)`` Hessian — INFL and small-scale tests only."""
        n, m = features.shape
        feats = np.asarray(
            features.todense() if is_sparse(features) else features, dtype=float
        )
        probs = self.probabilities(w, feats)
        q = self.n_classes
        hess = np.zeros((q * m, q * m))
        for i in range(n):
            p = probs[i]
            lam = np.diag(p) - np.outer(p, p)  # q × q
            outer = np.outer(feats[i], feats[i])  # m × m
            hess += np.kron(lam, outer)
        hess /= n
        hess += self.regularization * np.eye(q * m)
        return hess

    def predict(self, w: np.ndarray, features) -> np.ndarray:
        return np.argmax(self.logits(w, features), axis=1)

    def metric(self, w: np.ndarray, features, labels: np.ndarray) -> float:
        """Validation accuracy (higher is better)."""
        return float(np.mean(self.predict(w, features) == np.asarray(labels)))

    def n_parameters(self, n_features: int) -> int:
        return self.n_classes * n_features
