"""Regression-model substrate: objectives, GBM trainer, baselines."""

from .batching import BatchSchedule, make_schedule
from .closed_form import IncrementalClosedForm, closed_form_solution
from .influence import InfluenceFunctionUpdater
from .objectives import (
    BinaryLogisticObjective,
    LinearRegressionObjective,
    MultinomialLogisticObjective,
)
from .sgd import TrainingResult, objective_for, train

__all__ = [
    "BatchSchedule",
    "BinaryLogisticObjective",
    "IncrementalClosedForm",
    "InfluenceFunctionUpdater",
    "LinearRegressionObjective",
    "MultinomialLogisticObjective",
    "TrainingResult",
    "closed_form_solution",
    "make_schedule",
    "objective_for",
    "train",
]
