"""Regression-model substrate: objectives, GBM trainer, baselines.

Key entry points: :func:`objective_for` maps a task name to its
objective (Sec. 3, Eqs. 2–4); :func:`make_schedule` /
:class:`BatchSchedule` build the deterministic, replayable mini-batch
sequences every consumer (capture, PrIU replay, BaseL retraining)
shares; :func:`train` is the GBM trainer with optional capture hook;
:class:`IncrementalClosedForm` and :class:`InfluenceFunctionUpdater` are
the Closed-form and INFL baselines of Sec. 6.
"""

from .batching import BatchSchedule, make_schedule
from .closed_form import IncrementalClosedForm, closed_form_solution
from .influence import InfluenceFunctionUpdater
from .objectives import (
    BinaryLogisticObjective,
    LinearRegressionObjective,
    MultinomialLogisticObjective,
)
from .sgd import TrainingResult, objective_for, train

__all__ = [
    "BatchSchedule",
    "BinaryLogisticObjective",
    "IncrementalClosedForm",
    "InfluenceFunctionUpdater",
    "LinearRegressionObjective",
    "MultinomialLogisticObjective",
    "TrainingResult",
    "closed_form_solution",
    "make_schedule",
    "objective_for",
    "train",
]
