"""The gradient-based-method (GBM) trainer: GD / SGD / mb-SGD (Section 3).

This is the paper's "standard method" baseline: the gradient of each
objective is derived manually and the iterations of Equations 5/6 (and the
multinomial analogue) are programmed explicitly.  The same trainer serves

* the original training run (optionally with a *capture hook* through which
  PrIU records provenance summaries — see :mod:`repro.core.capture`);
* **BaseL**, retraining from scratch after a deletion: the identical batch
  schedule is replayed with the removed samples dropped from every mini-batch
  and the per-batch denominator replaced by ``B_U^(t)``;
* the linearized iteration ``w_L`` of Equation 9 (``linearize=`` argument),
  used to validate Theorem 4 empirically.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..linalg.interpolation import (
    PiecewiseLinearInterpolator,
    sigmoid_complement,
)
from ..linalg.matrix_utils import is_sparse
from .batching import BatchSchedule
from .objectives import (
    BinaryLogisticObjective,
    LinearRegressionObjective,
    MultinomialLogisticObjective,
)

CaptureHook = Callable[[int, np.ndarray, np.ndarray, dict[str, Any]], None]


@dataclass
class TrainingResult:
    """Output of a GBM run: final parameters plus everything needed to replay."""

    weights: np.ndarray
    objective: Any
    schedule: BatchSchedule
    learning_rate: float
    regularization: float
    n_iterations: int
    wall_time: float
    objective_trace: list[float] = field(default_factory=list)

    @property
    def n_parameters(self) -> int:
        return self.weights.shape[0]


def _initial_weights(objective, n_features: int, w0: np.ndarray | None) -> np.ndarray:
    size = objective.n_parameters(n_features)
    if w0 is None:
        return np.zeros(size)
    w0 = np.asarray(w0, dtype=float).ravel()
    if w0.shape[0] != size:
        raise ValueError(f"w0 has {w0.shape[0]} entries, expected {size}")
    return w0.copy()


def train(
    objective,
    features,
    labels: np.ndarray,
    schedule: BatchSchedule,
    learning_rate: float,
    w0: np.ndarray | None = None,
    exclude: frozenset[int] | set[int] = frozenset(),
    capture_hook: CaptureHook | None = None,
    linearize: PiecewiseLinearInterpolator | None = None,
    trace_every: int = 0,
) -> TrainingResult:
    """Run GBM with the given (replayable) schedule.

    Parameters
    ----------
    exclude:
        Sample ids dropped from every mini-batch — this is BaseL's retraining
        mode.  Batches that lose all their samples degenerate to a pure
        shrinkage step ``w ← (1-ηλ)w``.
    capture_hook:
        Called once per iteration *before* the weight update with
        ``(t, batch_indices, w, extras)``; ``extras`` carries the
        objective-specific quantities PrIU caches (margins for binary
        logistic, class probabilities for multinomial).
    linearize:
        When given (binary logistic only), the update uses the interpolant
        ``s`` instead of ``f`` — the ``w_L`` iteration of Equation 9.
    """
    labels = np.asarray(labels)
    exclude = frozenset(int(i) for i in exclude)
    eta = float(learning_rate)
    lam = float(objective.regularization)
    w = _initial_weights(objective, features.shape[1], w0)
    trace: list[float] = []
    start = time.perf_counter()

    if isinstance(objective, LinearRegressionObjective):
        step = _linear_step
    elif isinstance(objective, BinaryLogisticObjective):
        step = _binary_step
    elif isinstance(objective, MultinomialLogisticObjective):
        step = _multinomial_step
    else:
        raise TypeError(f"unsupported objective: {type(objective).__name__}")

    for t in range(schedule.n_iterations):
        batch = schedule.surviving(t, exclude)
        if batch.size == 0:
            w = (1.0 - eta * lam) * w
            continue
        w = step(
            objective, features, labels, batch, w, eta, lam, capture_hook, t,
            linearize,
        )
        if trace_every and (t + 1) % trace_every == 0:
            trace.append(objective.value(w, features, labels))
    wall = time.perf_counter() - start
    return TrainingResult(
        weights=w,
        objective=objective,
        schedule=schedule,
        learning_rate=eta,
        regularization=lam,
        n_iterations=schedule.n_iterations,
        wall_time=wall,
        objective_trace=trace,
    )


def _linear_step(
    objective, features, labels, batch, w, eta, lam, hook, t, linearize
) -> np.ndarray:
    block = features[batch]
    targets = labels[batch].astype(float)
    if is_sparse(block):
        residual = np.asarray(block @ w).ravel() - targets
        gradient_term = np.asarray(block.T @ residual).ravel()
    else:
        block = np.asarray(block, dtype=float)
        residual = block @ w - targets
        gradient_term = block.T @ residual
    if hook is not None:
        hook(t, batch, w, {})
    return (1.0 - eta * lam) * w - (2.0 * eta / batch.size) * gradient_term


def _binary_step(
    objective, features, labels, batch, w, eta, lam, hook, t, linearize
) -> np.ndarray:
    block = features[batch]
    y = labels[batch].astype(float)
    if is_sparse(block):
        margins = y * np.asarray(block @ w).ravel()
    else:
        block = np.asarray(block, dtype=float)
        margins = y * (block @ w)
    if linearize is None:
        factors = sigmoid_complement(margins)
    else:
        slopes, intercepts = linearize.coefficients(margins)
        factors = slopes * margins + intercepts
    if hook is not None:
        hook(t, batch, w, {"margins": margins})
    weighted = y * factors
    if is_sparse(block):
        gradient_term = np.asarray(block.T @ weighted).ravel()
    else:
        gradient_term = block.T @ weighted
    return (1.0 - eta * lam) * w + (eta / batch.size) * gradient_term


def _multinomial_step(
    objective, features, labels, batch, w, eta, lam, hook, t, linearize
) -> np.ndarray:
    q = objective.n_classes
    m = features.shape[1]
    block = features[batch]
    if is_sparse(block):
        block = np.asarray(block.todense())
    else:
        block = np.asarray(block, dtype=float)
    y = np.asarray(labels[batch], dtype=int)
    weight_rows = w.reshape(q, m)
    scores = block @ weight_rows.T
    scores -= scores.max(axis=1, keepdims=True)
    probs = np.exp(scores)
    probs /= probs.sum(axis=1, keepdims=True)
    if hook is not None:
        hook(t, batch, w, {"probabilities": probs})
    probs_minus = probs.copy()
    probs_minus[np.arange(batch.size), y] -= 1.0
    grad_rows = probs_minus.T @ block  # q × m
    return (1.0 - eta * lam) * w - (eta / batch.size) * grad_rows.ravel()


def objective_for(
    task: str, regularization: float, n_classes: int | None = None
):
    """Factory keyed by task name used by configs and the facade."""
    if task == "linear":
        return LinearRegressionObjective(regularization)
    if task == "binary_logistic":
        return BinaryLogisticObjective(regularization)
    if task == "multinomial_logistic":
        if n_classes is None:
            raise ValueError("multinomial task requires n_classes")
        return MultinomialLogisticObjective(n_classes, regularization)
    raise ValueError(f"unknown task: {task}")
