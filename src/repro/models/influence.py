"""INFL: the influence-function baseline (Koh & Liang 2017, multi-sample).

The paper extends the single-sample influence function to deleting an
arbitrary subset ``R``.  Removing sample ``i`` corresponds to perturbing its
weight by ``ε = -1/n``; first-order influence of the whole group is the sum:

    ``w_{-R} ≈ w* + H⁻¹ (Δn·λ·w* + Σ_{i∈R} ∇ℓ(z_i, w*)) / (n - Δn)``

with ``H = ∇²h(w*)`` the full-data regularized Hessian and ``∇ℓ`` the
*unregularized* per-sample loss gradient.  The ``Δn·λ·w*`` term is the
renormalization drift of the mean loss against the fixed L2 penalty; it
comes out of the same derivation and costs nothing extra (for ``Δn = 1`` and
``λ = 0`` the formula reduces to Koh & Liang's ``w* + (1/n) H⁻¹ ∇ℓ``).
One Hessian solve, no iteration — which is why INFL is fast, and why its
accuracy collapses when ``|R|`` grows (the Taylor expansion is taken at the
full-data optimum and the Hessian shift is ignored).

``mode="newton"`` implements the sharper one-step Newton correction on the
*retained* objective, included for ablations.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from ..linalg.matrix_utils import is_sparse, matvec
from .objectives import (
    BinaryLogisticObjective,
    LinearRegressionObjective,
    MultinomialLogisticObjective,
)


def _per_sample_loss_gradient_sum(objective, w, features, labels, indices):
    """``Σ_{i∈R} ∇ℓ_i(w)`` without the regularization term."""
    block = features[indices]
    y = labels[indices]
    if isinstance(objective, LinearRegressionObjective):
        residual = matvec(block, w) - np.asarray(y, dtype=float)
        return 2.0 * matvec(block.T, residual)
    if isinstance(objective, BinaryLogisticObjective):
        y = np.asarray(y, dtype=float)
        margins = y * matvec(block, w)
        from ..linalg.interpolation import sigmoid_complement

        weights = y * sigmoid_complement(margins)
        return -matvec(block.T, weights)
    if isinstance(objective, MultinomialLogisticObjective):
        dense = np.asarray(
            block.todense() if is_sparse(block) else block, dtype=float
        )
        probs = objective.probabilities(w, dense)
        probs[np.arange(len(indices)), np.asarray(y, dtype=int)] -= 1.0
        return (probs.T @ dense).ravel()
    raise TypeError(f"unsupported objective: {type(objective).__name__}")


class InfluenceFunctionUpdater:
    """Precomputes the Hessian factorization once; updates are one solve."""

    def __init__(
        self,
        objective,
        features,
        labels: np.ndarray,
        weights: np.ndarray,
        mode: str = "koh-liang",
        use_cg: bool = False,
    ) -> None:
        if mode not in ("koh-liang", "newton"):
            raise ValueError(f"unknown INFL mode: {mode}")
        self.objective = objective
        self.features = features
        self.labels = np.asarray(labels)
        self.weights = np.asarray(weights, dtype=float).copy()
        self.mode = mode
        self.use_cg = use_cg
        self.n_samples = features.shape[0]
        # Offline: the full-data Hessian (the expensive part the paper calls
        # out as prohibitive for very large feature spaces).
        self._hessian = objective.hessian(self.weights, features, self.labels)

    def _solve(self, hessian: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        if self.use_cg:
            solution, info = spla.cg(hessian, rhs, rtol=1e-10, maxiter=10_000)
            if info == 0:
                return solution
        return np.linalg.solve(hessian, rhs)

    def update(self, removed_indices: np.ndarray) -> np.ndarray:
        """Estimated parameters after deleting ``removed_indices``."""
        removed = np.asarray(removed_indices, dtype=int)
        if removed.size == 0:
            return self.weights.copy()
        if removed.size >= self.n_samples:
            raise ValueError("cannot delete every training sample")
        grad_sum = _per_sample_loss_gradient_sum(
            self.objective, self.weights, self.features, self.labels, removed
        )
        if self.mode == "koh-liang":
            remaining = self.n_samples - removed.size
            drift = removed.size * self.objective.regularization * self.weights
            delta = self._solve(self._hessian, (drift + grad_sum) / remaining)
            return self.weights + delta
        # One-step Newton on the retained objective.
        keep = np.setdiff1d(np.arange(self.n_samples), removed)
        retained_grad = self.objective.gradient(
            self.weights, self.features[keep], self.labels[keep]
        )
        retained_hess = self.objective.hessian(
            self.weights, self.features[keep], self.labels[keep]
        )
        return self.weights - self._solve(retained_hess, retained_grad)
