"""Closed-form linear regression and its incremental view (Sec. 2 & 6 baseline).

The paper compares PrIU/PrIU-opt against the closed-form incremental update
of [13, 22, 40] ("Closed-form"): because the ridge solution

    ``w = (XᵀX + nλ/2 · I)⁻¹ XᵀY``

contains a matrix inverse, only the *linear* intermediates ``M = XᵀX`` and
``N = XᵀY`` are maintained as views; a deletion subtracts ``ΔXᵀΔX`` and
``ΔXᵀΔY`` and then pays one fresh ``O(m³)`` solve.

The ``nλ/2`` scaling makes the closed form the exact minimizer of the
Equation 2 objective ``(1/n) Σ (y_i - x_iᵀw)² + λ/2 ‖w‖²``.
"""

from __future__ import annotations

import numpy as np

from ..linalg.matrix_utils import gram, is_sparse, moment, stable_solve


def closed_form_solution(
    features, labels: np.ndarray, regularization: float
) -> np.ndarray:
    """Exact ridge minimizer of Equation 2 on the given data."""
    n, m = features.shape
    big_m = gram(features)
    big_n = moment(features, labels)
    return stable_solve(big_m + 0.5 * n * regularization * np.eye(m), big_n)


class IncrementalClosedForm:
    """Materialized ``(M, N)`` views supporting deletion (and insertion)."""

    def __init__(self, features, labels: np.ndarray, regularization: float) -> None:
        self.features = features
        self.labels = np.asarray(labels, dtype=float).ravel()
        self.regularization = float(regularization)
        self.n_samples, self.n_features = features.shape
        # Offline phase: materialize the linear views.
        self._m = gram(features)
        self._n = moment(features, self.labels)

    def solve(self) -> np.ndarray:
        """Model over the full training set."""
        return self._solve(self._m, self._n, self.n_samples)

    def _solve(self, m_view: np.ndarray, n_view: np.ndarray, n: int) -> np.ndarray:
        ridge = m_view + 0.5 * n * self.regularization * np.eye(self.n_features)
        return stable_solve(ridge, n_view)

    def delete(self, removed_indices: np.ndarray) -> np.ndarray:
        """Model after removing ``removed_indices`` — one delta + one solve.

        The views themselves are left untouched so repeated exploratory
        deletions all start from the same materialized state.
        """
        removed = np.asarray(removed_indices, dtype=int)
        if removed.size == 0:
            return self.solve()
        block = self.features[removed]
        if is_sparse(block):
            delta_m = np.asarray((block.T @ block).todense())
            delta_n = np.asarray(block.T @ self.labels[removed]).ravel()
        else:
            block = np.asarray(block, dtype=float)
            delta_m = block.T @ block
            delta_n = block.T @ self.labels[removed]
        remaining = self.n_samples - removed.size
        if remaining <= 0:
            raise ValueError("cannot delete every training sample")
        return self._solve(self._m - delta_m, self._n - delta_n, remaining)

    def insert(self, new_features: np.ndarray, new_labels: np.ndarray) -> np.ndarray:
        """Model after appending new samples (view maintenance symmetry)."""
        new_features = np.atleast_2d(np.asarray(new_features, dtype=float))
        new_labels = np.asarray(new_labels, dtype=float).ravel()
        delta_m = new_features.T @ new_features
        delta_n = new_features.T @ new_labels
        total = self.n_samples + new_features.shape[0]
        return self._solve(self._m + delta_m, self._n + delta_n, total)

    def nbytes(self) -> int:
        """Memory held by the materialized views."""
        return int(self._m.nbytes + self._n.nbytes)
