"""Linear-algebra substrate: interpolation, truncated SVD, eigen tools.

Key entry points: :func:`sigmoid_complement_interpolator` builds the
piecewise-linear approximation that removes the logistic non-linearity
(Sec. 4.2); :func:`truncate_summary` / :class:`TruncatedSummary` are the
SVD compression of provenance summaries (Theorems 6/8);
:func:`eigendecompose` and :func:`gd_diagonal_recursion` power the
PrIU-opt eigen tail (Sec. 5.2, Eqs. 15–18); :func:`is_sparse` and
friends in :mod:`~repro.linalg.matrix_utils` keep dense/sparse handling
uniform.
"""

from .eigen import (
    EigenSystem,
    eigendecompose,
    gd_diagonal_recursion,
    gd_diagonal_recursion_scheduled,
    incremental_eigenvalues,
    incremental_eigenvalues_from_rows,
)
from .interpolation import (
    SIGMOID_SECOND_DERIVATIVE_BOUND,
    PiecewiseLinearInterpolator,
    sigmoid,
    sigmoid_complement,
    sigmoid_complement_interpolator,
)
from .matrix_utils import (
    gram,
    is_sparse,
    matvec,
    moment,
    nbytes_of,
    row_block,
    spectral_norm,
    stable_solve,
    symmetrize,
    weighted_gram,
)
from .svd import (
    RetruncationResult,
    TruncatedSummary,
    retruncate_summary,
    select_rank,
    spectral_mass_ratio,
    truncate_from_samples,
    truncate_summary,
)

__all__ = [
    "EigenSystem",
    "PiecewiseLinearInterpolator",
    "RetruncationResult",
    "SIGMOID_SECOND_DERIVATIVE_BOUND",
    "TruncatedSummary",
    "retruncate_summary",
    "eigendecompose",
    "gd_diagonal_recursion",
    "gd_diagonal_recursion_scheduled",
    "gram",
    "incremental_eigenvalues",
    "incremental_eigenvalues_from_rows",
    "is_sparse",
    "matvec",
    "moment",
    "nbytes_of",
    "row_block",
    "select_rank",
    "sigmoid",
    "sigmoid_complement",
    "sigmoid_complement_interpolator",
    "spectral_mass_ratio",
    "spectral_norm",
    "stable_solve",
    "symmetrize",
    "truncate_from_samples",
    "truncate_summary",
    "weighted_gram",
]
