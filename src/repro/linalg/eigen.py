"""Eigenvalue machinery for PrIU-opt (Sec. 5.2, Equations 15-18).

For small feature spaces PrIU-opt replaces the per-iteration mb-SGD replay by
the *GD* recursion, which diagonalizes in the eigenbasis of
``M = XᵀX = Q diag(c) Q⁻¹``:

    ``w^(t+1) = Q diag(Π_j ρ_j(c_i)) Q⁻¹ w^(0)
               + Q diag(Σ_l η_l Π_{j>l} ρ_j(c_i)) Q⁻¹ (2N/n)``

with ``ρ_j(c) = 1 - η_j λ - 2 η_j c / n``.  After a deletion, the eigenvalues
of ``M' = M - ΔXᵀΔX`` are updated *incrementally* (Ning et al., Pattern
Recognition 2010) under the assumption that the eigenvectors barely move:

    ``c'_i = diag(Q⁻¹ M' Q)_i = c_i - diag(Qᵀ ΔXᵀΔX Q)_i``  (orthonormal Q).

The diagonal recursion then costs ``O(τ m)`` — no matrix products in the
update loop at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class EigenSystem:
    """Eigendecomposition ``M = Q diag(values) Qᵀ`` of a symmetric matrix."""

    eigenvectors: np.ndarray  # Q, orthonormal columns (m × m)
    eigenvalues: np.ndarray  # c, length m

    @property
    def n_features(self) -> int:
        return self.eigenvectors.shape[0]

    def reconstruct(self) -> np.ndarray:
        return (self.eigenvectors * self.eigenvalues) @ self.eigenvectors.T

    def to_eigenbasis(self, vector: np.ndarray) -> np.ndarray:
        """Coordinates of ``vector`` in the eigenbasis (``Qᵀ v``)."""
        return self.eigenvectors.T @ vector

    def from_eigenbasis(self, coords: np.ndarray) -> np.ndarray:
        """Map eigenbasis coordinates back (``Q c``)."""
        return self.eigenvectors @ coords

    def nbytes(self) -> int:
        return self.eigenvectors.nbytes + self.eigenvalues.nbytes


def eigendecompose(matrix: np.ndarray) -> EigenSystem:
    """Symmetric eigendecomposition (offline phase of PrIU-opt)."""
    matrix = np.asarray(matrix, dtype=float)
    sym = 0.5 * (matrix + matrix.T)
    values, vectors = np.linalg.eigh(sym)
    return EigenSystem(eigenvectors=vectors, eigenvalues=values)


def incremental_eigenvalues(
    system: EigenSystem, removed_gram: np.ndarray
) -> np.ndarray:
    """Updated eigenvalues of ``M - removed_gram`` via Equation 18.

    ``removed_gram`` is ``ΔXᵀΔX`` (or the logistic ``ΔC``).  Only the
    diagonal of ``Qᵀ ΔM Q`` is formed — ``O(min(Δn, m) m²)`` through the
    factored form when the caller passes the raw removed rows instead (see
    :func:`incremental_eigenvalues_from_rows`).
    """
    q = system.eigenvectors
    correction = np.einsum("ij,ij->j", q, removed_gram @ q)
    return system.eigenvalues - correction


def incremental_eigenvalues_from_rows(
    system: EigenSystem,
    removed_rows: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Same update without materializing ``ΔXᵀΔX``: ``O(Δn · m²)`` worst case.

    ``diag(Qᵀ ΔXᵀΔX Q) = Σ_i w_i (Qᵀ x_i)∘(Qᵀ x_i)`` — one projection per
    removed row.
    """
    removed_rows = np.atleast_2d(np.asarray(removed_rows, dtype=float))
    if removed_rows.size == 0:
        return system.eigenvalues.copy()
    projected = removed_rows @ system.eigenvectors  # Δn × m
    if weights is None:
        correction = np.sum(projected**2, axis=0)
    else:
        weights = np.asarray(weights, dtype=float).ravel()
        correction = np.sum(weights[:, None] * projected**2, axis=0)
    return system.eigenvalues - correction


def gd_diagonal_recursion(
    eigenvalues: np.ndarray,
    initial_coords: np.ndarray,
    bias_coords: np.ndarray,
    n_samples: int,
    n_iterations: int,
    learning_rate: float,
    regularization: float,
    gram_sign: float = -2.0,
) -> np.ndarray:
    """Evaluate Equation 17 per eigen-coordinate in ``O(τ m)``.

    Runs the scalar recursion ``v ← ρ_i v + η b_i`` with
    ``ρ_i = 1 - ηλ + gram_sign · η c_i / n`` for every eigenvalue ``c_i``:

    * linear regression: ``gram_sign = -2`` and ``b = (2/n) · QᵀN``
      (``N = XᵀY``), matching Equations 15/16;
    * PrIU-opt logistic tail: ``gram_sign = +1`` and ``b = (1/n) · QᵀD``
      (the frozen moment vector), matching Sec. 5.4.

    A constant learning rate admits the closed geometric form, which we use;
    the loop fallback handles per-iteration schedules.

    Every argument broadcasts: passing ``eigenvalues``/``bias_coords`` of
    shape ``(m, K)`` with ``n_samples`` of shape ``(K,)`` evaluates the
    recursions of K deletion requests in one vectorized sweep (the batched
    eigen tail of ``remove_many``); ``initial_coords`` may be ``(m,)``,
    ``(m, 1)`` or ``(m, K)``.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    n_samples = np.asarray(n_samples, dtype=float)
    rho = 1.0 - learning_rate * regularization + (
        gram_sign * learning_rate / n_samples
    ) * eigenvalues
    v0 = np.asarray(initial_coords, dtype=float)
    b = np.asarray(bias_coords, dtype=float)
    t = n_iterations
    # Closed form of v_t = rho^t v_0 + eta * b * (1 - rho^t) / (1 - rho).
    rho_t = rho**t
    near_one = np.isclose(rho, 1.0)
    geometric = np.where(
        near_one, float(t), (1.0 - rho_t) / np.where(near_one, 1.0, 1.0 - rho)
    )
    return rho_t * v0 + learning_rate * b * geometric


def gd_diagonal_recursion_scheduled(
    eigenvalues: np.ndarray,
    initial_coords: np.ndarray,
    bias_coords: np.ndarray,
    n_samples: int,
    learning_rates: np.ndarray,
    regularization: float,
    gram_sign: float = -2.0,
) -> np.ndarray:
    """Schedule-aware variant of :func:`gd_diagonal_recursion` (O(τ m) loop)."""
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    v = np.asarray(initial_coords, dtype=float).copy()
    b = np.asarray(bias_coords, dtype=float)
    for eta in np.asarray(learning_rates, dtype=float):
        rho = 1.0 - eta * regularization + (
            gram_sign * eta / float(n_samples)
        ) * eigenvalues
        v = rho * v + eta * b
    return v
