"""Shared dense/sparse matrix helpers used across the library."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

ArrayLike = np.ndarray


def is_sparse(matrix) -> bool:
    """Whether ``matrix`` is a scipy sparse matrix/array."""
    return sp.issparse(matrix)


def row_block(matrix, indices: np.ndarray):
    """Select rows from a dense array or sparse matrix uniformly."""
    if is_sparse(matrix):
        return matrix[indices]
    return np.asarray(matrix)[indices]


def gram(matrix) -> np.ndarray:
    """``XᵀX`` as a dense array (sparse inputs densify the small m×m result)."""
    if is_sparse(matrix):
        return np.asarray((matrix.T @ matrix).todense())
    matrix = np.asarray(matrix, dtype=float)
    return matrix.T @ matrix


def weighted_gram(matrix, weights: np.ndarray) -> np.ndarray:
    """``Σ w_i x_i x_iᵀ`` as a dense m×m array."""
    weights = np.asarray(weights, dtype=float).ravel()
    if is_sparse(matrix):
        scaled = matrix.multiply(weights[:, None])
        return np.asarray((matrix.T @ scaled).todense())
    matrix = np.asarray(matrix, dtype=float)
    return matrix.T @ (matrix * weights[:, None])


def moment(matrix, labels: np.ndarray) -> np.ndarray:
    """``XᵀY`` as a dense vector."""
    labels = np.asarray(labels, dtype=float).ravel()
    if is_sparse(matrix):
        return np.asarray(matrix.T @ labels).ravel()
    return np.asarray(matrix, dtype=float).T @ labels


def matvec(matrix, vector: np.ndarray) -> np.ndarray:
    """Uniform dense/sparse matrix-vector product returning a 1-D array."""
    result = matrix @ vector
    if is_sparse(result):  # pragma: no cover - sparse @ dense yields dense
        result = result.todense()
    return np.asarray(result).ravel()


def spectral_norm(matrix, n_iterations: int = 50, seed: int = 0) -> float:
    """2-norm estimate by power iteration (works for dense and sparse)."""
    rng = np.random.default_rng(seed)
    n = matrix.shape[1]
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    for _ in range(n_iterations):
        u = matvec(matrix, v)
        w = matvec(matrix.T, u)
        norm = np.linalg.norm(w)
        if norm == 0.0:
            return 0.0
        v = w / norm
    return float(np.linalg.norm(matvec(matrix, v)))


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Average a nearly-symmetric matrix with its transpose."""
    return 0.5 * (matrix + matrix.T)


def stable_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` falling back to least squares for singular ``A``."""
    matrix = np.asarray(matrix, dtype=float)
    rhs = np.asarray(rhs, dtype=float)
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
        return solution


def nbytes_of(matrix) -> int:
    """Approximate memory footprint of a dense or sparse matrix."""
    if is_sparse(matrix):
        csr = matrix.tocsr() if not sp.isspmatrix_csr(matrix) else matrix
        return int(csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes)
    return int(np.asarray(matrix).nbytes)
